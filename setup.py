"""Legacy setup shim.

The sandboxed environment has no `wheel` package and no network, so
PEP 660 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` perform a
classic setuptools develop install.
"""

from setuptools import setup

setup()
