"""``repro.obs`` — observability for the whole pipeline.

Zero-dependency metrics, spans, cross-worker tracing, structured
events, simulation probes, and opt-in profiling, threaded through the
simulator, the parallel layer, and the CLI.  Two contracts hold
everywhere (and are enforced by ``tests/test_obs_inert.py``):

* **Inert**: instrumentation never touches an RNG stream, never
  changes control flow, and never alters a result — every experiment
  output is byte-identical with observability on or off.
* **Cheap when off**: the disabled path is a flag check plus shared
  null objects; the measured overhead of *on* vs *off* on the Fig-10
  ensemble benchmark is recorded in ``BENCH_obs.json`` (<5%).

The process-global runtime is a single :class:`Obs` bundle reached
through :func:`obs`; it starts disabled.  The CLI (``--trace``,
``--metrics``, ``--profile``) and tests turn it on via
:func:`configure` and restore the default via :func:`reset`::

    from repro import obs
    obs.configure(enabled=True)
    ...                        # run experiments as usual
    handle = obs.obs()
    handle.tracer.records      # spans, incl. ones shipped from workers
    handle.metrics.snapshot()  # counters / gauges / histograms

Pool workers do not share this global: the runner ships a flag with
each chunk, the worker collects spans (and profile rows) under a local
tracer, and the records return with the results — one coherent
multi-process trace, no shared state.
"""

from __future__ import annotations

from . import clock
from .events import DEBUG, ERROR, INFO, WARNING, ConsoleSink, Event, EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import SpanRecord, Tracer

__all__ = [
    "DEBUG",
    "ERROR",
    "INFO",
    "WARNING",
    "ConsoleSink",
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Obs",
    "SpanRecord",
    "Tracer",
    "clock",
    "configure",
    "obs",
    "reset",
]


class Obs:
    """One process's observability runtime: metrics + tracer + events.

    ``enabled`` gates metrics and spans together (they are the
    measurement plane); the event log always exists because it doubles
    as the logging path, and ``profile`` is a separate opt-in because
    cProfile is the one collector with real overhead.
    """

    def __init__(self, enabled: bool = False, profile: bool = False) -> None:
        self.metrics = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(enabled=enabled)
        self.events = EventLog()
        self.profile = profile
        #: Aggregated cProfile rows (merged across workers by the
        #: runner); empty unless ``profile`` is on.
        self.profile_rows: list[dict] = []

    @property
    def enabled(self) -> bool:
        """Whether the measurement plane (metrics + spans) is on."""
        return self.tracer.enabled

    # Convenience pass-throughs used by instrumented code -------------------

    def span(self, name: str, **attrs):
        """Shorthand for ``self.tracer.span``."""
        return self.tracer.span(name, **attrs)

    def emit(self, name: str, message: str, level: int = INFO, **fields):
        """Shorthand for ``self.events.emit``."""
        return self.events.emit(name, message, level=level, **fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Obs({state}, spans={len(self.tracer)}, "
            f"metrics={len(self.metrics)}, events={len(self.events)})"
        )


#: The process-global runtime; starts disabled (production default).
_GLOBAL = Obs()


def obs() -> Obs:
    """The current process-global observability runtime.

    Callers must not cache the return value across :func:`configure`
    or :func:`reset` boundaries — fetch it where it is used.
    """
    return _GLOBAL


def configure(
    enabled: bool = True,
    profile: bool = False,
    console_level: int | None = None,
) -> Obs:
    """Replace the global runtime; returns the new one.

    ``console_level`` installs a :class:`ConsoleSink` at that level
    (the CLI maps ``--quiet``/``--verbose`` onto it); ``None`` leaves
    the event log sinkless, where warning-level events fall back to
    ``warnings.warn``.
    """
    global _GLOBAL
    _GLOBAL = Obs(enabled=enabled, profile=profile)
    if console_level is not None:
        _GLOBAL.events.add_sink(ConsoleSink(level=console_level))
    return _GLOBAL


def reset() -> Obs:
    """Restore the disabled default (tests call this in teardown)."""
    global _GLOBAL
    _GLOBAL = Obs()
    return _GLOBAL
