"""Opt-in cProfile capture with cross-worker merged aggregation.

Profiling is the one obs component that is *not* cheap, so it is off
unless explicitly requested (``--profile`` on the CLI, or
``profile=True`` in :func:`repro.obs.configure`).  Each worker (or the
in-process path) runs its chunk under its own ``cProfile.Profile``,
then flattens the stats into plain picklable row dicts::

    {"func": "posixpath.py:52(normcase)", "ncalls": 840,
     "tottime": 0.0012, "cumtime": 0.0030}

Rows ship back to the parent alongside results and spans, where
:func:`merge_rows` sums them per function across every process —
giving one top-N table for a whole pooled sweep, which a single-
process profiler can never see.
"""

from __future__ import annotations

import cProfile
from contextlib import contextmanager

__all__ = ["format_top", "merge_rows", "profile_to_rows", "profiled", "top_rows"]

#: Per-process row cap: workers ship only their heaviest functions, so
#: profile payloads stay small however long the chunk ran.
MAX_ROWS_PER_PROCESS = 120


def profile_to_rows(
    profiler: cProfile.Profile, limit: int = MAX_ROWS_PER_PROCESS
) -> list[dict]:
    """Flatten a profiler's stats into plain row dicts (heaviest first)."""
    rows = []
    # snapshot_stats puts {(file, line, name): (cc, nc, tt, ct, callers)}
    # on .stats — the documented pstats layout, with no file I/O.
    profiler.snapshot_stats()  # type: ignore[attr-defined]
    for (filename, line, name), stat in profiler.stats.items():  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stat
        short = filename.rsplit("/", 1)[-1]
        rows.append(
            {
                "func": f"{short}:{line}({name})",
                "ncalls": int(nc),
                "tottime": float(tt),
                "cumtime": float(ct),
            }
        )
    rows.sort(key=lambda row: row["tottime"], reverse=True)
    return rows[:limit]


@contextmanager
def profiled(sink: list):
    """Run the with-block under cProfile; append row dicts to ``sink``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        sink.extend(profile_to_rows(profiler))


def merge_rows(rows) -> list[dict]:
    """Sum profile rows per function across processes (heaviest first)."""
    merged: dict[str, dict] = {}
    for row in rows:
        entry = merged.get(row["func"])
        if entry is None:
            merged[row["func"]] = {
                "func": row["func"],
                "ncalls": int(row["ncalls"]),
                "tottime": float(row["tottime"]),
                "cumtime": float(row["cumtime"]),
            }
        else:
            entry["ncalls"] += int(row["ncalls"])
            entry["tottime"] += float(row["tottime"])
            entry["cumtime"] += float(row["cumtime"])
    ordered = sorted(merged.values(), key=lambda row: row["tottime"], reverse=True)
    return ordered


def top_rows(rows, n: int = 15) -> list[dict]:
    """The N heaviest merged rows."""
    return merge_rows(rows)[:n]


def format_top(rows, n: int = 15) -> str:
    """Render merged rows as the ``obs top`` table."""
    top = top_rows(rows, n)
    if not top:
        return "no profile data (run with --profile to collect it)"
    header = ("tottime (s)", "cumtime (s)", "ncalls", "function")
    body = [
        (
            f"{row['tottime']:.4f}",
            f"{row['cumtime']:.4f}",
            str(row["ncalls"]),
            row["func"],
        )
        for row in top
    ]
    widths = [
        max(len(header[col]), *(len(row[col]) for row in body))
        for col in range(3)
    ]
    lines = [
        "  ".join(
            [header[col].rjust(widths[col]) for col in range(3)] + [header[3]]
        )
    ]
    lines.append("  ".join(["-" * w for w in widths] + ["-" * len(header[3])]))
    for row in body:
        lines.append(
            "  ".join([row[col].rjust(widths[col]) for col in range(3)] + [row[3]])
        )
    return "\n".join(lines)
