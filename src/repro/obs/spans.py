"""Monotonic-clock spans: who did what, when, in which process.

A :class:`SpanRecord` is a frozen, picklable fact — name, start/end on
the monotonic clock, pid/tid, free-form attributes — and a
:class:`Tracer` is a per-process buffer of them with a context-manager
API::

    with tracer.span("job.run", seed=7) as span:
        ...
        span.set(outcome="ok")

Cross-worker tracing works by shipping records, not handles: a pool
worker runs its chunk under a local tracer, drains the records, and
returns them *alongside* the job results; the parent ingests them into
its own tracer so one pooled run yields a single coherent trace.  On
Linux ``CLOCK_MONOTONIC`` shares its epoch across processes, so the
timelines line up without any clock negotiation.

Disabled tracers hand out a shared null span whose enter/exit/set are
empty — the same zero-cost-off contract as the metrics registry.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, field

from .clock import monotonic

__all__ = ["SpanRecord", "Tracer"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named interval on the monotonic clock.

    ``t0``/``t1`` are monotonic seconds; ``pid``/``tid`` locate the
    process and thread that ran the work (the rows of a Perfetto
    view); ``attrs`` carries whatever the instrumentation attached
    (seed, attempt, outcome, ...).  Frozen and built from plain types,
    so records pickle across the process pool unchanged.
    """

    name: str
    t0: float
    t1: float
    pid: int
    tid: int
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict:
        """JSON-ready form (the trace file's span record body)."""
        return {
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        return cls(
            name=data["name"],
            t0=float(data["t0"]),
            t1=float(data["t1"]),
            pid=int(data["pid"]),
            tid=int(data["tid"]),
            attrs=dict(data.get("attrs", {})),
        )


class _Span:
    """A live (entered, not yet exited) span; records itself on exit."""

    __slots__ = ("_tracer", "name", "attrs", "t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.t0 = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. the outcome)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self.t0 = monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._records.append(
            SpanRecord(
                name=self.name,
                t0=self.t0,
                t1=monotonic(),
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=self.attrs,
            )
        )


class _NullSpan:
    """Shared no-op span served by disabled tracers."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Per-process span buffer.

    Parameters
    ----------
    enabled:
        When False (default), :meth:`span` returns the shared null
        span and nothing is ever recorded.
    """

    _trace_counter = itertools.count(1)

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._records: list[SpanRecord] = []
        # A per-tracer tag exported with the trace metadata so files
        # from different runs are tellable apart.
        self.trace_id = f"{os.getpid()}-{next(self._trace_counter)}"

    def span(self, name: str, **attrs):
        """Context manager timing one named operation."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    @property
    def records(self) -> list[SpanRecord]:
        """The finished spans recorded so far (oldest first)."""
        return list(self._records)

    def drain(self) -> list[SpanRecord]:
        """Return all records and clear the buffer (worker -> parent)."""
        records, self._records = self._records, []
        return records

    def ingest(self, records) -> None:
        """Merge records shipped from another process into this buffer."""
        self._records.extend(records)

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, records={len(self)})"
