"""Simulation-level probes: watch a run without touching its physics.

A :class:`SimulationProbe` plugs into either engine — ``probe=`` on
:class:`~repro.core.fastsim.CascadeModel` and
:class:`~repro.core.model.PeriodicMessagesModel` — and samples the
quantities the paper's own instrumentation watched on NEARnet:
largest-cluster mass per round, reset and cascade counts, messages
processed, and per-node busy time.

The inertness contract (enforced by ``tests/test_obs_probes.py``):

* a probe never draws from, seeds, or reorders any RNG stream;
* a probe never mutates model or tracker state — its callbacks read
  arguments and write only probe-local fields;
* a run with a probe attached therefore produces byte-identical
  trajectories to the same run without one.

Hook points are deliberately few: the :class:`ClusterTracker` calls
``on_reset``/``on_group`` (engine-agnostic — both engines feed the
tracker), and the cascade engine additionally calls ``on_cascade``
with the exact expiry times, from which per-node busy time follows
without estimation.  For DES runs, :meth:`collect_model` harvests the
router states' exact message counters after the run.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProbeSummary", "SimulationProbe"]


@dataclass(frozen=True)
class ProbeSummary:
    """JSON-ready aggregate of one probed run."""

    resets: int
    groups: int
    cascades: int
    largest_cluster: int
    messages_sent: int
    messages_processed: int
    busy_seconds_total: float
    samples: int

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class SimulationProbe:
    """Collects trajectory observables from one simulation run.

    Parameters
    ----------
    sample_every:
        Keep every ``sample_every``-th point of the largest-cluster
        series (1 = keep all).  Sampling bounds memory on very long
        runs without biasing the counters, which always see every
        event.
    """

    def __init__(self, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        # Engine-agnostic (fed via the ClusterTracker):
        self.resets = 0
        self.groups = 0
        self.largest_cluster = 0
        #: Sampled (time, group size) series of simultaneous-reset
        #: groups — the observable behind the paper's Figure 6.
        self.cluster_series: list[tuple[float, int]] = []
        # Cascade-engine extras (exact, from expiry times):
        self.cascades = 0
        self.messages_sent = 0
        self.messages_processed = 0
        self.busy_seconds: dict[int, float] = {}
        self._group_counter = 0

    # -- tracker hooks (both engines) ----------------------------------------

    def on_reset(self, time: float, node_id: int) -> None:
        """One router reset its timer (called per reset, hot path)."""
        self.resets += 1

    def on_group(self, time: float, size: int) -> None:
        """A simultaneous-reset group closed: one cluster observation."""
        self.groups += 1
        if size > self.largest_cluster:
            self.largest_cluster = size
        self._group_counter += 1
        if self._group_counter % self.sample_every == 0:
            self.cluster_series.append((time, size))

    # -- cascade-engine hook --------------------------------------------------

    def on_cascade(self, window_end: float, expiries) -> None:
        """One cascade fired; ``expiries`` is [(expiry_time, node), ...].

        Each participant is busy from its own expiry until the common
        window end, sends one message, and processes one message from
        every other participant — exact for the pure periodic model.
        """
        k = len(expiries)
        self.cascades += 1
        self.messages_sent += k
        self.messages_processed += k * (k - 1)
        busy = self.busy_seconds
        for expiry, node in expiries:
            busy[node] = busy.get(node, 0.0) + (window_end - expiry)

    # -- DES post-run harvest -------------------------------------------------

    def collect_model(self, model) -> None:
        """Harvest exact per-router counters from a finished DES run.

        The DES counts every message individually (including ones the
        cascade rule never materializes, e.g. overheard traffic).
        Counters are cumulative on the router states, so this method
        *overwrites* rather than adds — calling it after every
        incremental ``run()`` segment stays correct.
        """
        sent = processed = 0
        busy = self.busy_seconds
        tc = model.config.tc
        for router in model.routers:
            sent += router.messages_sent
            processed += router.messages_processed
            busy[router.node_id] = (
                router.messages_sent + router.messages_processed
            ) * tc
        self.messages_sent = sent
        self.messages_processed = processed

    # -- reporting ------------------------------------------------------------

    @property
    def busy_seconds_total(self) -> float:
        return sum(self.busy_seconds.values())

    def summary(self) -> ProbeSummary:
        return ProbeSummary(
            resets=self.resets,
            groups=self.groups,
            cascades=self.cascades,
            largest_cluster=self.largest_cluster,
            messages_sent=self.messages_sent,
            messages_processed=self.messages_processed,
            busy_seconds_total=self.busy_seconds_total,
            samples=len(self.cluster_series),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationProbe(resets={self.resets}, groups={self.groups}, "
            f"largest={self.largest_cluster})"
        )
