"""The structured event log: what used to be prints and warnings.

An :class:`Event` is a levelled, named, wall-clock-stamped record with
free-form fields — ``cache.write_error`` with the path and errno, not
an f-string lost to a terminal scrollback.  An :class:`EventLog`
buffers every event (they ride along in the exported trace) and fans
them out to *sinks*:

* :class:`ConsoleSink` renders ``message`` for humans — info and
  below to stdout, warnings and errors to stderr — filtered by the
  CLI's ``--quiet``/``--verbose`` level.  At the default level its
  output is byte-identical to the prints it replaced.
* The JSONL trace file (written by :mod:`repro.obs.export`) gets the
  full structured record, which is what makes chaos-suite output
  machine-readable.

Compatibility fallback: a *warning-or-worse* event emitted while no
sink is installed is forwarded to :func:`warnings.warn`, so library
users who never configured observability still see failures exactly
as before (and ``pytest.warns`` assertions keep passing).
"""

from __future__ import annotations

import sys
import warnings
from collections import deque
from dataclasses import dataclass, field

from .clock import wall_time

__all__ = [
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
    "LEVEL_NAMES",
    "ConsoleSink",
    "Event",
    "EventLog",
]

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}


@dataclass(frozen=True)
class Event:
    """One structured log record."""

    ts: float  # wall-clock seconds since the epoch
    level: int
    name: str  # dotted event name, e.g. "cache.write_error"
    message: str  # human rendering (what ConsoleSink prints)
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "ts": self.ts,
            "level": LEVEL_NAMES.get(self.level, str(self.level)),
            "name": self.name,
            "message": self.message,
            "fields": dict(self.fields),
        }


class ConsoleSink:
    """Render event messages to the terminal, filtered by level.

    Info and debug go to ``stdout`` (they are the program's narrative
    output); warnings and errors go to ``stderr``.  Streams default to
    the *current* ``sys.stdout``/``sys.stderr`` at emit time so pytest
    capture and shell redirection both behave.
    """

    def __init__(self, level: int = INFO, out=None, err=None) -> None:
        self.level = level
        self._out = out
        self._err = err

    def handle(self, event: Event) -> None:
        if event.level < self.level:
            return
        if event.level >= WARNING:
            stream = self._err if self._err is not None else sys.stderr
        else:
            stream = self._out if self._out is not None else sys.stdout
        print(event.message, file=stream)


class EventLog:
    """Buffer events and fan them out to sinks.

    The buffer is what the trace exporter reads; sinks are for live
    consumption.  Both are optional — an EventLog with no sinks is the
    library default and costs a dataclass append per event (plus the
    warnings fallback for warning-level events).  The buffer is a ring
    (newest ``maxlen`` kept) so an unconfigured long-lived process can
    never leak memory through its own logging.
    """

    def __init__(self, maxlen: int = 65536) -> None:
        self.sinks: list = []
        self._events: deque[Event] = deque(maxlen=maxlen)

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    def emit(
        self,
        name: str,
        message: str,
        level: int = INFO,
        **fields,
    ) -> Event:
        """Record one event and deliver it to every sink."""
        event = Event(
            ts=wall_time(), level=level, name=name, message=message, fields=fields
        )
        self._events.append(event)
        if self.sinks:
            for sink in self.sinks:
                sink.handle(event)
        elif level >= WARNING:
            # Nobody is listening: degrade to the stdlib warning the
            # pre-obs code emitted, so failures stay visible.
            warnings.warn(message, RuntimeWarning, stacklevel=3)
        return event

    @property
    def events(self) -> list[Event]:
        return list(self._events)

    def drain(self) -> list[Event]:
        events = list(self._events)
        self._events.clear()
        return events

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventLog(events={len(self)}, sinks={len(self.sinks)})"
