"""The only module in the tree allowed to read real clocks directly.

The repository runs two kinds of time.  *Simulated* time lives in the
DES calendar and the cascade heap and must never leak a real clock —
that is the determinism guarantee every byte-identity test rests on.
*Observed* time is what this subsystem measures: span durations on the
monotonic clock (immune to NTP steps), and journal/event stamps on the
wall clock (meaningful across sessions).

Centralizing the raw ``time`` calls here does two jobs at once:

* every caller outside ``repro/obs`` that needs a real clock imports
  it from this module, so ``repro.tools.lint_clocks`` can forbid
  direct ``time.time()`` / ``datetime.now()`` everywhere else; and
* tests can monkeypatch one module to freeze observability time
  without ever touching simulation time.
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "perf_counter", "wall_time"]


def monotonic() -> float:
    """Span-timing clock: seconds, monotonic, never steps backwards.

    On Linux this is ``CLOCK_MONOTONIC``, which shares its epoch
    across processes on the same boot — the property that lets worker
    spans and parent spans land on one coherent trace timeline.
    """
    return time.monotonic()


def perf_counter() -> float:
    """Highest-resolution interval clock, for benchmark deltas."""
    return time.perf_counter()


def wall_time() -> float:
    """Wall-clock seconds since the epoch, for durable stamps.

    Journal lines and exported events carry wall time because their
    readers live in later sessions (staleness reporting); everything
    measured *within* one process uses :func:`monotonic` instead.
    """
    return time.time()
