"""Trace files: JSONL on disk, Chrome ``trace_event`` JSON on demand.

The canonical artifact is a **JSONL trace log** — one JSON object per
line, each tagged with a ``type``:

* ``meta``    — written first: trace id, wall-clock stamp, pid, argv.
* ``span``    — a :class:`~repro.obs.spans.SpanRecord` body.
* ``event``   — an :class:`~repro.obs.events.Event` body.
* ``metric``  — one instrument's final snapshot (name + state).
* ``profile`` — one aggregated cProfile row (see
  :mod:`repro.obs.profile`).

JSONL because it is append-friendly, greppable, and torn-tail-tolerant
— the same reasoning as the checkpoint journal.  From it,
:func:`to_chrome_trace` derives the JSON object format the Chrome /
Perfetto UI accepts (``chrome://tracing`` or https://ui.perfetto.dev):
spans become complete ("ph": "X") events with microsecond timestamps,
log events become instants ("ph": "i"), and counters become counter
tracks ("ph": "C").
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from .clock import wall_time
from .events import Event, LEVEL_NAMES
from .spans import SpanRecord

__all__ = [
    "RECORD_TYPES",
    "read_trace",
    "summarize_trace",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_trace",
]

RECORD_TYPES = ("meta", "span", "event", "metric", "profile")


def write_trace(
    path: str | os.PathLike,
    spans=(),
    events=(),
    metrics: dict | None = None,
    profile=(),
    meta: dict | None = None,
) -> Path:
    """Write one JSONL trace log; returns the path written.

    ``metrics`` is a registry snapshot (``{name: state}``);
    ``profile`` is a sequence of aggregated profile-row dicts.
    """
    path = Path(path)
    lines = []
    header = {
        "type": "meta",
        "ts": wall_time(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
    }
    if meta:
        header.update(meta)
    lines.append(header)
    for event in events:
        body = event.to_dict() if isinstance(event, Event) else dict(event)
        lines.append({"type": "event", **body})
    for span in spans:
        body = span.to_dict() if isinstance(span, SpanRecord) else dict(span)
        lines.append({"type": "span", **body})
    for name, state in sorted((metrics or {}).items()):
        lines.append({"type": "metric", "name": name, **state})
    for row in profile:
        lines.append({"type": "profile", **dict(row)})
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for line in lines:
            handle.write(json.dumps(line, sort_keys=True) + "\n")
    return path


def read_trace(path: str | os.PathLike) -> dict[str, list[dict]]:
    """Parse a JSONL trace log into ``{type: [records]}``.

    Unknown types are preserved under their own key; a torn final line
    (killed writer) is skipped, mirroring the checkpoint loader.
    """
    records: dict[str, list[dict]] = {kind: [] for kind in RECORD_TYPES}
    text = Path(path).read_text()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            body = json.loads(line)
        except ValueError:
            continue  # torn tail from a killed writer
        kind = body.pop("type", None)
        if not isinstance(kind, str):
            continue
        records.setdefault(kind, []).append(body)
    return records


# -- Chrome / Perfetto conversion --------------------------------------------

#: Event levels rendered as instant-event scopes: warnings and errors
#: get process scope (a tall marker), the rest thread scope.
_INSTANT_SCOPE = {"warning": "p", "error": "p"}


def to_chrome_trace(records: dict[str, list[dict]]) -> dict:
    """Convert parsed trace records to the Chrome trace_event format.

    Returns the JSON *object* flavour — ``{"traceEvents": [...]}`` —
    which both ``chrome://tracing`` and Perfetto accept.  Timestamps
    (``ts``) and durations (``dur``) are microseconds, per the format;
    span times are monotonic-clock so cross-process rows align.
    """
    trace_events: list[dict] = []
    pids = set()
    for span in records.get("span", ()):
        pid = int(span["pid"])
        pids.add(pid)
        trace_events.append(
            {
                "name": span["name"],
                "cat": span["name"].split(".", 1)[0],
                "ph": "X",
                "ts": float(span["t0"]) * 1e6,
                "dur": (float(span["t1"]) - float(span["t0"])) * 1e6,
                "pid": pid,
                "tid": int(span["tid"]),
                "args": dict(span.get("attrs", {})),
            }
        )
    # Events carry wall time; anchor them on the earliest span start
    # so instants land inside the span timeline rather than at the
    # epoch.  With no spans they form their own relative timeline.
    spans = records.get("span", ())
    t0_mono = min((float(s["t0"]) for s in spans), default=0.0)
    events = records.get("event", ())
    t0_wall = min((float(e["ts"]) for e in events), default=0.0)
    main_pid = min(pids) if pids else os.getpid()
    for event in events:
        level = str(event.get("level", "info"))
        trace_events.append(
            {
                "name": event.get("name", "event"),
                "cat": f"log.{level}",
                "ph": "i",
                "ts": (float(event["ts"]) - t0_wall) * 1e6 + t0_mono * 1e6,
                "pid": main_pid,
                "tid": 0,
                "s": _INSTANT_SCOPE.get(level, "t"),
                "args": {
                    "message": event.get("message", ""),
                    **dict(event.get("fields", {})),
                },
            }
        )
    # Counter snapshots become single-sample counter tracks: crude,
    # but enough to read totals next to the timeline.
    sample_ts = t0_mono * 1e6
    for metric in records.get("metric", ()):
        if metric.get("kind") != "counter":
            continue
        trace_events.append(
            {
                "name": metric["name"],
                "ph": "C",
                "ts": sample_ts,
                "pid": main_pid,
                "args": {"value": metric.get("value", 0.0)},
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "processes": sorted(pids),
        },
    }


def write_chrome_trace(
    src: str | os.PathLike, dest: str | os.PathLike | None = None
) -> Path:
    """Convert a JSONL trace log to a Chrome trace JSON file.

    ``dest`` defaults to the source path with a ``.chrome.json``
    suffix.  Returns the path written.
    """
    src = Path(src)
    if dest is None:
        dest = src.with_suffix(".chrome.json")
    dest = Path(dest)
    chrome = to_chrome_trace(read_trace(src))
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text(json.dumps(chrome, sort_keys=True, indent=1) + "\n")
    return dest


def summarize_trace(records: dict[str, list[dict]]) -> str:
    """Aggregate a parsed trace into the ``obs summary`` text."""
    lines = []
    meta = records.get("meta", ())
    if meta:
        header = meta[0]
        lines.append(
            f"trace: pid {header.get('pid', '?')}, "
            f"argv {' '.join(header.get('argv', [])) or '?'}"
        )
    spans = records.get("span", ())
    by_name: dict[str, list[float]] = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(
            float(span["t1"]) - float(span["t0"])
        )
    pids = {int(s["pid"]) for s in spans}
    lines.append(
        f"spans: {len(spans)} across {len(pids)} process(es)"
        if spans
        else "spans: none"
    )
    for name in sorted(by_name):
        durations = by_name[name]
        lines.append(
            f"  {name}: n={len(durations)} total={sum(durations):.4f}s "
            f"mean={sum(durations) / len(durations):.4f}s "
            f"max={max(durations):.4f}s"
        )
    events = records.get("event", ())
    if events:
        by_level: dict[str, int] = {}
        for event in events:
            level = str(event.get("level", "info"))
            by_level[level] = by_level.get(level, 0) + 1
        ordered = sorted(
            by_level.items(),
            key=lambda item: list(LEVEL_NAMES.values()).index(item[0])
            if item[0] in LEVEL_NAMES.values()
            else 99,
        )
        lines.append(
            "events: " + " ".join(f"{level}={n}" for level, n in ordered)
        )
    counters = [
        metric
        for metric in records.get("metric", ())
        if metric.get("kind") == "counter" and metric.get("value")
    ]
    if counters:
        lines.append("counters:")
        for metric in counters:
            lines.append(f"  {metric['name']}: {metric['value']:g}")
    histograms = [
        metric
        for metric in records.get("metric", ())
        if metric.get("kind") == "histogram" and metric.get("count")
    ]
    if histograms:
        lines.append("histograms:")
        for metric in histograms:
            lines.append(
                f"  {metric['name']}: n={metric['count']} "
                f"mean={metric.get('mean', 0.0):.4f}s"
            )
    rows = records.get("profile", ())
    if rows:
        lines.append(f"profile: {len(rows)} aggregated function row(s)")
    return "\n".join(lines)
