"""The observability overhead benchmark (``python -m repro bench --obs``).

Runs the same workload as the parallel-layer benchmark — the 20-seed
Figure 10 first-passage ensemble — twice per repeat: once with the
obs runtime disabled (the production default) and once with tracing
and metrics enabled.  The two must produce identical first-passage
results (checked on every run: instrumentation is inert), and the
median wall-clock delta is the measured cost of observability.

The snapshot is written as JSON — ``BENCH_obs.json`` at the repo root
by convention — and the acceptance budget is **overhead < 5%**.  Runs
alternate off/on so thermal or load drift hits both configurations
equally rather than biasing one side.
"""

from __future__ import annotations

import os
import statistics
from typing import Sequence

from . import configure, obs, reset
from .clock import perf_counter

__all__ = ["OVERHEAD_BUDGET_PERCENT", "format_obs_table", "run_obs_benchmark"]

#: The acceptance ceiling for enabled-vs-disabled overhead.
OVERHEAD_BUDGET_PERCENT = 5.0


def run_obs_benchmark(
    horizon: float | None = None,
    seeds: Sequence[int] = tuple(range(1, 21)),
    repeats: int = 3,
    output: str | os.PathLike | None = None,
) -> dict:
    """Measure obs-on vs obs-off wall-clock on the Fig-10 ensemble.

    Parameters
    ----------
    horizon, seeds:
        Workload scale; defaults reproduce the canonical snapshot
        (20 seeds, 2e5 s — the same workload as BENCH_parallel.json).
    repeats:
        Off/on pairs to run; the snapshot reports medians.
    output:
        If given, the snapshot JSON is written there.
    """
    from ..parallel.bench import BENCH_PARAMS, DEFAULT_HORIZON, _specs
    from ..parallel.runner import ParallelRunner

    if horizon is None:
        horizon = DEFAULT_HORIZON
    specs = _specs(horizon, seeds, "cascade")

    def one_run(enabled: bool):
        if enabled:
            configure(enabled=True)
        else:
            reset()
        runner = ParallelRunner(jobs=1)
        start = perf_counter()
        results = runner.run(specs)
        elapsed = perf_counter() - start
        spans = len(obs().tracer)
        return elapsed, results, spans

    off_times: list[float] = []
    on_times: list[float] = []
    span_count = 0
    identical = True
    try:
        baseline = None
        for _ in range(repeats):
            elapsed, results, _spans = one_run(enabled=False)
            off_times.append(elapsed)
            if baseline is None:
                baseline = results
            identical = identical and results == baseline
            elapsed, results, span_count = one_run(enabled=True)
            on_times.append(elapsed)
            identical = identical and results == baseline
    finally:
        reset()

    median_off = statistics.median(off_times)
    median_on = statistics.median(on_times)
    overhead = (
        (median_on - median_off) / median_off * 100.0 if median_off > 0 else 0.0
    )
    payload = {
        "params": dict(BENCH_PARAMS),
        "horizon_seconds": horizon,
        "n_seeds": len(list(seeds)),
        "repeats": repeats,
        "timings_seconds": {
            "obs_disabled_median": round(median_off, 4),
            "obs_enabled_median": round(median_on, 4),
            "obs_disabled_all": [round(t, 4) for t in off_times],
            "obs_enabled_all": [round(t, 4) for t in on_times],
        },
        "overhead_percent": round(overhead, 2),
        "overhead_budget_percent": OVERHEAD_BUDGET_PERCENT,
        "within_budget": overhead < OVERHEAD_BUDGET_PERCENT,
        "results_identical_with_obs": identical,
        "spans_per_run": span_count,
    }
    from ..benchio import bench_envelope, write_bench_json

    snapshot = bench_envelope("fig10_ensemble_obs_overhead", payload)
    if output is not None:
        write_bench_json(output, snapshot)
    return snapshot


def format_obs_table(snapshot: dict) -> str:
    """Render the snapshot as the CLI's overhead table."""
    timings = snapshot["timings_seconds"]
    lines = [
        f"obs overhead: fig10 ensemble, {snapshot['n_seeds']} seeds, "
        f"horizon {snapshot['horizon_seconds']:g} s, "
        f"{snapshot['repeats']} repeat(s)",
        f"  obs disabled (median): {timings['obs_disabled_median']:.3f} s",
        f"  obs enabled  (median): {timings['obs_enabled_median']:.3f} s "
        f"({snapshot['spans_per_run']} spans/run)",
        f"  overhead: {snapshot['overhead_percent']:+.2f}% "
        f"(budget {snapshot['overhead_budget_percent']:g}%) -> "
        + ("within budget" if snapshot["within_budget"] else "OVER BUDGET"),
        "results identical with obs on/off: "
        + ("yes" if snapshot["results_identical_with_obs"] else "NO"),
    ]
    return "\n".join(lines)
