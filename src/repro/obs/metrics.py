"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a plain dictionary of named instruments.
There is no background thread, no export protocol, and no sampling —
instruments mutate a few floats, and :meth:`MetricsRegistry.snapshot`
serializes the whole registry to a JSON-ready dict on demand.

The load-bearing property is the **disabled path**: a disabled
registry hands every caller the same shared null instrument, whose
methods are empty.  Instrumented code can therefore call
``obs().metrics.counter("runner.jobs.ok").inc()`` unconditionally —
with observability off the cost is a dict miss and two no-op calls,
which is what keeps the Fig-10 overhead budget (<5%, see
``BENCH_obs.json``) honest.
"""

from __future__ import annotations

import bisect
from typing import Mapping

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram bucket upper bounds, in seconds: spans from
#: sub-millisecond cache reads to multi-minute simulation jobs.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        self.value += amount

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A value that can move in either direction (e.g. queue depth)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram of observed values.

    Buckets are cumulative upper bounds (Prometheus-style): an
    observation lands in the first bucket whose bound is >= the value,
    or in the implicit overflow bucket.  Fixed buckets keep
    ``observe`` O(log B) with zero allocation, which matters because
    cache-latency histograms sit on the runner's per-job path.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "total", "count")

    kind = "histogram"

    def __init__(self, name: str, buckets: tuple = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        if index == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "buckets": {f"le_{b:g}": c for b, c in zip(self.bounds, self.counts)},
            "overflow": self.overflow,
        }


class _NullInstrument:
    """Shared do-nothing instrument served by disabled registries."""

    __slots__ = ()

    name = "<disabled>"
    value = 0.0
    count = 0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def as_dict(self) -> dict:
        return {}


_NULL = _NullInstrument()


class MetricsRegistry:
    """Named instruments for one process.

    Parameters
    ----------
    enabled:
        When False (the default), every accessor returns the shared
        null instrument and the registry stays empty — the cheap
        production path.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, factory, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(name, *args)
            self._instruments[name] = instrument
        elif not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} is already registered as "
                f"{type(instrument).__name__}, not {factory.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        return self._get(name, Gauge)

    def histogram(self, name: str, buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        return self._get(name, Histogram, buckets)

    def value(self, name: str) -> float:
        """Current value of a counter/gauge (0.0 when absent)."""
        instrument = self._instruments.get(name)
        return getattr(instrument, "value", 0.0) if instrument else 0.0

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready ``{name: {kind, ...}}`` of every instrument."""
        return {
            name: instrument.as_dict()
            for name, instrument in sorted(self._instruments.items())
        }

    def merge_counts(self, counts: Mapping[str, float], prefix: str = "") -> None:
        """Fold a plain ``{name: count}`` mapping into counters.

        Used to mirror :class:`~repro.parallel.report.RunReport`
        outcome tallies into the registry so the two accountings can
        be cross-checked (``tests/test_obs_inert.py``).
        """
        for name, count in counts.items():
            self.counter(f"{prefix}{name}").inc(count)

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({state}, instruments={len(self)})"
