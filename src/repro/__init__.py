"""repro — a reproduction of Floyd & Jacobson, "The Synchronization of
Periodic Routing Messages" (SIGCOMM 1993).

Subpackages:

* :mod:`repro.core` — the Periodic Messages model (the paper's primary
  contribution) with cluster tracking and timer policies.
* :mod:`repro.markov` — the Section 5 birth--death chain analysis.
* :mod:`repro.des`, :mod:`repro.rng` — simulation substrates.
* :mod:`repro.net`, :mod:`repro.protocols`, :mod:`repro.traffic` — the
  packet-level network, routing protocols, and traffic generators
  behind the measurement figures.
* :mod:`repro.analysis` — autocorrelation, outage, and coherence tools.
* :mod:`repro.models` — the other synchronization phenomena of
  Section 1 (TCP windows, external clocks, client-server recovery).
* :mod:`repro.experiments` — one driver per paper figure plus a CLI.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
