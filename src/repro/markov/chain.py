"""Generic birth--death Markov chains on states 1..N.

The paper's Section 5 chain is a lazy birth--death chain: from state
``i`` the system moves down with probability ``q_i``, up with ``p_i``,
and stays put otherwise.  This module provides the chain abstraction
— transition matrix, exact expected first-passage times (both by the
standard one-step recursion and by a dense linear solve), stationary
distribution, and direct simulation — independent of where the
probabilities come from.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

from ..rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

__all__ = ["BirthDeathChain"]


class BirthDeathChain:
    """A lazy birth--death chain on states ``1..n``.

    Parameters
    ----------
    up:
        ``up[i-1]`` is the probability of moving from state ``i`` to
        ``i+1``; the last entry must be 0.
    down:
        ``down[i-1]`` is the probability of moving from state ``i`` to
        ``i-1``; the first entry must be 0.
    """

    def __init__(self, up: Sequence[float], down: Sequence[float]) -> None:
        if len(up) != len(down):
            raise ValueError("up and down must have equal length")
        if len(up) < 2:
            raise ValueError("need at least two states")
        self.n = len(up)
        self.up = [float(p) for p in up]
        self.down = [float(q) for q in down]
        if self.down[0] != 0.0:
            raise ValueError("state 1 cannot move down")
        if self.up[-1] != 0.0:
            raise ValueError(f"state {self.n} cannot move up")
        for i, (p, q) in enumerate(zip(self.up, self.down), start=1):
            if p < 0 or q < 0:
                raise ValueError(f"negative probability at state {i}")
            if p + q > 1.0 + 1e-12:
                raise ValueError(f"p+q = {p + q} > 1 at state {i}")

    # -- basic structure ---------------------------------------------------

    def p(self, i: int) -> float:
        """Up-probability from state ``i``."""
        self._check_state(i)
        return self.up[i - 1]

    def q(self, i: int) -> float:
        """Down-probability from state ``i``."""
        self._check_state(i)
        return self.down[i - 1]

    def stay(self, i: int) -> float:
        """Self-loop probability of state ``i``."""
        return 1.0 - self.p(i) - self.q(i)

    def _check_state(self, i: int) -> None:
        if not 1 <= i <= self.n:
            raise ValueError(f"state {i} outside 1..{self.n}")

    def transition_matrix(self) -> "np.ndarray":
        """The full (n x n) row-stochastic transition matrix.

        The dense-matrix views (this, :meth:`hitting_times_dense`,
        :meth:`stationary_distribution`) are the only numpy users in
        the chain; numpy is imported lazily so the recursion-based
        hitting times — and everything built on them, including the
        prediction surrogate — stay pure-Python.
        """
        import numpy as np

        matrix = np.zeros((self.n, self.n))
        for i in range(1, self.n + 1):
            row = i - 1
            if i > 1:
                matrix[row, row - 1] = self.q(i)
            if i < self.n:
                matrix[row, row + 1] = self.p(i)
            matrix[row, row] = self.stay(i)
        return matrix

    # -- expected first-passage times ---------------------------------------

    def expected_steps_up(self) -> list[float]:
        """``h[i-1]`` = expected steps from state ``i`` to ``i+1``.

        Computed by the standard recursion ``h_i = (1 + q_i h_{i-1}) / p_i``;
        ``math.inf`` where the chain cannot ascend.
        """
        h: list[float] = []
        for i in range(1, self.n):
            p, q = self.p(i), self.q(i)
            if p == 0.0:
                h.append(math.inf)
                continue
            prev = h[-1] if i > 1 else 0.0
            h.append((1.0 + q * prev) / p if not math.isinf(prev) else math.inf)
        return h

    def expected_steps_down(self) -> list[float]:
        """``d[i-2]`` = expected steps from state ``i`` to ``i-1`` (i = 2..n)."""
        d_rev: list[float] = []
        for i in range(self.n, 1, -1):
            p, q = self.p(i), self.q(i)
            if q == 0.0:
                d_rev.append(math.inf)
                continue
            nxt = d_rev[-1] if i < self.n else 0.0
            d_rev.append((1.0 + p * nxt) / q if not math.isinf(nxt) else math.inf)
        return list(reversed(d_rev))

    def hitting_time(self, start: int, target: int) -> float:
        """Expected steps from ``start`` to first reach ``target``."""
        self._check_state(start)
        self._check_state(target)
        if start == target:
            return 0.0
        if start < target:
            return sum(self.expected_steps_up()[start - 1 : target - 1])
        return sum(self.expected_steps_down()[target - 1 : start - 1])

    def hitting_times_dense(self, target: int) -> "np.ndarray":
        """Expected steps to ``target`` from every state, by linear solve.

        Solves ``(I - Q) t = 1`` where ``Q`` is the transition matrix
        restricted to the non-target states.  An independent check on
        the recursive formulas.
        """
        import numpy as np

        self._check_state(target)
        keep = [i for i in range(self.n) if i != target - 1]
        matrix = self.transition_matrix()
        q_part = matrix[np.ix_(keep, keep)]
        identity = np.eye(len(keep))
        times_restricted = np.linalg.solve(identity - q_part, np.ones(len(keep)))
        times = np.zeros(self.n)
        for index, state in enumerate(keep):
            times[state] = times_restricted[index]
        return times

    # -- long-run behaviour -----------------------------------------------------

    def stationary_distribution(self) -> "np.ndarray":
        """The stationary distribution, by dense linear solve.

        Birth--death chains are reversible, but the dense solve also
        handles the degenerate cases (absorbing end states) that arise
        at extreme parameter values.
        """
        import numpy as np

        matrix = self.transition_matrix()
        # Solve pi (P - I) = 0 with sum(pi) = 1: replace one equation.
        a = (matrix.T - np.eye(self.n)).copy()
        a[-1, :] = 1.0
        b = np.zeros(self.n)
        b[-1] = 1.0
        try:
            pi = np.linalg.solve(a, b)
        except np.linalg.LinAlgError:
            # Reducible chain (e.g. multiple absorbing states): fall
            # back to least squares, which picks one valid solution.
            pi, *_ = np.linalg.lstsq(a, b, rcond=None)
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0:
            raise ArithmeticError("stationary distribution solve failed")
        return pi / total

    def simulate(
        self,
        rng: RandomSource,
        steps: int,
        start: int = 1,
    ) -> list[int]:
        """Simulate the chain for ``steps`` transitions; returns the path."""
        self._check_state(start)
        if steps < 0:
            raise ValueError("steps must be non-negative")
        state = start
        path = [state]
        for _ in range(steps):
            u = rng.random()
            if u < self.q(state):
                state -= 1
            elif u < self.q(state) + self.p(state):
                state += 1
            path.append(state)
        return path
