"""Expected times to synchronize and to break up (Section 5.2).

The paper defines ``f(i)`` as the expected number of rounds for the
chain to first reach state ``i`` starting from state 1 (so ``f(N)`` is
the expected time to synchronize) and ``g(i)`` as the expected rounds
to first reach state ``i`` starting from state N (``g(1)`` is the
expected time to break up).  It also defines the conditional one-step
quantities ``t(j, j+1)`` and ``t(j, j-1)``.

Both the paper's recursive formulation and the standard birth--death
first-passage recursion are implemented; they are algebraically
identical, which the test suite verifies (together with a dense linear
solve).  ``f`` depends on ``f(2) = 1/p(1,2)``, which the paper fits
externally; ``g`` does not depend on it at all.
"""

from __future__ import annotations

import math

from ..core.parameters import RouterTimingParameters
from .chain import BirthDeathChain
from .transitions import build_chain

__all__ = [
    "conditional_step_rounds_paper_printed",
    "expected_rounds_to_state",
    "f_values",
    "g_values",
    "f_values_paper_recursion",
    "g_values_paper_recursion",
    "conditional_step_rounds",
    "SynchronizationTimes",
    "synchronization_times",
]


def conditional_step_rounds(chain: BirthDeathChain, j: int) -> tuple[float, float]:
    """``(t(j, j-1), t(j, j+1))``: expected rounds in state ``j`` before
    it is left, given the exit direction.

    For a lazy chain the holding time is geometric with success
    probability ``p + q`` independent of the exit direction, so both
    conditional expectations equal ``1 / (p_j + q_j)``.
    """
    p, q = chain.p(j), chain.q(j)
    if p + q == 0.0:
        return math.inf, math.inf
    hold = 1.0 / (p + q)
    return hold, hold


def conditional_step_rounds_paper_printed(
    chain: BirthDeathChain, j: int
) -> tuple[float, float]:
    """The ``t(j, j±1)`` expressions exactly as printed in the paper.

    The publication prints ``t(j,j+1) = p / (p+q)^2`` (the expected
    value of ``X * 1{exit upward}``, i.e. the *unconditional* joint
    expectation) where its prose defines the *conditional* expectation
    "given that the next state is j+1", which is ``1/(p+q)``.  The two
    differ by the factor ``P(up) = p/(p+q)``; only the conditional
    form makes the paper's f/g recursions reproduce the exact
    birth--death hitting times, so :func:`conditional_step_rounds` is
    what the rest of this package uses.  This variant is retained for
    fidelity comparisons (see docs/MODEL.md §3).
    """
    p, q = chain.p(j), chain.q(j)
    if p + q == 0.0:
        return math.inf, math.inf
    denominator = (p + q) ** 2
    t_down = q / denominator if q > 0 else math.inf
    t_up = p / denominator if p > 0 else math.inf
    return t_down, t_up


def f_values(chain: BirthDeathChain, f2: float | None = None) -> list[float]:
    """``f(1..N)``: expected rounds from state 1 to first reach each state.

    Parameters
    ----------
    chain:
        The birth--death chain.
    f2:
        Optional override for ``f(2)``; when given, it replaces the
        value ``1/p(1,2)`` implied by the chain, exactly as the paper
        substitutes its fitted 19 rounds (or 0 for the dotted line of
        Figure 12).
    """
    h = chain.expected_steps_up()
    if f2 is not None:
        if f2 < 0:
            raise ValueError("f(2) must be non-negative")
        h[0] = f2
    values = [0.0]
    total = 0.0
    for step in h:
        total = total + step
        values.append(total)
    return values


def g_values(chain: BirthDeathChain) -> list[float]:
    """``g(1..N)``: expected rounds from state N to first reach each state."""
    d = chain.expected_steps_down()  # d[i-2] = steps from i to i-1
    values = [0.0] * chain.n
    total = 0.0
    for i in range(chain.n - 1, 0, -1):
        total = total + d[i - 1]
        values[i - 1] = total
    return values


def f_values_paper_recursion(chain: BirthDeathChain, f2: float) -> list[float]:
    """``f`` via the paper's Section 5.2 recursion.

    ``f(i) = f(i-1) + [q/(q+p)] (t(i-1,i-2) + f(i) - f(i-2))
              + [p/(q+p)] t(i-1,i)``

    solved for ``f(i)``, where ``p = p(i-1,i)`` and ``q = p(i-1,i-2)``
    and the ``t`` terms are the conditional holding times.  Provided
    for fidelity with the publication; equals :func:`f_values`.
    """
    if f2 < 0:
        raise ValueError("f(2) must be non-negative")
    values = [0.0, f2]
    for i in range(3, chain.n + 1):
        p = chain.p(i - 1)
        q = chain.q(i - 1)
        if p == 0.0:
            values.append(math.inf)
            continue
        t_down, t_up = conditional_step_rounds(chain, i - 1)
        weight_down = q / (p + q)
        weight_up = p / (p + q)
        f_prev, f_prev2 = values[i - 2], values[i - 3]
        # f_i (1 - w_down) = f_prev + w_down (t_down - f_prev2) + w_up t_up
        numerator = f_prev + weight_down * (t_down - f_prev2) + weight_up * t_up
        values.append(numerator / (1.0 - weight_down))
    return values


def g_values_paper_recursion(chain: BirthDeathChain) -> list[float]:
    """``g`` via the paper's recursion (mirror image of ``f``)."""
    values_rev = [0.0]  # g(N)
    # Build g(N-1), ..., g(1).
    g_next = 0.0  # g(i+1)
    g_next2 = 0.0  # g(i+2)
    for i in range(chain.n - 1, 0, -1):
        p = chain.p(i + 1)
        q = chain.q(i + 1)
        if q == 0.0:
            values_rev.append(math.inf)
            g_next, g_next2 = math.inf, g_next
            continue
        t_down, t_up = conditional_step_rounds(chain, i + 1)
        weight_up = p / (p + q)
        weight_down = q / (p + q)
        numerator = g_next + weight_up * (t_up - g_next2) + weight_down * t_down
        g_i = numerator / (1.0 - weight_up) if weight_up < 1.0 else math.inf
        values_rev.append(g_i)
        g_next, g_next2 = g_i, g_next
    return list(reversed(values_rev))


def expected_rounds_to_state(
    chain: BirthDeathChain,
    start: int,
    target: int,
) -> float:
    """Expected rounds from ``start`` to ``target`` (thin wrapper)."""
    return chain.hitting_time(start, target)


class SynchronizationTimes:
    """Bundle of the quantities Figures 10-15 are drawn from.

    Attributes
    ----------
    params:
        The timing parameters.
    chain:
        The underlying birth--death chain.
    f:
        ``f(1..N)`` in rounds.
    g:
        ``g(1..N)`` in rounds.
    """

    def __init__(
        self,
        params: RouterTimingParameters,
        chain: BirthDeathChain,
        f: list[float],
        g: list[float],
    ) -> None:
        self.params = params
        self.chain = chain
        self.f = f
        self.g = g

    @property
    def rounds_to_synchronize(self) -> float:
        """``f(N)`` in rounds."""
        return self.f[-1]

    @property
    def rounds_to_break_up(self) -> float:
        """``g(1)`` in rounds."""
        return self.g[0]

    @property
    def seconds_per_round(self) -> float:
        """The paper converts rounds to seconds with ``Tp + Tc``."""
        return self.params.round_length

    @property
    def seconds_to_synchronize(self) -> float:
        """``f(N) * (Tp + Tc)``."""
        return self.rounds_to_synchronize * self.seconds_per_round

    @property
    def seconds_to_break_up(self) -> float:
        """``g(1) * (Tp + Tc)``."""
        return self.rounds_to_break_up * self.seconds_per_round

    def fraction_unsynchronized(self) -> float:
        """The paper's estimator ``f(N) / (f(N) + g(1))``.

        1.0 when the system can never synchronize, 0.0 when it can
        never break up.
        """
        f_n, g_1 = self.rounds_to_synchronize, self.rounds_to_break_up
        if math.isinf(f_n) and math.isinf(g_1):
            return 0.5  # neither passage possible; convention
        if math.isinf(f_n):
            return 1.0
        if math.isinf(g_1):
            return 0.0
        return f_n / (f_n + g_1)


def synchronization_times(
    params: RouterTimingParameters,
    p12: float | None = None,
    f2: float | None = None,
) -> SynchronizationTimes:
    """Build the chain and compute ``f`` and ``g`` for the parameters.

    Exactly one of ``p12`` or ``f2`` may be given (they are reciprocal);
    if neither is supplied the diffusion estimate from
    :func:`repro.markov.calibration.estimate_f2_diffusion` is used.
    """
    if p12 is not None and f2 is not None:
        raise ValueError("give p12 or f2, not both")
    if p12 is None:
        if f2 is None:
            from .calibration import estimate_f2_diffusion

            f2 = estimate_f2_diffusion(params)
        p12 = 1.0 / f2 if f2 > 0 else 1.0
        p12 = min(p12, 1.0)
    chain = build_chain(params, p12=p12)
    f = f_values(chain, f2=f2)
    g = g_values(chain)
    return SynchronizationTimes(params, chain, f, g)
