"""Estimating ``f(2)`` / ``p(1,2)``.

The paper leaves ``p(1,2)`` — the per-round probability that the first
cluster of size two forms out of N lone routers — "as a variable",
fitting ``f(2) = 19`` rounds for the Figure 10 parameters from
"simulations and an approximate analysis that is not given here".

This module provides both routes:

* :func:`estimate_f2_simulation` measures the first-passage time to a
  size-2 cluster directly on the Periodic Messages DES.
* :func:`estimate_f2_diffusion` is a documented approximate analysis:
  the minimum gap among N uniform offsets on ``[0, Tp]`` has mean
  about ``Tp / N^2``; per round each adjacent gap diffuses with the
  step of a difference of two uniforms on ``[-Tr, Tr]`` (standard
  deviation ``Tr * sqrt(2/3)``), and the first cluster forms when the
  closest pair drifts to within ``Tc``.  Treating that as an unbiased
  random walk gives ``f(2) ~ (max(0, Tp/N^2 - Tc) / step_std)^2 + 1``.
  For the paper's Figure 10 parameters this yields the right order of
  magnitude (a handful to a few tens of rounds).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.model import ModelConfig, PeriodicMessagesModel
from ..core.parameters import RouterTimingParameters

__all__ = ["estimate_f2_diffusion", "estimate_f2_simulation"]


def estimate_f2_diffusion(params: RouterTimingParameters) -> float:
    """Diffusion approximation for ``f(2)`` in rounds (see module doc).

    Returns at least 1.0 (the formation takes at least a round) and
    ``math.inf`` when the timers carry no randomness at all (offsets
    never move, so no cluster can ever form).
    """
    n, tp, tc, tr = params.n_nodes, params.tp, params.tc, params.tr
    if n < 2:
        raise ValueError("need at least two routers to form a cluster")
    expected_min_gap = tp / (n * n)
    distance = max(0.0, expected_min_gap - tc)
    if distance == 0.0:
        return 1.0
    step_std = tr * math.sqrt(2.0 / 3.0)
    if step_std == 0.0:
        return math.inf
    return (distance / step_std) ** 2 + 1.0


def estimate_f2_simulation(
    params: RouterTimingParameters,
    seeds: Sequence[int] = tuple(range(1, 21)),
    horizon_rounds: float = 10_000.0,
) -> float:
    """Measure ``f(2)`` by simulation: mean rounds to the first 2-cluster.

    Runs one Periodic Messages simulation per seed from an
    unsynchronized start and records the first time a cluster of size
    two appears.  Runs that never form a cluster within the horizon
    contribute the full horizon (biasing the estimate low, which is
    reported honestly by callers comparing against the paper's fit).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    round_length = params.round_length
    horizon = horizon_rounds * round_length
    total_rounds = 0.0
    for seed in seeds:
        config = ModelConfig.from_parameters(params, seed=seed, keep_cluster_history=False)
        model = PeriodicMessagesModel(config, initial_phases="unsynchronized")
        model.sim._stopped = False  # fresh run
        # Stop as soon as a 2-cluster forms: reuse the tracker's
        # first-passage record by polling in chunks.
        chunk = 50 * round_length
        elapsed = 0.0
        formed: float | None = None
        while elapsed < horizon:
            elapsed = model.run(until=min(horizon, elapsed + chunk))
            formed = model.tracker.time_to_cluster_size(2)
            if formed is not None:
                break
        total_rounds += (formed if formed is not None else horizon) / round_length
    return total_rounds / len(seeds)
