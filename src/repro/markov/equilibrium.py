"""Long-run synchronization behaviour (Section 5.3, Figures 12-15).

The paper estimates the fraction of time the system spends
unsynchronized as ``f(N) / (f(N) + g(1))`` and shows that, as either
the random component ``Tr`` or the node count ``N`` is varied, this
fraction switches abruptly between ~1 and ~0 — the phase transition.

Because the chain is an honest Markov chain, we can also compute the
*exact* stationary distribution (the paper notes it "was only able to
estimate" it) and integrate the mass at low cluster sizes; both
estimators agree on the location and abruptness of the transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.parameters import RouterTimingParameters
from .hitting_times import SynchronizationTimes, synchronization_times

__all__ = [
    "RandomizationRegion",
    "classify_randomization",
    "fraction_unsynchronized_sweep",
    "fraction_unsynchronized_vs_nodes",
    "stationary_fraction_below",
    "transition_sharpness",
]


@dataclass(frozen=True)
class RandomizationRegion:
    """Classification of a parameter point (Figure 12's three regions)."""

    region: str  # "low", "moderate", or "high"
    rounds_to_synchronize: float
    rounds_to_break_up: float


def classify_randomization(
    params: RouterTimingParameters,
    threshold_rounds: float = 1e5,
    f2: float | None = None,
) -> RandomizationRegion:
    """Label a parameter point low/moderate/high randomization.

    * low — the system synchronizes quickly (``f(N)`` below the
      threshold) and essentially never breaks up;
    * high — it breaks up quickly (``g(1)`` below the threshold) and
      essentially never synchronizes;
    * moderate — both passages take a long time.
    """
    times = synchronization_times(params, f2=f2)
    f_n = times.rounds_to_synchronize
    g_1 = times.rounds_to_break_up
    fast_sync = f_n <= threshold_rounds
    fast_break = g_1 <= threshold_rounds
    if fast_sync and not fast_break:
        region = "low"
    elif fast_break and not fast_sync:
        region = "high"
    elif fast_sync and fast_break:
        # Both fast: the side that is faster dominates.
        region = "low" if f_n < g_1 else "high"
    else:
        region = "moderate"
    return RandomizationRegion(region, f_n, g_1)


def fraction_unsynchronized_sweep(
    params: RouterTimingParameters,
    tr_values: Sequence[float],
    f2: float | None = None,
) -> list[tuple[float, float]]:
    """Figure 14: (Tr, fraction of time unsynchronized) pairs."""
    results = []
    for tr in tr_values:
        times = synchronization_times(params.with_tr(tr), f2=f2)
        results.append((tr, times.fraction_unsynchronized()))
    return results


def fraction_unsynchronized_vs_nodes(
    params: RouterTimingParameters,
    n_values: Sequence[int],
    f2: float | None = None,
) -> list[tuple[int, float]]:
    """Figure 15: (N, fraction of time unsynchronized) pairs."""
    results = []
    for n in n_values:
        times = synchronization_times(params.with_nodes(n), f2=f2)
        results.append((n, times.fraction_unsynchronized()))
    return results


def stationary_fraction_below(
    times: SynchronizationTimes,
    max_cluster_size: int = 2,
) -> float:
    """Exact stationary mass at cluster sizes ``<= max_cluster_size``.

    An extension beyond the paper: the equilibrium distribution of the
    chain, computed exactly, integrated over the unsynchronized
    states.
    """
    if not 1 <= max_cluster_size <= times.chain.n:
        raise ValueError("max_cluster_size outside state space")
    pi = times.chain.stationary_distribution()
    return float(pi[:max_cluster_size].sum())


def transition_sharpness(
    curve: Sequence[tuple[float, float]],
    low: float = 0.1,
    high: float = 0.9,
) -> float:
    """Width of the parameter interval where the curve crosses (low, high).

    For the phase-transition figures this quantifies "abrupt": the
    returned width is the distance between the last parameter with
    fraction <= low and the first with fraction >= high (or vice versa
    for decreasing curves).  Raises if the curve never spans the band.
    """
    if not 0.0 <= low < high <= 1.0:
        raise ValueError("need 0 <= low < high <= 1")
    xs = [x for x, _ in curve]
    ys = [y for _, y in curve]
    if len(xs) < 2:
        raise ValueError("need at least two points")
    increasing = ys[-1] >= ys[0]
    if not increasing:
        ys = [1.0 - y for y in ys]
        low, high = 1.0 - high, 1.0 - low
    below = [x for x, y in zip(xs, ys) if y <= low]
    above = [x for x, y in zip(xs, ys) if y >= high]
    if not below or not above:
        raise ValueError("curve does not span the requested band")
    return abs(min(above) - max(below))
