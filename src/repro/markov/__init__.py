"""The Section 5 Markov chain model and its analysis."""

from .calibration import estimate_f2_diffusion, estimate_f2_simulation
from .chain import BirthDeathChain
from .critical import critical_n, critical_tr, fraction_unsynchronized_at
from .equilibrium import (
    RandomizationRegion,
    classify_randomization,
    fraction_unsynchronized_sweep,
    fraction_unsynchronized_vs_nodes,
    stationary_fraction_below,
    transition_sharpness,
)
from .hitting_times import (
    SynchronizationTimes,
    conditional_step_rounds,
    conditional_step_rounds_paper_printed,
    expected_rounds_to_state,
    f_values,
    f_values_paper_recursion,
    g_values,
    g_values_paper_recursion,
    synchronization_times,
)
from .transitions import (
    breakup_probability,
    build_chain,
    cluster_drift_per_round,
    growth_probability,
)

__all__ = [
    "estimate_f2_diffusion",
    "estimate_f2_simulation",
    "BirthDeathChain",
    "critical_n",
    "critical_tr",
    "fraction_unsynchronized_at",
    "RandomizationRegion",
    "classify_randomization",
    "fraction_unsynchronized_sweep",
    "fraction_unsynchronized_vs_nodes",
    "stationary_fraction_below",
    "transition_sharpness",
    "SynchronizationTimes",
    "conditional_step_rounds",
    "conditional_step_rounds_paper_printed",
    "expected_rounds_to_state",
    "f_values",
    "f_values_paper_recursion",
    "g_values",
    "g_values_paper_recursion",
    "synchronization_times",
    "breakup_probability",
    "build_chain",
    "cluster_drift_per_round",
    "growth_probability",
]
