"""The paper's transition probabilities (Section 5.1).

The Markov chain state is the size ``i`` of the largest cluster in a
round of N routing messages.  The paper derives:

* **Break-up** (Equation 1): the cluster's ``i`` timers expire at
  times uniform in a ``2 Tr`` window; the head escapes when the gap
  between the first and second expiry exceeds ``Tc``::

      p(i, i-1) = (1 - Tc / (2 Tr)) ** i        for i > 1

  (zero when ``Tr <= Tc/2`` — a cluster can then never shed its head).

* **Growth** (Equation 2): a cluster of size ``i`` advances by
  ``(i-1) Tc - Tr (i-1)/(i+1)`` seconds per round relative to a lone
  cluster, and the gap to the following lone cluster is exponential
  with mean ``Tp / (N - i + 1)``::

      p(i, i+1) = 1 - exp(-((N-i+1)/Tp) * ((i-1) Tc - Tr (i-1)/(i+1)))

  for ``2 <= i <= N-1`` (zero if the drift is negative).

* ``p(1, 2)`` is not derived in the paper; it is supplied externally,
  either as a fitted ``f(2)`` (the paper uses 19 rounds for Figure
  10), from simulation, or from the diffusion approximation in
  :mod:`repro.markov.calibration`.
"""

from __future__ import annotations

import math

from ..core.parameters import RouterTimingParameters
from .chain import BirthDeathChain

__all__ = [
    "breakup_probability",
    "cluster_drift_per_round",
    "growth_probability",
    "build_chain",
]


def breakup_probability(i: int, tc: float, tr: float) -> float:
    """Equation 1: probability a cluster of size ``i`` loses its head.

    The first of ``i`` uniform order statistics on a ``2 Tr`` interval
    is followed by a gap exceeding ``Tc`` with probability
    ``(1 - Tc/(2 Tr))**i`` (Feller).
    """
    if i < 1:
        raise ValueError("cluster size must be positive")
    if tc < 0 or tr < 0:
        raise ValueError("Tc and Tr must be non-negative")
    if i == 1:
        return 0.0  # a lone cluster has no head to shed
    if tr == 0.0 or tc >= 2.0 * tr:
        return 0.0
    return (1.0 - tc / (2.0 * tr)) ** i


def cluster_drift_per_round(i: int, tc: float, tr: float) -> float:
    """Mean advance of a size-``i`` cluster relative to a lone cluster.

    A cluster's busy period lasts ``i*Tc`` instead of ``Tc``, but its
    round starts at the *minimum* of ``i`` timer draws, which is
    ``Tr (i-1)/(i+1)`` earlier than the mean.  Net per-round drift:
    ``(i-1) Tc - Tr (i-1)/(i+1)`` seconds.
    """
    if i < 1:
        raise ValueError("cluster size must be positive")
    return (i - 1) * tc - tr * (i - 1) / (i + 1)


def growth_probability(
    i: int,
    n_nodes: int,
    tp: float,
    tc: float,
    tr: float,
) -> float:
    """Equation 2: probability a cluster of size ``i`` absorbs a follower.

    The distance to the following lone cluster is modelled as
    exponential with mean ``Tp / (N - i + 1)``; the cluster catches it
    within a round when that distance is less than the drift.
    """
    if not 1 <= i <= n_nodes:
        raise ValueError(f"cluster size {i} outside [1, {n_nodes}]")
    if i == n_nodes:
        return 0.0  # nothing left to absorb
    drift = cluster_drift_per_round(i, tc, tr)
    if drift <= 0.0:
        return 0.0
    rate = (n_nodes - i + 1) / tp
    return 1.0 - math.exp(-rate * drift)


def build_chain(
    params: RouterTimingParameters,
    p12: float,
) -> BirthDeathChain:
    """Assemble the paper's chain for the given timing parameters.

    Parameters
    ----------
    params:
        The (N, Tp, Tc, Tr) tuple.
    p12:
        The probability of forming a first cluster of size two in one
        round (``p(1,2) = 1/f(2)``); see module docstring.
    """
    if not 0.0 <= p12 <= 1.0:
        raise ValueError(f"p12 must be a probability, got {p12}")
    n, tp, tc, tr = params.n_nodes, params.tp, params.tc, params.tr
    if n < 2:
        raise ValueError("the chain needs at least two states")
    up = []
    down = []
    for i in range(1, n + 1):
        if i == 1:
            up.append(p12)
            down.append(0.0)
        else:
            p = growth_probability(i, n, tp, tc, tr)
            q = breakup_probability(i, tc, tr)
            # Equations 1 and 2 are independent approximations; at
            # extreme parameters (very large N or Tc relative to Tp)
            # their sum can nominally exceed one.  Renormalize onto
            # the simplex boundary: the state then changes every round,
            # with the derived odds.
            total = p + q
            if total > 1.0:
                p /= total
                q /= total
            up.append(p)
            down.append(q)
    return BirthDeathChain(up, down)
