"""Locating the phase boundary.

Figures 14 and 15 show the fraction of time unsynchronized switching
abruptly as ``Tr`` or ``N`` crosses a threshold.  These helpers find
that threshold numerically: the value where the estimator
``f(N)/(f(N)+g(1))`` crosses one half.  Deployment guidance ("how much
jitter does this network need", "how many routers until this network
locks up") falls straight out.
"""

from __future__ import annotations

from ..core.parameters import RouterTimingParameters
from .hitting_times import synchronization_times

__all__ = ["fraction_unsynchronized_at", "critical_tr", "critical_n"]


def fraction_unsynchronized_at(params: RouterTimingParameters, f2: float | None = None) -> float:
    """The equilibrium estimator at one parameter point."""
    return synchronization_times(params, f2=f2).fraction_unsynchronized()


def critical_tr(
    params: RouterTimingParameters,
    tr_low: float | None = None,
    tr_high: float | None = None,
    tolerance: float = 1e-3,
    f2: float | None = None,
) -> float:
    """The Tr at which the network switches to staying unsynchronized.

    Bisects the fraction-unsynchronized estimator (monotone
    non-decreasing in Tr) for its 0.5 crossing.  Defaults bracket with
    ``[Tc/2, min(8 Tc, Tp)]``; raises if the bracket does not span the
    transition.
    """
    tc = params.tc
    if tc <= 0:
        raise ValueError("critical_tr needs a positive Tc")
    lo = tr_low if tr_low is not None else 0.51 * tc
    hi = tr_high if tr_high is not None else min(8.0 * tc, params.tp)
    if not 0 <= lo < hi:
        raise ValueError(f"invalid bracket [{lo}, {hi}]")
    f_lo = fraction_unsynchronized_at(params.with_tr(lo), f2=f2)
    f_hi = fraction_unsynchronized_at(params.with_tr(hi), f2=f2)
    if f_lo >= 0.5 or f_hi <= 0.5:
        raise ValueError(
            f"bracket does not span the transition: "
            f"fraction({lo:.4g})={f_lo:.3g}, fraction({hi:.4g})={f_hi:.3g}"
        )
    while hi - lo > tolerance * tc:
        mid = 0.5 * (lo + hi)
        if fraction_unsynchronized_at(params.with_tr(mid), f2=f2) < 0.5:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def critical_n(
    params: RouterTimingParameters,
    n_low: int = 2,
    n_high: int = 200,
    f2: float | None = None,
) -> int:
    """The smallest N at which the network ends up synchronized.

    The fraction-unsynchronized estimator is monotone non-increasing
    in N; returns the first N with fraction below one half — the
    paper's "addition of a single router will convert a completely
    unsynchronized traffic stream into a completely synchronized one"
    expressed as a number.
    """
    if not 2 <= n_low < n_high:
        raise ValueError("need 2 <= n_low < n_high")
    if fraction_unsynchronized_at(params.with_nodes(n_low), f2=f2) < 0.5:
        return n_low
    if fraction_unsynchronized_at(params.with_nodes(n_high), f2=f2) >= 0.5:
        raise ValueError(f"no transition up to N={n_high}")
    lo, hi = n_low, n_high  # invariant: lo unsync, hi sync
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if fraction_unsynchronized_at(params.with_nodes(mid), f2=f2) < 0.5:
            hi = mid
        else:
            lo = mid
    return hi
