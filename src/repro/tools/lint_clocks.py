"""Flag wall-clock reads outside the observability layer.

The reproduction's determinism story depends on simulated time being
the *only* time most of the code ever sees: results derive from seeds
and parameters, never from when the code happened to run.  Real clocks
are legitimate in exactly one place — :mod:`repro.obs`, whose clock
module wraps them once (``monotonic``/``perf_counter`` for intervals,
``wall_time`` for timestamps) so every other module that needs a
duration or a stamp imports the wrapper and is greppable for it.

This linter enforces the boundary: it walks the AST of a source tree
and reports every call to

* ``time.time()`` — wall-clock seconds, and
* ``datetime.now()`` / ``datetime.utcnow()`` / ``date.today()`` (and
  their ``datetime.datetime.*`` spellings) — wall-clock datetimes,

in any module outside the **allowlist**.  Monotonic interval clocks
(``time.monotonic``, ``time.perf_counter``) are allowed everywhere —
they cannot leak the date into a result, only measure how long
something took.

The allowlist is an explicit mechanism, not a hardcoded carve-out:
:data:`WALL_CLOCK_ALLOWLIST` names the code with a legitimate claim
on real time — ``obs`` (the measurement plane, whose clock module
wraps the raw calls), ``serve`` (the serving layer: HTTP ``Date``
headers and drain deadlines are wall-clock concepts by definition,
and nothing in ``serve`` feeds a simulation result), and
``parallel/claims.py`` (cross-process claim heartbeats are wall-clock
stamps read by other processes).  Entries are either bare package
directory names (``obs``) or ``pkg/file.py`` path suffixes for a
single-module grant.  Callers can extend or replace it:
``scan_file``/``scan_tree`` take an ``allow=`` sequence, and the CLI
takes repeated ``--allow NAME`` flags (each adds to the default) or
``--no-default-allow`` to start from an empty list.

Escape hatch for single sites elsewhere: a ``# lint:
allow-wallclock`` comment on the offending line (or the line above)
suppresses the finding — making every deliberate wall-clock read a
visible, reviewable annotation.

Usage::

    python -m repro.tools.lint_clocks [paths...]   # default: src/repro
    python -m repro.tools.lint_clocks --allow mypkg src/

Exit status 1 when findings exist, 0 otherwise; also invoked by the
tier-1 test suite (``tests/test_tools_lint.py``) so a stray
``time.time()`` fails CI.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "ALLOW_COMMENT",
    "DEFAULT_ALLOWLIST",
    "WALL_CLOCK_ALLOWLIST",
    "Finding",
    "main",
    "scan_file",
    "scan_tree",
]

ALLOW_COMMENT = "lint: allow-wallclock"

#: ``(module-ish prefix, attribute)`` pairs that read the wall clock.
#: Matched against dotted call targets like ``time.time`` or
#: ``datetime.datetime.now`` — see :func:`_dotted_name`.
_FORBIDDEN_ATTRS = {
    "time": ("time",),
    "datetime": ("now", "utcnow", "today"),
    "date": ("today",),
}

#: Code allowed to read the wall clock.  Bare names exempt a whole
#: package directory; ``pkg/file.py`` entries exempt one module by
#: path suffix.  ``obs`` wraps the raw clocks once for everyone else;
#: ``serve`` speaks HTTP, where Date headers and Retry-After/drain
#: deadlines are wall-clock concepts; ``parallel/claims.py`` stamps
#: claim-record heartbeats that other processes judge for staleness.
#: None of these can leak time into a simulation result (enforced by
#: the obs-inert and serve byte-identity suites).
WALL_CLOCK_ALLOWLIST = ("obs", "serve", "parallel/claims.py")

#: Backward-compatible alias (pre-PR-7 name).
DEFAULT_ALLOWLIST = WALL_CLOCK_ALLOWLIST


class Finding:
    """One flagged call: file, line, and a human-readable reason."""

    def __init__(self, path: Path, line: int, reason: str) -> None:
        self.path = path
        self.line = line
        self.reason = reason

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.reason}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Finding({str(self)!r})"


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for an attribute chain of plain names, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _wallclock_call(node: ast.Call) -> str | None:
    """The offending dotted name when the call reads the wall clock.

    Matches both ``time.time()`` / ``datetime.now()`` style calls on a
    dotted chain, and bare calls of a directly imported name such as
    ``from time import time; time()``.
    """
    dotted = _dotted_name(node.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    attr = parts[-1]
    base = parts[-2] if len(parts) >= 2 else None
    if base is not None:
        if attr in _FORBIDDEN_ATTRS.get(base, ()):
            return dotted
        return None
    # A bare name: only ``utcnow``/``today`` are unambiguous enough to
    # flag (a bare ``time()`` or ``now()`` is routinely a local helper).
    if attr in ("utcnow",):
        return dotted
    return None


def _is_exempt(path: Path, allow: Sequence[str]) -> bool:
    """True when the path matches an allowlist entry.

    Entries containing ``/`` match as path suffixes (single-module
    grants like ``parallel/claims.py``); bare entries match any path
    component (whole-package grants like ``obs``).
    """
    posix = path.as_posix()
    for entry in allow:
        if "/" in entry:
            if posix.endswith(entry):
                return True
        elif entry in path.parts:
            return True
    return False


def scan_file(
    path: Path, allow: Sequence[str] = DEFAULT_ALLOWLIST
) -> list[Finding]:
    """All wall-clock reads in one file (empty for allowlisted files)."""
    if _is_exempt(path, allow):
        return []
    try:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError) as error:
        return [Finding(path, 1, f"could not scan: {error}")]
    lines = source.splitlines()
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _wallclock_call(node)
        if dotted is None:
            continue
        window = lines[max(0, node.lineno - 2) : node.lineno]
        if any(ALLOW_COMMENT in line for line in window):
            continue
        findings.append(
            Finding(
                path,
                node.lineno,
                f"{dotted}() reads the wall clock outside the allowlist "
                f"(use repro.obs.clock.wall_time, or annotate "
                f"'# {ALLOW_COMMENT}')",
            )
        )
    return findings


def scan_tree(
    paths: Iterable[Path], allow: Sequence[str] = DEFAULT_ALLOWLIST
) -> list[Finding]:
    """Recursively scan files and directories for wall-clock reads."""
    findings: list[Finding] = []
    for path in paths:
        if path.is_dir():
            for source in sorted(path.rglob("*.py")):
                findings.extend(scan_file(source, allow))
        else:
            findings.extend(scan_file(path, allow))
    return findings


def default_target() -> Path:
    """The package source tree this file lives in (``src/repro``)."""
    return Path(__file__).resolve().parents[1]


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns 1 when findings exist."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint_clocks",
        description="flag wall-clock reads outside allowlisted packages",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to scan"
    )
    parser.add_argument(
        "--allow",
        action="append",
        default=[],
        metavar="NAME",
        help="additional package (directory) name allowed to read the "
        "wall clock; repeatable",
    )
    parser.add_argument(
        "--no-default-allow",
        action="store_true",
        help=f"start from an empty allowlist instead of "
        f"{', '.join(DEFAULT_ALLOWLIST)}",
    )
    options = parser.parse_args(sys.argv[1:] if argv is None else list(argv))
    allow = tuple(
        ([] if options.no_default_allow else list(DEFAULT_ALLOWLIST))
        + options.allow
    )
    targets = options.paths or [default_target()]
    findings = scan_tree(targets, allow)
    for finding in findings:
        print(finding)
    if findings:
        allowed = ", ".join(allow) if allow else "(none)"
        print(
            f"{len(findings)} wall-clock read(s) found outside the "
            f"allowlist [{allowed}]"
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
