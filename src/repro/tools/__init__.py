"""Developer tooling that ships with the repo (not used at runtime).

``python -m repro.tools.lint_excepts`` — flag broad exception handlers
that silently swallow errors, the failure mode that turned PR 1's
"graceful degradation" into untestable dead code.

``python -m repro.tools.lint_clocks`` — flag wall-clock reads
(``time.time()``, ``datetime.now()``) outside ``repro.obs``, whose
clock module is the one sanctioned wrapper; everything else must stay
deterministic in seeds and parameters.
"""
