"""Flag determinism hazards inside the simulation core.

The reproduction's headline guarantee is byte-identity: every engine
and backend produces the same float64 trajectory from the same seed,
on every machine, forever.  Three numpy idioms quietly break that
guarantee and belong nowhere in ``repro.core``:

* ``np.random`` — any use.  The core's randomness is the paper's
  31-bit Lehmer generator (``repro.rng.lehmer``), advanced explicitly
  and snapshotted in results; ``np.random`` draws from hidden global
  state with its own seeding semantics, so a single call desyncs the
  consumed-RNG-position checks in the differential matrix.
* ``float32`` dtypes — results are float64 end to end.  A float32
  slab rounds differently per platform SIMD width and silently
  poisons every comparison with the scalar paths.
* axis-less ``np.sum``/``np.prod`` over float slabs — numpy's
  full-array reductions use pairwise/SIMD association, so the result
  depends on array layout and build flags.  The core's kernels sum
  in an explicit, documented order (or over a stated axis); a bare
  ``np.sum(slab)`` is an order-unstable reduction waiting to differ.

This linter walks the AST of a source tree (default: the ``core``
package next to this file's parent) and reports every such use.  Like
the clock and except linters it is test-enforced
(``tests/test_tools_lint_determinism.py`` scans the shipped package)
and CI runs it directly.

Escape hatch for single deliberate sites: a ``# lint:
allow-nondeterminism`` comment on the offending line (or the line
above) suppresses the finding — every exception stays a visible,
reviewable annotation.  Integer reductions are a common legitimate
case: ``np.sum`` over ints is exact in any order, so annotate those.

Usage::

    python -m repro.tools.lint_determinism [paths...]  # default: src/repro/core

Exit status 1 when findings exist, 0 otherwise.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "ALLOW_COMMENT",
    "Finding",
    "main",
    "scan_file",
    "scan_tree",
]

ALLOW_COMMENT = "lint: allow-nondeterminism"

#: Names the linter treats as "the numpy module" in dotted chains.
_NUMPY_ALIASES = ("np", "numpy", "_np")

#: Axis-less calls of these numpy reductions are order-unstable.
_UNSTABLE_REDUCTIONS = ("sum", "prod", "nansum", "nanprod", "dot", "einsum")


class Finding:
    """One flagged site: file, line, and a human-readable reason."""

    def __init__(self, path: Path, line: int, reason: str) -> None:
        self.path = path
        self.line = line
        self.reason = reason

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.reason}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Finding({str(self)!r})"


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for an attribute chain of plain names, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _reason_for_node(node: ast.AST) -> str | None:
    """The violation message for one AST node, or None."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "numpy.random" or alias.name.startswith(
                "numpy.random."
            ):
                return (
                    f"import of {alias.name!r}: np.random's hidden global "
                    "state breaks seed-derived byte-identity (use "
                    "repro.rng.lehmer streams)"
                )
        return None
    if isinstance(node, ast.ImportFrom):
        module = node.module or ""
        if module == "numpy.random" or module.startswith("numpy.random."):
            return (
                f"import from {module!r}: np.random's hidden global state "
                "breaks seed-derived byte-identity (use repro.rng.lehmer "
                "streams)"
            )
        if module == "numpy" and any(a.name == "random" for a in node.names):
            return (
                "import of numpy.random: use repro.rng.lehmer streams "
                "instead"
            )
        if module == "numpy" and any(a.name == "float32" for a in node.names):
            return "float32 import: core slabs are float64 end to end"
        return None
    if isinstance(node, ast.Attribute):
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if len(parts) >= 2 and parts[0] in _NUMPY_ALIASES:
            # Flag only the exact ``np.random`` node: longer chains
            # like ``np.random.seed`` contain it as a child, and
            # flagging both would double-report every site.
            if parts[1] == "random" and len(parts) == 2:
                return (
                    f"{dotted}: np.random's hidden global state breaks "
                    "seed-derived byte-identity (use repro.rng.lehmer "
                    "streams)"
                )
            if parts[-1] == "float32":
                return (
                    f"{dotted}: core slabs are float64 end to end; a "
                    "float32 dtype rounds differently per platform"
                )
        return None
    if isinstance(node, ast.keyword):
        if (
            node.arg == "dtype"
            and isinstance(node.value, ast.Constant)
            and node.value.value == "float32"
        ):
            return (
                'dtype="float32": core slabs are float64 end to end; a '
                "float32 dtype rounds differently per platform"
            )
        return None
    if isinstance(node, ast.Call):
        dotted = _dotted_name(node.func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if (
            len(parts) == 2
            and parts[0] in _NUMPY_ALIASES
            and parts[1] in _UNSTABLE_REDUCTIONS
        ):
            has_axis = any(kw.arg == "axis" for kw in node.keywords)
            if parts[1] in ("dot", "einsum") or not has_axis:
                return (
                    f"{dotted}() is an order-unstable reduction over a "
                    "float slab (pairwise/SIMD association varies by "
                    "build); reduce in an explicit order or over a "
                    "stated axis, or annotate an integer reduction with "
                    f"'# {ALLOW_COMMENT}'"
                )
        return None
    return None


def scan_file(path: Path) -> list[Finding]:
    """All determinism hazards in one file."""
    try:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError) as error:
        return [Finding(path, 1, f"could not scan: {error}")]
    lines = source.splitlines()
    findings = []
    flagged: set[tuple[int, str]] = set()  # one finding per site
    for node in ast.walk(tree):
        reason = _reason_for_node(node)
        if reason is None:
            continue
        lineno = getattr(node, "lineno", None)
        if lineno is None or (lineno, reason) in flagged:  # pragma: no cover
            continue
        flagged.add((lineno, reason))
        window = lines[max(0, lineno - 2) : lineno]
        if any(ALLOW_COMMENT in line for line in window):
            continue
        findings.append(Finding(path, lineno, reason))
    findings.sort(key=lambda f: f.line)
    return findings


def scan_tree(paths: Iterable[Path]) -> list[Finding]:
    """Recursively scan files and directories for determinism hazards."""
    findings: list[Finding] = []
    for path in paths:
        if path.is_dir():
            for source in sorted(path.rglob("*.py")):
                findings.extend(scan_file(source))
        else:
            findings.extend(scan_file(path))
    return findings


def default_target() -> Path:
    """The simulation core this lint guards (``src/repro/core``)."""
    return Path(__file__).resolve().parents[1] / "core"


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns 1 when findings exist."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint_determinism",
        description="flag np.random, float32 dtypes, and order-unstable "
        "reductions inside the simulation core",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to scan"
    )
    options = parser.parse_args(sys.argv[1:] if argv is None else list(argv))
    targets = options.paths or [default_target()]
    findings = scan_tree(targets)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} determinism hazard(s) found")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
