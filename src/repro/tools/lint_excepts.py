"""Flag silent exception swallowing: ``except Exception: pass``.

A resilient execution layer lives or dies by *visible* failure
handling — every recovery path in ``repro.parallel`` retries, counts,
warns, or re-raises.  This linter keeps it that way: it walks the
AST of a source tree and reports every handler that is simultaneously

* **broad** — a bare ``except:``, ``except Exception:``, or
  ``except BaseException:`` (narrow handlers like ``except OSError``
  are a legitimate idiom for best-effort filesystem work), and
* **silent** — a body consisting only of ``pass``/``...`` (a handler
  that logs, counts, returns a sentinel, or re-raises is fine).

Escape hatch: a ``# lint: allow-swallow`` comment on the ``except``
line (or the line above) suppresses the finding — making every
deliberate swallow a visible, reviewable annotation.

Usage::

    python -m repro.tools.lint_excepts [paths...]   # default: src/repro

Exit status 1 when findings exist, 0 otherwise; also invoked by the
tier-1 test suite (``tests/test_tools_lint.py``) so a new silent
swallow fails CI.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["ALLOW_COMMENT", "Finding", "main", "scan_file", "scan_tree"]

ALLOW_COMMENT = "lint: allow-swallow"

_BROAD_NAMES = ("Exception", "BaseException")


class Finding:
    """One flagged handler: file, line, and a human-readable reason."""

    def __init__(self, path: Path, line: int, reason: str) -> None:
        self.path = path
        self.line = line
        self.reason = reason

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.reason}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Finding({str(self)!r})"


def _is_broad(handler: ast.ExceptHandler) -> str | None:
    """The broad exception name, or None if the handler is narrow."""
    if handler.type is None:
        return "bare except"
    if isinstance(handler.type, ast.Name) and handler.type.id in _BROAD_NAMES:
        return f"except {handler.type.id}"
    return None


def _is_silent(body: Sequence[ast.stmt]) -> bool:
    """True when the handler body does nothing at all."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


def scan_file(path: Path) -> list[Finding]:
    """All silent broad handlers in one file."""
    try:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError) as error:
        return [Finding(path, 1, f"could not scan: {error}")]
    lines = source.splitlines()
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad = _is_broad(node)
        if broad is None or not _is_silent(node.body):
            continue
        window = lines[max(0, node.lineno - 2) : node.lineno]
        if any(ALLOW_COMMENT in line for line in window):
            continue
        findings.append(
            Finding(
                path,
                node.lineno,
                f"{broad} with a pass-only body swallows errors silently "
                f"(count, warn, or re-raise; or annotate '# {ALLOW_COMMENT}')",
            )
        )
    return findings


def scan_tree(paths: Iterable[Path]) -> list[Finding]:
    """Recursively scan files and directories for silent swallows."""
    findings: list[Finding] = []
    for path in paths:
        if path.is_dir():
            for source in sorted(path.rglob("*.py")):
                findings.extend(scan_file(source))
        else:
            findings.extend(scan_file(path))
    return findings


def default_target() -> Path:
    """The package source tree this file lives in (``src/repro``)."""
    return Path(__file__).resolve().parents[1]


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns 1 when findings exist."""
    argv = list(sys.argv[1:] if argv is None else argv)
    targets = [Path(arg) for arg in argv] or [default_target()]
    findings = scan_tree(targets)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} silent exception swallow(s) found")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
