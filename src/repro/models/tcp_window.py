"""TCP window increase/decrease synchronization [ZhCl90, FJ92].

Section 1's first example: "the synchronization of the window
increase/decrease cycles of separate TCP connections sharing a common
bottleneck gateway", avoidable "by adding randomization to the
gateway's algorithm for choosing packets to drop during periods of
congestion" [FJ92].

The model is a round-per-RTT congestion-avoidance abstraction: each
connection grows its window by one segment per round; when the sum of
windows exceeds the pipe (capacity + buffer) the gateway drops, and
the drop policy decides who halves:

* ``"all"`` — drop-tail overflow hits every connection (the classic
  synchronized sawtooth);
* ``"random"`` — a RED-style gateway picks one connection, weighted by
  its share of the traffic;
* ``"fraction"`` — each connection is hit independently with a fixed
  probability (a partially randomized gateway), interpolating between
  the two extremes.

With policy "all", the windows move in lock step and aggregate
utilization dips after every overflow; with "random" the sawtooths
interleave and utilization stays high.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rng import RandomSource

__all__ = ["TcpWindowConfig", "TcpWindowModel"]


@dataclass(frozen=True)
class TcpWindowConfig:
    """Parameters of the shared-bottleneck population.

    Attributes
    ----------
    n_connections:
        TCP connections sharing the bottleneck.
    capacity:
        Bottleneck bandwidth-delay product in segments per RTT.
    buffer:
        Gateway queue capacity in segments.
    drop_policy:
        ``"all"`` (drop-tail: everyone halves), ``"random"``
        (RED-like: one victim, chosen proportionally to its window),
        or ``"fraction"`` (each connection halves independently with
        probability ``fraction_hit``).
    fraction_hit:
        Per-connection halving probability for the "fraction" policy.
    seed:
        Random seed (victim selection, initial windows).
    """

    n_connections: int = 10
    capacity: int = 100
    buffer: int = 40
    drop_policy: str = "all"
    fraction_hit: float = 0.5
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_connections < 1:
            raise ValueError("need at least one connection")
        if self.capacity < self.n_connections:
            raise ValueError("capacity must fit at least one segment per connection")
        if self.buffer < 0:
            raise ValueError("buffer must be non-negative")
        if self.drop_policy not in ("all", "random", "fraction"):
            raise ValueError(f"unknown drop_policy {self.drop_policy!r}")
        if not 0.0 < self.fraction_hit <= 1.0:
            raise ValueError("fraction_hit must be in (0, 1]")


class TcpWindowModel:
    """Round-based simulation of congestion-avoidance sawtooths."""

    def __init__(self, config: TcpWindowConfig) -> None:
        self.config = config
        self.rng = RandomSource.scrambled(config.seed)
        # Start with small, randomly spread windows.
        self.windows = [
            1 + self.rng.randint(0, max(1, config.capacity // config.n_connections))
            for _ in range(config.n_connections)
        ]
        self.rounds = 0
        self.window_history: list[list[int]] = [list(self.windows)]
        self.halving_rounds: list[list[int]] = []  # connections halved per round
        self.throughput_history: list[int] = []

    @property
    def pipe_size(self) -> int:
        """Segments in flight the path can hold before overflow."""
        return self.config.capacity + self.config.buffer

    def step(self) -> None:
        """Advance one RTT: additive increase, then drops on overflow."""
        self.rounds += 1
        self.windows = [w + 1 for w in self.windows]
        halved: list[int] = []
        total = sum(self.windows)
        if total > self.pipe_size:
            if self.config.drop_policy == "all":
                halved = list(range(len(self.windows)))
            elif self.config.drop_policy == "random":
                halved = [self._pick_victim()]
            else:  # fraction
                halved = [
                    index for index in range(len(self.windows))
                    if self.rng.bernoulli(self.config.fraction_hit)
                ]
                if not halved:
                    halved = [self._pick_victim()]  # someone must back off
            for index in halved:
                self.windows[index] = max(1, self.windows[index] // 2)
        self.halving_rounds.append(halved)
        self.throughput_history.append(min(sum(self.windows), self.config.capacity))
        self.window_history.append(list(self.windows))

    def _pick_victim(self) -> int:
        """Choose a connection to halve, weighted by window size.

        This is the random-drop insight of [FJ92]: a uniformly random
        *packet* belongs to connection k with probability proportional
        to k's share of the traffic.
        """
        total = sum(self.windows)
        target = self.rng.uniform(0.0, float(total))
        running = 0.0
        for index, window in enumerate(self.windows):
            running += window
            if target <= running:
                return index
        return len(self.windows) - 1

    def run(self, rounds: int) -> None:
        """Advance the model by ``rounds`` RTTs."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        for _ in range(rounds):
            self.step()

    # -- measurement -----------------------------------------------------------

    def synchronization_index(self) -> float:
        """Fraction of loss events in which *every* connection halved.

        1.0 is the fully synchronized drop-tail pathology; with random
        single-victim drops the index is 0.
        """
        loss_rounds = [h for h in self.halving_rounds if h]
        if not loss_rounds:
            return 0.0
        full = sum(1 for h in loss_rounds if len(h) == self.config.n_connections)
        return full / len(loss_rounds)

    def mean_utilization(self, warmup_rounds: int = 50) -> float:
        """Average bottleneck utilization after a warm-up."""
        usable = self.throughput_history[warmup_rounds:]
        if not usable:
            raise ValueError("not enough rounds recorded")
        return sum(usable) / (len(usable) * self.config.capacity)

    def aggregate_window_series(self) -> list[int]:
        """Total outstanding segments per round (the sawtooth trace)."""
        return [sum(snapshot) for snapshot in self.window_history]
