"""Synchronization to an external clock.

Section 1: "[Pa93a] shows DECnet traffic peaks on the hour and
half-hour intervals; [Pa93b] shows peaks in ftp traffic as several
users fetch the most recent weather map from Colorado every hour on
the hour."  Processes that never interact still synchronize because
each aligns to the same wall clock.

The model generates event times for a population of periodic tasks,
some clock-aligned ("on the hour") and some phase-randomized, and
measures how peaked the aggregate load is.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rng import RandomSource

__all__ = ["ClockAlignmentConfig", "ExternalClockModel"]


@dataclass(frozen=True)
class ClockAlignmentConfig:
    """Parameters for the clock-alignment experiment.

    Attributes
    ----------
    n_tasks:
        Number of independent periodic tasks.
    period:
        Task period in seconds (3600 for hourly jobs).
    aligned_fraction:
        Fraction of tasks that fire on clock boundaries; the rest pick
        a uniformly random phase.
    start_delay_spread:
        Aligned tasks fire a small uniform delay after the boundary
        (cron granularity, job start latency).
    horizon:
        Length of generated history in seconds.
    seed:
        Random seed.
    """

    n_tasks: int = 100
    period: float = 3600.0
    aligned_fraction: float = 1.0
    start_delay_spread: float = 30.0
    horizon: float = 6 * 3600.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise ValueError("need at least one task")
        if self.period <= 0 or self.horizon <= 0:
            raise ValueError("period and horizon must be positive")
        if not 0.0 <= self.aligned_fraction <= 1.0:
            raise ValueError("aligned_fraction must be in [0, 1]")
        if self.start_delay_spread < 0:
            raise ValueError("start_delay_spread must be non-negative")


class ExternalClockModel:
    """Generates the aggregate event stream and its peakedness."""

    def __init__(self, config: ClockAlignmentConfig) -> None:
        self.config = config
        self.rng = RandomSource.scrambled(config.seed)
        self.event_times: list[float] = []
        self._generate()

    def _generate(self) -> None:
        cfg = self.config
        n_aligned = round(cfg.n_tasks * cfg.aligned_fraction)
        for task in range(cfg.n_tasks):
            if task < n_aligned:
                phase = self.rng.uniform(0.0, cfg.start_delay_spread)
            else:
                phase = self.rng.uniform(0.0, cfg.period)
            time = phase
            while time < cfg.horizon:
                self.event_times.append(time)
                time += cfg.period
        self.event_times.sort()

    def load_histogram(self, bin_seconds: float = 60.0) -> list[int]:
        """Events per time bin over the horizon."""
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        bins = int(self.config.horizon / bin_seconds) + 1
        counts = [0] * bins
        for time in self.event_times:
            counts[int(time / bin_seconds)] += 1
        return counts

    def peak_to_mean_ratio(self, bin_seconds: float = 60.0) -> float:
        """Peakedness of the aggregate load.

        ~1 for smooth traffic; ~(period / bin) for fully clock-aligned
        tasks all landing in the same bin each period.
        """
        counts = self.load_histogram(bin_seconds)
        occupied_span = [c for c in counts if True]
        mean = sum(occupied_span) / len(occupied_span)
        if mean == 0:
            raise RuntimeError("no events generated")
        return max(counts) / mean
