"""The other synchronization phenomena from Section 1 of the paper.

Besides periodic routing messages, the paper catalogues TCP window
synchronization, synchronization to an external clock, and
client-server recovery synchronization; each is modelled here.
"""

from .client_server import ClientServerConfig, ClientServerModel
from .external_clock import ClockAlignmentConfig, ExternalClockModel
from .tcp_window import TcpWindowConfig, TcpWindowModel

__all__ = [
    "ClientServerConfig",
    "ClientServerModel",
    "ClockAlignmentConfig",
    "ExternalClockModel",
    "TcpWindowConfig",
    "TcpWindowModel",
]
