"""Client--server recovery synchronization (the Sprite anecdote).

Section 1: "in the Sprite operating system clients check with the file
server every 30 seconds; in an early version of the system, when the
file server recovered after a failure ... a number of clients would
become synchronized in their recovery procedures" [Ba92].

The model: N clients poll a server on a fixed period.  While the
server is down, a polling client enters a retry loop; the moment the
server recovers, every waiting client is answered together and — if
clients restart their polling timer from the answer — their
subsequent check-ins are synchronized.  Randomizing the post-recovery
timer restores dispersion.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.coherence import offsets_to_phases, order_parameter
from ..des import Simulator
from ..rng import RandomSource

__all__ = ["ClientServerConfig", "ClientServerModel"]


@dataclass(frozen=True)
class ClientServerConfig:
    """Parameters of the polling population.

    Attributes
    ----------
    n_clients:
        Number of polling clients.
    period:
        Seconds between check-ins (Sprite used 30).
    retry_interval:
        Seconds between retries while the server is down.
    timer_jitter:
        Half-width of the uniform jitter added to every timer (0
        reproduces the synchronization bug; ~period/2 is the paper's
        style of fix).
    seed:
        Master random seed.
    """

    n_clients: int = 50
    period: float = 30.0
    retry_interval: float = 5.0
    timer_jitter: float = 0.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("need at least one client")
        if self.period <= 0 or self.retry_interval <= 0:
            raise ValueError("period and retry_interval must be positive")
        if not 0 <= self.timer_jitter <= self.period:
            raise ValueError("timer_jitter must be in [0, period]")


class ClientServerModel:
    """DES of clients polling a failable server."""

    def __init__(self, config: ClientServerConfig) -> None:
        self.config = config
        self.sim = Simulator()
        master = RandomSource.scrambled(config.seed)
        self._rngs = [master.spawn(i) for i in range(config.n_clients)]
        self.server_up = True
        self.checkins: list[tuple[float, int]] = []
        self.retries = 0
        self._waiting: list[int] = []
        phase_rng = master.spawn(config.n_clients + 1)
        for client in range(config.n_clients):
            start = phase_rng.uniform(0.0, config.period)
            self.sim.schedule_at(start, self._check_in, client,
                                 label=f"checkin-{client}")

    # -- server control ---------------------------------------------------

    def fail_server_at(self, time: float) -> None:
        """Schedule a server failure."""
        self.sim.schedule_at(time, self._set_server, False)

    def recover_server_at(self, time: float) -> None:
        """Schedule a server recovery."""
        self.sim.schedule_at(time, self._set_server, True)

    def _set_server(self, up: bool) -> None:
        self.server_up = up
        if up:
            # Every waiting client is answered at the same instant —
            # the synchronizing event.
            waiting, self._waiting = self._waiting, []
            for client in waiting:
                self._answered(client)

    # -- client behaviour ------------------------------------------------------

    def _check_in(self, client: int) -> None:
        if self.server_up:
            self._answered(client)
        else:
            if client not in self._waiting:
                self._waiting.append(client)
            self.retries += 1
            self.sim.schedule(self.config.retry_interval, self._retry, client,
                              label=f"retry-{client}")

    def _retry(self, client: int) -> None:
        if client not in self._waiting:
            return  # already answered at recovery
        if self.server_up:
            self._waiting.remove(client)
            self._answered(client)
        else:
            self.retries += 1
            self.sim.schedule(self.config.retry_interval, self._retry, client,
                              label=f"retry-{client}")

    def _answered(self, client: int) -> None:
        now = self.sim.now
        self.checkins.append((now, client))
        jitter = self.config.timer_jitter
        interval = self._rngs[client].uniform(
            self.config.period - jitter, self.config.period + jitter
        )
        self.sim.schedule(interval, self._check_in, client,
                          label=f"checkin-{client}")

    # -- measurement ---------------------------------------------------------------

    def run(self, until: float) -> float:
        """Advance the model to the horizon."""
        return self.sim.run(until=until)

    def phase_coherence(self, window: float | None = None) -> float:
        """Kuramoto order parameter of recent check-in phases.

        ~0 for well-spread polling, ~1 when the population is
        synchronized.  ``window`` defaults to one period.
        """
        if not self.checkins:
            raise RuntimeError("no check-ins recorded yet")
        window = window if window is not None else self.config.period
        cutoff = self.sim.now - window
        latest: dict[int, float] = {}
        for time, client in self.checkins:
            if time >= cutoff:
                latest[client] = time
        if not latest:
            raise RuntimeError("no check-ins within the window")
        phases = offsets_to_phases(list(latest.values()), self.config.period)
        return order_parameter(phases)
