"""The shared envelope for every ``BENCH_*.json`` snapshot.

``BENCH_parallel.json``, ``BENCH_obs.json`` and ``BENCH_serve.json``
are diffed across commits, so their framing must not drift: every
snapshot goes through :func:`bench_envelope`, which stamps one schema
version, the model version the numbers were produced under, and the
host context that makes a wall-clock figure interpretable (CPU count,
platform, Python).  Benchmark-specific payloads ride alongside —
the envelope owns the frame, never the measurements.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

__all__ = ["BENCH_SCHEMA", "bench_envelope", "host_info", "write_bench_json"]

#: Bump when envelope *framing* changes shape (not when a benchmark
#: adds payload fields — payloads are free to grow).
BENCH_SCHEMA = 1


def host_info() -> dict:
    """The machine context a wall-clock number was measured in."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def bench_envelope(benchmark: str, payload: dict) -> dict:
    """Wrap one benchmark's payload in the shared frame.

    The payload's keys land at the top level next to the frame fields
    (existing snapshots stay greppable); a payload may not shadow a
    frame field.
    """
    # Imported lazily: repro.parallel's own bench module imports this
    # one at load time, so a module-level import here would be circular.
    from .parallel.job import MODEL_VERSION

    frame = {
        "bench_schema": BENCH_SCHEMA,
        "benchmark": benchmark,
        "model_version": MODEL_VERSION,
        "host": host_info(),
    }
    clash = sorted(set(frame) & set(payload))
    if clash:
        raise ValueError(f"payload shadows envelope field(s): {', '.join(clash)}")
    return {**frame, **payload}


def write_bench_json(path: str | os.PathLike, snapshot: dict) -> Path:
    """Write a snapshot (already enveloped) as stable, diffable JSON."""
    target = Path(path)
    target.write_text(json.dumps(snapshot, indent=2, sort_keys=False) + "\n")
    return target
