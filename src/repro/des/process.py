"""Generator-based processes on top of the event engine.

Model code in this repository is mostly written in callback style, but
sequential behaviours (a router's prepare/send/reset loop, a client's
poll/retry loop) often read better as coroutines.  A process is a
generator that yields:

* a ``float`` — hold for that many simulated seconds;
* a :class:`Signal` — suspend until the signal fires (the value passed
  to :meth:`Signal.fire` is sent into the generator).

Processes compose with callback code freely: both run on the same
:class:`~repro.des.engine.Simulator`.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from .engine import Simulator

__all__ = ["Signal", "Process", "spawn"]


class Signal:
    """A one-to-many wakeup primitive.

    Processes yield a Signal to wait on it; callback code (or another
    process) calls :meth:`fire` to resume every waiter.  Signals are
    reusable: waiters registered after a firing wait for the next one.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []
        self.fire_count = 0

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register a resume callback (used by the process runner)."""
        self._waiters.append(callback)

    def fire(self, value: Any = None) -> int:
        """Wake every current waiter; returns how many were woken."""
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)
        return len(waiters)

    @property
    def waiting(self) -> int:
        """Number of currently suspended waiters."""
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Signal {self.name!r} waiting={self.waiting}>"


class Process:
    """A running generator process.

    Create via :func:`spawn`.  The process starts at the simulator's
    current time (or after ``start_delay``) and steps each time its
    current wait completes.  When the generator returns, the process
    is finished and :attr:`result` holds its return value.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator,
        name: str = "process",
        start_delay: float = 0.0,
    ) -> None:
        self.sim = sim
        self.generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self.failed: BaseException | None = None
        self.completion = Signal(f"{name}-done")
        sim.schedule(start_delay, self._step, None, label=f"proc-{name}")

    def _step(self, sent_value: Any) -> None:
        if self.finished:
            return
        try:
            yielded = self.generator.send(sent_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.completion.fire(stop.value)
            return
        except BaseException as error:  # surface model bugs loudly
            self.finished = True
            self.failed = error
            raise
        if isinstance(yielded, Signal):
            yielded.add_waiter(lambda value: self._step(value))
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise ValueError(f"process {self.name} yielded a negative delay")
            self.sim.schedule(float(yielded), self._step, None, label=f"proc-{self.name}")
        else:
            raise TypeError(
                f"process {self.name} yielded {yielded!r}; expected a delay or a Signal"
            )

    def __repr__(self) -> str:  # pragma: no cover
        state = "finished" if self.finished else "running"
        return f"<Process {self.name!r} {state}>"


def spawn(
    sim: Simulator,
    generator: Generator,
    name: str = "process",
    start_delay: float = 0.0,
) -> Process:
    """Start a generator as a process on the simulator."""
    return Process(sim, generator, name=name, start_delay=start_delay)


def all_of(sim: Simulator, processes: Iterable[Process]) -> Signal:
    """A signal that fires once every given process has finished."""
    processes = list(processes)
    barrier = Signal("all-of")
    remaining = {"count": len(processes)}

    def one_done(_value: Any) -> None:
        remaining["count"] -= 1
        if remaining["count"] == 0:
            barrier.fire()

    if not processes:
        barrier.fire()
        return barrier
    for process in processes:
        if process.finished:
            one_done(None)
        else:
            process.completion.add_waiter(one_done)
    return barrier


__all__.append("all_of")
