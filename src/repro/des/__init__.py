"""Discrete-event simulation substrate.

Provides the :class:`Simulator` event loop (heap- or calendar-queue
backed), :class:`Event` scheduling with deterministic tie-breaking,
and statistics collectors.
"""

from .calendar_queue import CalendarQueue
from .engine import SimulationError, Simulator
from .events import Event, EventCancelled
from .process import Process, Signal, all_of, spawn
from .stats import Counter, Histogram, Tally, TimeWeighted

__all__ = [
    "Process",
    "Signal",
    "all_of",
    "spawn",
    "CalendarQueue",
    "Simulator",
    "SimulationError",
    "Event",
    "EventCancelled",
    "Counter",
    "Histogram",
    "Tally",
    "TimeWeighted",
]
