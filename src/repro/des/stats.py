"""Statistics collectors for simulation runs.

Collectors are plain accumulators updated by model code: tallies of
observations, time-weighted averages of piecewise-constant signals
(queue lengths, cluster sizes), event counters, and fixed-bin
histograms.  They avoid storing full sample paths unless asked.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["Tally", "TimeWeighted", "Counter", "Histogram"]


class Tally:
    """Streaming mean/variance/extremes of discrete observations.

    Uses Welford's online algorithm, so it is numerically stable for
    long runs.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def record(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Add many observations."""
        for value in values:
            self.record(value)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Tally {self.name!r} n={self.count} mean={self.mean:.6g}>"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes; the integral is
    accumulated between updates.
    """

    def __init__(self, initial_value: float = 0.0, start_time: float = 0.0, name: str = "") -> None:
        self.name = name
        self._value = initial_value
        self._last_time = start_time
        self._area = 0.0
        self._start = start_time
        self.minimum = initial_value
        self.maximum = initial_value

    @property
    def value(self) -> float:
        """The current signal level."""
        return self._value

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError(f"time went backwards: {time} < {self._last_time}")
        self._area += self._value * (time - self._last_time)
        self._last_time = time
        self._value = value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def mean(self, now: float | None = None) -> float:
        """Time average over ``[start, now]`` (``now`` defaults to last update)."""
        end = self._last_time if now is None else now
        if end < self._last_time:
            raise ValueError("now precedes the last recorded update")
        span = end - self._start
        if span <= 0:
            return self._value
        area = self._area + self._value * (end - self._last_time)
        return area / span


class Counter:
    """A named event counter with a rate helper."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0

    def increment(self, amount: int = 1) -> None:
        """Add to the count (amount may be any non-negative integer)."""
        if amount < 0:
            raise ValueError("cannot increment by a negative amount")
        self.count += amount

    def rate(self, elapsed: float) -> float:
        """Counts per second over the given elapsed time."""
        if elapsed <= 0:
            return 0.0
        return self.count / elapsed


class Histogram:
    """Fixed-width-bin histogram with under/overflow buckets."""

    def __init__(self, low: float, high: float, bins: int, name: str = "") -> None:
        if bins < 1:
            raise ValueError("need at least one bin")
        if high <= low:
            raise ValueError("high must exceed low")
        self.name = name
        self.low = low
        self.high = high
        self.bins = bins
        self._width = (high - low) / bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.total = 0

    def record(self, value: float) -> None:
        """Add one observation to the appropriate bin."""
        self.total += 1
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            self.counts[int((value - self.low) / self._width)] += 1

    def bin_edges(self) -> list[float]:
        """The ``bins + 1`` bin boundary values."""
        return [self.low + i * self._width for i in range(self.bins + 1)]

    def fraction_in(self, low: float, high: float) -> float:
        """Fraction of recorded values with ``low <= v < high`` (bin-resolved)."""
        if self.total == 0:
            return 0.0
        hits = 0
        edges = self.bin_edges()
        for i, count in enumerate(self.counts):
            if edges[i] >= low and edges[i + 1] <= high:
                hits += count
        return hits / self.total
