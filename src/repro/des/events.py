"""Event objects for the discrete-event engine.

An :class:`Event` is a scheduled callback.  Ordering is by
``(time, priority, sequence)``: ties in simulated time break first on
an explicit integer priority and then on scheduling order, so the
engine is fully deterministic even when many events share a timestamp
(which happens constantly in the Periodic Messages model, where every
router is "immediately notified" of a transmission).
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["Event", "EventCancelled"]


class EventCancelled(Exception):
    """Raised when interacting with an event that was cancelled."""


class Event:
    """A pending callback in simulated time.

    Events are created through :meth:`repro.des.engine.Simulator.schedule`
    rather than directly.  They support cancellation (lazy deletion:
    the entry stays in the queue but is skipped when popped).
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "label")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        label: str | None = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label

    def sort_key(self) -> tuple[float, int, int]:
        """Total order used by every scheduler implementation."""
        return (self.time, self.priority, self.seq)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when due."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (engine-internal)."""
        if self.cancelled:
            raise EventCancelled(f"event {self!r} fired after cancellation")
        self.callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.label or getattr(self.callback, "__name__", "callback")
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} p={self.priority} #{self.seq} {name}{flag}>"
