"""The discrete-event simulation engine.

A :class:`Simulator` owns the virtual clock and the pending-event
queue.  Model code schedules callbacks at absolute or relative times,
and :meth:`Simulator.run` drains the queue in deterministic
``(time, priority, sequence)`` order until a horizon, a stop request,
or queue exhaustion.

The engine is deliberately small and allocation-light: the Periodic
Messages experiments schedule millions of timer events, and the packet
substrate schedules one or more events per packet hop.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable

from .calendar_queue import CalendarQueue
from .events import Event

__all__ = ["Simulator", "SimulationError"]


class SimulationError(Exception):
    """Raised for scheduling errors (e.g. scheduling in the past)."""


class Simulator:
    """Event loop with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the clock.
    queue:
        ``"heap"`` (default) for a binary heap or ``"calendar"`` for a
        :class:`~repro.des.calendar_queue.CalendarQueue`.  Both produce
        the identical event order.
    """

    def __init__(self, start_time: float = 0.0, queue: str = "heap") -> None:
        self._now = float(start_time)
        self._seq = 0
        self._events_processed = 0
        self._stopped = False
        self._trace_hooks: list[Callable[[Event], None]] = []
        if queue == "heap":
            self._heap: list[Event] | None = []
            self._calendar: CalendarQueue | None = None
        elif queue == "calendar":
            self._heap = None
            self._calendar = CalendarQueue()
        else:
            raise ValueError(f"unknown queue type {queue!r}; use 'heap' or 'calendar'")

    # -- clock and counters ----------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queue entries (cancelled entries included, for the heap)."""
        if self._heap is not None:
            return len(self._heap)
        assert self._calendar is not None
        return len(self._calendar)

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str | None = None,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; zero-delay events run after any
        already-queued events at the current time with lower or equal
        priority (FIFO among equals).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past (now={self._now})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str | None = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at t={time} < now={self._now}")
        event = Event(time, priority, self._seq, callback, args, label)
        self._seq += 1
        if self._heap is not None:
            heapq.heappush(self._heap, event)
        else:
            assert self._calendar is not None
            self._calendar.push(event)
        return event

    def add_trace_hook(self, hook: Callable[[Event], None]) -> None:
        """Register a hook invoked (with the event) just before each firing."""
        self._trace_hooks.append(hook)

    # -- running -----------------------------------------------------------

    def stop(self) -> None:
        """Request that the run loop return after the current event."""
        self._stopped = True

    def step(self) -> bool:
        """Fire the single next event.  Returns False when the queue is empty."""
        event = self._next_live_event()
        if event is None:
            return False
        self._now = event.time
        for hook in self._trace_hooks:
            hook(event)
        event.fire()
        self._events_processed += 1
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run until the horizon, an event budget, a stop, or exhaustion.

        Events scheduled exactly at ``until`` are processed.  Returns
        the clock value at exit; when a horizon was given and the queue
        outlived it, the clock is advanced to the horizon so that
        successive ``run`` calls compose.
        """
        self._stopped = False
        fired = 0
        while not self._stopped:
            if max_events is not None and fired >= max_events:
                break
            event = self._next_live_event()
            if event is None:
                break
            if until is not None and event.time > until:
                self._requeue(event)
                self._now = max(self._now, until)
                break
            self._now = event.time
            for hook in self._trace_hooks:
                hook(event)
            event.fire()
            self._events_processed += 1
            fired += 1
        return self._now

    def run_until_idle(self) -> float:
        """Drain the queue completely; returns the final clock value."""
        return self.run()

    # -- internals ----------------------------------------------------------

    def _next_live_event(self) -> Event | None:
        if self._heap is not None:
            while self._heap:
                event = heapq.heappop(self._heap)
                if not event.cancelled:
                    return event
            return None
        assert self._calendar is not None
        if len(self._calendar) == 0:
            return None
        try:
            return self._calendar.pop()
        except IndexError:
            return None

    def _requeue(self, event: Event) -> None:
        if self._heap is not None:
            heapq.heappush(self._heap, event)
        else:
            assert self._calendar is not None
            self._calendar.push(event)

    # -- convenience ---------------------------------------------------------

    def drain_labels(self) -> Iterable[str]:
        """Labels of pending live events (testing/debugging helper)."""
        if self._heap is not None:
            entries: Iterable[Event] = sorted(self._heap)
        else:  # pragma: no cover - calendar path exercised via pop ordering
            entries = []
        return [e.label or "?" for e in entries if not e.cancelled]
