"""A calendar-queue scheduler.

Brown's calendar queue (CACM 1988) is the classic priority structure
for network simulators: events are hashed into day buckets of a
rotating year, giving amortized O(1) enqueue/dequeue when bucket width
tracks the inter-event gap.  The engine uses a binary heap by default;
this implementation is provided as a drop-in alternative (and is
exercised by the test suite against the heap for identical ordering).
"""

from __future__ import annotations

from .events import Event

__all__ = ["CalendarQueue"]

_MIN_BUCKETS = 4


class CalendarQueue:
    """Priority queue of :class:`Event` keyed by ``event.sort_key()``.

    Parameters
    ----------
    bucket_width:
        Initial day length in simulated seconds.
    bucket_count:
        Initial number of days in the year (rounded up to a power of
        two).
    """

    def __init__(self, bucket_width: float = 1.0, bucket_count: int = 16) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self._init_buckets(bucket_width, max(_MIN_BUCKETS, bucket_count))
        self._size = 0

    def _init_buckets(self, width: float, count: int) -> None:
        n = _MIN_BUCKETS
        while n < count:
            n *= 2
        self._width = width
        self._nbuckets = n
        self._buckets: list[list[Event]] = [[] for _ in range(n)]
        self._year = width * n
        # The virtual clock: dequeues must be non-decreasing in time.
        self._last_time = 0.0
        self._cursor = 0

    def __len__(self) -> int:
        return self._size

    def push(self, event: Event) -> None:
        """Insert an event (its time may be in the current or a later year)."""
        index = int(event.time / self._width) % self._nbuckets
        bucket = self._buckets[index]
        # Buckets are kept sorted; they are short when sized well.
        key = event.sort_key()
        lo, hi = 0, len(bucket)
        while lo < hi:
            mid = (lo + hi) // 2
            if bucket[mid].sort_key() < key:
                lo = mid + 1
            else:
                hi = mid
        bucket.insert(lo, event)
        self._size += 1
        if self._size > 2 * self._nbuckets:
            self._resize(self._nbuckets * 2)

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Skips (and discards) cancelled events transparently.
        """
        while True:
            event = self._pop_raw()
            if not event.cancelled:
                return event

    def _pop_raw(self) -> Event:
        if self._size == 0:
            raise IndexError("pop from empty CalendarQueue")
        # Scan at most one full year of buckets for an event due this year.
        start_cursor = self._cursor
        year_start = self._last_time
        for step in range(self._nbuckets):
            index = (start_cursor + step) % self._nbuckets
            bucket = self._buckets[index]
            if bucket:
                head = bucket[0]
                # Due within this bucket's current day?
                day_end = (int(year_start / self._width) + step + 1) * self._width
                if head.time < day_end:
                    bucket.pop(0)
                    self._size -= 1
                    self._cursor = index
                    self._last_time = head.time
                    return head
        # Nothing due this year: fall back to a direct minimum search.
        best: Event | None = None
        best_index = -1
        for index, bucket in enumerate(self._buckets):
            if bucket and (best is None or bucket[0].sort_key() < best.sort_key()):
                best = bucket[0]
                best_index = index
        assert best is not None  # size > 0 guarantees a hit
        self._buckets[best_index].pop(0)
        self._size -= 1
        self._cursor = best_index
        self._last_time = best.time
        return best

    def peek_time(self) -> float:
        """Time of the earliest pending (non-cancelled) event."""
        best: Event | None = None
        for bucket in self._buckets:
            for event in bucket:
                if event.cancelled:
                    continue
                if best is None or event.sort_key() < best.sort_key():
                    best = event
                break  # only the first live event per sorted bucket matters
        if best is None:
            raise IndexError("peek on empty CalendarQueue")
        return best.time

    def _resize(self, nbuckets: int) -> None:
        events = [e for bucket in self._buckets for e in bucket]
        live = [e for e in events if not e.cancelled]
        # Re-estimate bucket width from the spread of pending events.
        if len(live) >= 2:
            times = sorted(e.time for e in live)
            span = times[-1] - times[0]
            width = span / len(live) if span > 0 else self._width
        else:
            width = self._width
        last = self._last_time
        cursor_hint = self._cursor
        self._init_buckets(max(width, 1e-12), nbuckets)
        self._last_time = last
        self._cursor = cursor_hint % self._nbuckets
        self._size = 0
        for event in live:
            self.push(event)
