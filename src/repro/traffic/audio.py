"""Constant-bit-rate audio traffic (the Figure 3 workload).

The December 1992 packet-video audiocast carried PCM audio in small
packets tens of milliseconds apart; its tunnelled multicast packets
competed with RIP routing updates at congested routers and lost.  The
:class:`AudioSession` couples a CBR source to a sink and produces the
per-packet delivery record the outage analysis consumes.
"""

from __future__ import annotations

from ..net.node import Host
from ..net.packet import Packet, PacketKind
from ..rng import RandomSource

__all__ = ["AudioSession"]


class AudioSession:
    """A one-way CBR audio stream with per-packet delivery tracking.

    Parameters
    ----------
    src, dst:
        Source and destination hosts.
    packet_interval:
        Seconds between packets (0.02 = 50 packets/s, typical PCM
        audio packetization).
    duration:
        Length of the stream in seconds.
    size_bytes:
        Audio packet size (160 bytes of payload + headers).
    random_loss_probability:
        Per-packet probability of loss from causes outside the
        simulated path (the "little blips more-or-less randomly spread
        along the time axis" in Figure 3).
    seed:
        Seed for the random-blip stream.
    start_time:
        When the stream starts.
    """

    def __init__(
        self,
        src: Host,
        dst: Host,
        packet_interval: float = 0.02,
        duration: float = 60.0,
        size_bytes: int = 200,
        random_loss_probability: float = 0.0,
        seed: int = 1,
        start_time: float = 0.0,
    ) -> None:
        if packet_interval <= 0 or duration <= 0:
            raise ValueError("packet_interval and duration must be positive")
        if not 0.0 <= random_loss_probability <= 1.0:
            raise ValueError("random_loss_probability must be in [0, 1]")
        self.src = src
        self.dst = dst
        self.packet_interval = packet_interval
        self.size_bytes = size_bytes
        self.random_loss_probability = random_loss_probability
        self.rng = RandomSource.scrambled(seed)
        self.total_packets = int(round(duration / packet_interval))
        self.send_times: list[float] = []
        self._received: set[int] = set()
        self._sent = 0
        dst.register_handler(PacketKind.AUDIO, self._on_packet)
        src.sim.schedule_at(start_time, self._send_next, label=f"audio-{src.name}")

    def _send_next(self) -> None:
        now = self.src.sim.now
        seq = self._sent
        self._sent += 1
        self.send_times.append(now)
        if self.rng.bernoulli(self.random_loss_probability):
            pass  # lost to background noise before reaching our path
        else:
            packet = Packet(
                src=self.src.name,
                dst=self.dst.name,
                kind=PacketKind.AUDIO,
                size_bytes=self.size_bytes,
                created_at=now,
                payload={"seq": seq},
            )
            self.src.send(packet)
        if self._sent < self.total_packets:
            self.src.sim.schedule(self.packet_interval, self._send_next,
                                  label=f"audio-{self.src.name}")

    def _on_packet(self, packet: Packet) -> None:
        self._received.add(packet.payload["seq"])

    # -- results ------------------------------------------------------------

    @property
    def packets_sent(self) -> int:
        """Packets emitted so far."""
        return self._sent

    @property
    def packets_received(self) -> int:
        """Packets delivered to the sink so far."""
        return len(self._received)

    def delivery_record(self) -> tuple[list[float], list[bool]]:
        """(send_times, delivered flags), the outage-analysis input."""
        delivered = [seq in self._received for seq in range(self._sent)]
        return list(self.send_times), delivered

    @property
    def loss_rate(self) -> float:
        """Overall fraction of packets lost."""
        if self._sent == 0:
            return 0.0
        return 1.0 - len(self._received) / self._sent
