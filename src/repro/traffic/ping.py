"""Ping measurement traffic.

Reproduces the paper's May 1992 methodology: "runs of a thousand
pings each, at one-second intervals" (1.01 s exactly, which is why the
90-second IGRP period shows up at lag 89).  The client records a
round-trip time per probe, with losses marked by a negative RTT —
matching Figure 1's plotting convention.
"""

from __future__ import annotations

from ..net.node import Host
from ..net.packet import Packet, PacketKind

__all__ = ["PingClient", "PingResponder", "LOSS_RTT"]

#: RTT value recorded for a lost probe (Figure 1 plots losses below zero).
LOSS_RTT = -1.0


class PingResponder:
    """Echo server: answers PING_REQUEST with PING_REPLY."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.requests_answered = 0
        host.register_handler(PacketKind.PING_REQUEST, self._on_request)

    def _on_request(self, packet: Packet) -> None:
        self.requests_answered += 1
        reply = Packet(
            src=self.host.name,
            dst=packet.src,
            kind=PacketKind.PING_REPLY,
            size_bytes=packet.size_bytes,
            created_at=self.host.sim.now,
            payload={"seq": packet.payload["seq"], "echo_of": packet.packet_id},
        )
        self.host.send(reply)


class PingClient:
    """Sends a run of probes and records per-probe RTT or loss.

    Parameters
    ----------
    host:
        Source host.
    dst:
        Destination host name (must run a :class:`PingResponder`).
    count:
        Number of probes.
    interval:
        Seconds between probes (paper: 1.01).
    timeout:
        Seconds after which an unanswered probe counts as lost.
    size_bytes:
        Probe size (64 bytes, a classic ping).
    start_time:
        When the first probe leaves.
    """

    def __init__(
        self,
        host: Host,
        dst: str,
        count: int = 1000,
        interval: float = 1.01,
        timeout: float = 2.0,
        size_bytes: int = 64,
        start_time: float = 0.0,
    ) -> None:
        if count < 1:
            raise ValueError("count must be positive")
        if interval <= 0 or timeout <= 0:
            raise ValueError("interval and timeout must be positive")
        self.host = host
        self.dst = dst
        self.count = count
        self.interval = interval
        self.timeout = timeout
        self.size_bytes = size_bytes
        self.send_times: list[float] = []
        self.rtts: list[float] = []
        self._outstanding: dict[int, float] = {}  # seq -> send time
        self._next_seq = 0
        host.register_handler(PacketKind.PING_REPLY, self._on_reply)
        host.sim.schedule_at(start_time, self._send_next, label=f"ping-{host.name}")

    # -- sending ----------------------------------------------------------

    def _send_next(self) -> None:
        now = self.host.sim.now
        seq = self._next_seq
        self._next_seq += 1
        self.send_times.append(now)
        self.rtts.append(LOSS_RTT)  # pessimistic; overwritten on reply
        self._outstanding[seq] = now
        packet = Packet(
            src=self.host.name,
            dst=self.dst,
            kind=PacketKind.PING_REQUEST,
            size_bytes=self.size_bytes,
            created_at=now,
            payload={"seq": seq},
        )
        self.host.send(packet)
        self.host.sim.schedule(self.timeout, self._on_timeout, seq,
                               label=f"ping-timeout-{self.host.name}")
        if self._next_seq < self.count:
            self.host.sim.schedule(self.interval, self._send_next,
                                   label=f"ping-{self.host.name}")

    # -- receiving -----------------------------------------------------------

    def _on_reply(self, packet: Packet) -> None:
        seq = packet.payload.get("seq")
        sent_at = self._outstanding.pop(seq, None)
        if sent_at is None:
            return  # duplicate or post-timeout reply
        self.rtts[seq] = self.host.sim.now - sent_at

    def _on_timeout(self, seq: int) -> None:
        self._outstanding.pop(seq, None)

    # -- results -----------------------------------------------------------------

    @property
    def complete(self) -> bool:
        """True when every probe has been sent and resolved."""
        return self._next_seq >= self.count and not self._outstanding

    @property
    def losses(self) -> int:
        """Number of probes with no reply."""
        return sum(1 for rtt in self.rtts if rtt <= LOSS_RTT)

    @property
    def loss_rate(self) -> float:
        """Fraction of probes lost (0.0 for an empty run)."""
        return self.losses / len(self.rtts) if self.rtts else 0.0

    def loss_burst_lengths(self) -> list[int]:
        """Lengths of maximal runs of consecutive losses."""
        bursts = []
        run = 0
        for rtt in self.rtts:
            if rtt <= LOSS_RTT:
                run += 1
            elif run:
                bursts.append(run)
                run = 0
        if run:
            bursts.append(run)
        return bursts
