"""Variable-bit-rate video traffic.

Section 1 of the paper points at periodic realtime traffic — "individual
variable-bit-rate video connections sharing a bottleneck gateway and
transmitting the same number of frames per second could contribute to a
larger periodic traffic pattern" — as a growing synchronization risk.
This source emits a frame every ``1/fps`` seconds, fragments it into
MTU-sized packets sent back-to-back, and the sink reports per-frame
completeness.
"""

from __future__ import annotations

from ..net.node import Host
from ..net.packet import Packet, PacketKind
from ..rng import RandomSource

__all__ = ["VBRVideoSession"]


class VBRVideoSession:
    """A one-way VBR video stream.

    Parameters
    ----------
    src, dst:
        Endpoint hosts.
    fps:
        Frames per second.
    mean_frame_bytes / std_frame_bytes:
        Frame-size distribution (truncated normal, min one packet).
    mtu_bytes:
        Fragment size.
    duration:
        Stream length in seconds.
    seed:
        Seed for frame-size draws.
    start_time:
        When the first frame is emitted (staggering many sessions'
        start times is exactly the de-synchronization question).
    """

    def __init__(
        self,
        src: Host,
        dst: Host,
        fps: float = 30.0,
        mean_frame_bytes: int = 4000,
        std_frame_bytes: int = 1500,
        mtu_bytes: int = 1000,
        duration: float = 10.0,
        seed: int = 1,
        start_time: float = 0.0,
    ) -> None:
        if fps <= 0 or duration <= 0:
            raise ValueError("fps and duration must be positive")
        if mtu_bytes <= 0 or mean_frame_bytes <= 0:
            raise ValueError("sizes must be positive")
        self.src = src
        self.dst = dst
        self.frame_interval = 1.0 / fps
        self.mean_frame_bytes = mean_frame_bytes
        self.std_frame_bytes = std_frame_bytes
        self.mtu_bytes = mtu_bytes
        self.total_frames = int(round(duration * fps))
        self.rng = RandomSource.scrambled(seed)
        self.frames_sent = 0
        self.packets_sent = 0
        self.frame_sizes: list[int] = []
        self._fragments_expected: dict[int, int] = {}
        self._fragments_received: dict[int, int] = {}
        dst.register_handler(PacketKind.VIDEO, self._on_packet)
        src.sim.schedule_at(start_time, self._send_frame, label=f"video-{src.name}")

    def _send_frame(self) -> None:
        frame_id = self.frames_sent
        self.frames_sent += 1
        size = max(
            self.mtu_bytes // 2,
            int(self.rng.normal(self.mean_frame_bytes, self.std_frame_bytes)),
        )
        self.frame_sizes.append(size)
        fragments = max(1, -(-size // self.mtu_bytes))  # ceil division
        self._fragments_expected[frame_id] = fragments
        remaining = size
        for index in range(fragments):
            chunk = min(self.mtu_bytes, remaining)
            remaining -= chunk
            packet = Packet(
                src=self.src.name,
                dst=self.dst.name,
                kind=PacketKind.VIDEO,
                size_bytes=max(chunk, 1),
                created_at=self.src.sim.now,
                payload={"frame": frame_id, "fragment": index},
            )
            self.src.send(packet)
            self.packets_sent += 1
        if self.frames_sent < self.total_frames:
            self.src.sim.schedule(self.frame_interval, self._send_frame,
                                  label=f"video-{self.src.name}")

    def _on_packet(self, packet: Packet) -> None:
        frame_id = packet.payload["frame"]
        self._fragments_received[frame_id] = self._fragments_received.get(frame_id, 0) + 1

    # -- results -------------------------------------------------------------

    def complete_frames(self) -> int:
        """Frames for which every fragment arrived."""
        return sum(
            1
            for frame_id, expected in self._fragments_expected.items()
            if self._fragments_received.get(frame_id, 0) >= expected
        )

    def frame_completion_rate(self) -> float:
        """Fraction of sent frames fully delivered."""
        if not self.frames_sent:
            return 0.0
        return self.complete_frames() / self.frames_sent

    def damaged_frame_times(self) -> list[float]:
        """Send times of frames that lost at least one fragment."""
        times = []
        for frame_id, expected in self._fragments_expected.items():
            if self._fragments_received.get(frame_id, 0) < expected:
                times.append(frame_id * self.frame_interval)
        return sorted(times)
