"""Background traffic sources.

Two shapes: memoryless Poisson traffic (the classic neutral load) and
the periodic "user script" source — [Pa93a] observed that periodic
background scripts run by individual users are themselves a growing
component of synchronized Internet traffic.
"""

from __future__ import annotations

from ..net.node import Host
from ..net.packet import Packet, PacketKind
from ..rng import RandomSource

__all__ = ["PoissonSource", "PeriodicScriptSource"]


class PoissonSource:
    """DATA packets with exponential inter-arrival times.

    Parameters
    ----------
    src, dst:
        Endpoint hosts (the sink needs no special handler).
    rate_pps:
        Mean packets per second.
    size_bytes:
        Packet size.
    duration:
        How long to emit (seconds); None means until the horizon.
    """

    def __init__(
        self,
        src: Host,
        dst: Host,
        rate_pps: float,
        size_bytes: int = 512,
        duration: float | None = None,
        seed: int = 1,
        start_time: float = 0.0,
    ) -> None:
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive when given")
        self.src = src
        self.dst = dst
        self.rate_pps = rate_pps
        self.size_bytes = size_bytes
        self.stop_at = None if duration is None else start_time + duration
        self.rng = RandomSource.scrambled(seed)
        self.packets_sent = 0
        first = start_time + self.rng.exponential(1.0 / rate_pps)
        src.sim.schedule_at(first, self._send, label=f"poisson-{src.name}")

    def _send(self) -> None:
        now = self.src.sim.now
        if self.stop_at is not None and now > self.stop_at:
            return
        self.src.send(
            Packet(
                src=self.src.name,
                dst=self.dst.name,
                kind=PacketKind.DATA,
                size_bytes=self.size_bytes,
                created_at=now,
                payload={"seq": self.packets_sent},
            )
        )
        self.packets_sent += 1
        self.src.sim.schedule(self.rng.exponential(1.0 / self.rate_pps), self._send,
                              label=f"poisson-{self.src.name}")


class PeriodicScriptSource:
    """A burst of packets every fixed period (cron-style user scripts).

    E.g. "several users fetch the most recent weather map from Colorado
    every hour on the hour" — many such sources with the same period
    and phase produce strongly synchronized load.
    """

    def __init__(
        self,
        src: Host,
        dst: Host,
        period: float,
        burst_packets: int = 10,
        size_bytes: int = 512,
        duration: float | None = None,
        start_time: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if burst_packets < 1:
            raise ValueError("burst must contain at least one packet")
        self.src = src
        self.dst = dst
        self.period = period
        self.burst_packets = burst_packets
        self.size_bytes = size_bytes
        self.stop_at = None if duration is None else start_time + duration
        self.packets_sent = 0
        self.burst_times: list[float] = []
        src.sim.schedule_at(start_time, self._burst, label=f"script-{src.name}")

    def _burst(self) -> None:
        now = self.src.sim.now
        if self.stop_at is not None and now > self.stop_at:
            return
        self.burst_times.append(now)
        for index in range(self.burst_packets):
            self.src.send(
                Packet(
                    src=self.src.name,
                    dst=self.dst.name,
                    kind=PacketKind.DATA,
                    size_bytes=self.size_bytes,
                    created_at=now,
                    payload={"seq": self.packets_sent, "burst_index": index},
                )
            )
            self.packets_sent += 1
        self.src.sim.schedule(self.period, self._burst, label=f"script-{self.src.name}")
