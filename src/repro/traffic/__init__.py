"""Traffic generators: ping probes, CBR audio, VBR video, background load."""

from .audio import AudioSession
from .background import PeriodicScriptSource, PoissonSource
from .ping import LOSS_RTT, PingClient, PingResponder
from .video import VBRVideoSession

__all__ = [
    "AudioSession",
    "PeriodicScriptSource",
    "PoissonSource",
    "LOSS_RTT",
    "PingClient",
    "PingResponder",
    "VBRVideoSession",
]
