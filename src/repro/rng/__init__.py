"""Deterministic pseudo-random number generation.

Implements the Park--Miller "minimal standard" generator (including
Carta's division-free variant cited by the paper as [Ca90]) and a
:class:`RandomSource` facade providing the distributions the simulators
need, with reproducible stream splitting.
"""

from .distributions import RandomSource, ScriptedSource
from .lehmer import (
    MODULUS,
    MULTIPLIER,
    CartaGenerator,
    LehmerGenerator,
    SchrageGenerator,
    minimal_standard_check,
)

__all__ = [
    "MODULUS",
    "MULTIPLIER",
    "CartaGenerator",
    "LehmerGenerator",
    "SchrageGenerator",
    "minimal_standard_check",
    "RandomSource",
    "ScriptedSource",
]
