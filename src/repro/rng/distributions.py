"""Random variates layered on the minimal-standard generator.

The simulator never touches :mod:`random` or :mod:`numpy.random`
directly; every stochastic draw flows through a :class:`RandomSource`
wrapping a Lehmer stream.  That keeps runs bit-for-bit reproducible
from a single integer seed and lets tests substitute scripted sources.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

from .lehmer import CartaGenerator, LehmerGenerator

__all__ = ["RandomSource", "ScriptedSource"]


class _UniformStream(Protocol):
    """Anything producing i.i.d. uniforms on (0, 1)."""

    def random(self) -> float: ...


class RandomSource:
    """Distribution helpers over a uniform stream.

    Parameters
    ----------
    seed:
        Seed for the underlying minimal-standard generator.  Ignored if
        ``generator`` is given.
    generator:
        An explicit uniform stream (any object with ``random()``),
        e.g. a :class:`~repro.rng.lehmer.LehmerGenerator` or a
        :class:`ScriptedSource` in tests.
    """

    def __init__(self, seed: int = 1, generator: _UniformStream | None = None) -> None:
        self._gen: _UniformStream = generator if generator is not None else CartaGenerator(seed)
        self._gauss_spare: float | None = None

    @classmethod
    def scrambled(cls, seed: int) -> "RandomSource":
        """A source whose stream is decorrelated from nearby seeds.

        The raw Lehmer recurrence maps consecutive seeds to nearly
        identical first draws (``x1 = 16807*seed`` — seeds 60 and 61
        differ by 5e-4 in their first uniform), so entities seeded
        ``seed, seed+1, seed+2, ...`` would start life nearly in phase
        — a disastrous artifact in a synchronization study.  This
        constructor mixes the seed through a multiplicative hash
        first.
        """
        mixed = (int(seed) * 2654435761 + 0x9E3779B9) % (2**31 - 1)
        return cls(seed=mixed or 1)

    # -- primitives -----------------------------------------------------

    def random(self) -> float:
        """Uniform on the open interval (0, 1)."""
        return self._gen.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform on ``[low, high]``.

        ``low == high`` is permitted and returns that constant, which
        is how a zero random timer component (``Tr = 0``) is expressed.
        """
        if high < low:
            raise ValueError(f"uniform() requires low <= high, got [{low}, {high}]")
        return low + (high - low) * self.random()

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (``mean > 0``)."""
        if mean <= 0:
            raise ValueError(f"exponential() requires mean > 0, got {mean}")
        return -mean * math.log(self.random())

    def triangular_symmetric(self, half_width: float) -> float:
        """Symmetric triangular variate on ``[-half_width, +half_width]``.

        The per-round change of a lone router's time-offset is the
        difference of two independent uniforms on ``[-Tr, Tr]``, which
        is triangular on ``[-2 Tr, 2 Tr]``; this helper draws such a
        difference directly.
        """
        if half_width < 0:
            raise ValueError("half_width must be non-negative")
        return (self.random() - self.random()) * half_width

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        """Gaussian variate via Marsaglia's polar method."""
        if std < 0:
            raise ValueError("std must be non-negative")
        if self._gauss_spare is not None:
            z = self._gauss_spare
            self._gauss_spare = None
            return mean + std * z
        while True:
            u = 2.0 * self.random() - 1.0
            v = 2.0 * self.random() - 1.0
            s = u * u + v * v
            if 0.0 < s < 1.0:
                break
        factor = math.sqrt(-2.0 * math.log(s) / s)
        self._gauss_spare = v * factor
        return mean + std * u * factor

    # -- discrete helpers ------------------------------------------------

    def randint(self, low: int, high: int) -> int:
        """Uniform integer on the inclusive range ``[low, high]``."""
        if high < low:
            raise ValueError(f"randint() requires low <= high, got [{low}, {high}]")
        span = high - low + 1
        return low + min(span - 1, int(self.random() * span))

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self.random() < probability

    def choice(self, items: Sequence):
        """Uniformly random element of a non-empty sequence."""
        if not items:
            raise ValueError("choice() on empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher--Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    # -- stream management -----------------------------------------------

    def spawn(self, stream_id: int) -> "RandomSource":
        """Derive an independent child source.

        Children are seeded by jumping the parent's generator and
        mixing in ``stream_id``, so ``spawn(0)`` and ``spawn(1)`` give
        uncorrelated streams and the sequence of spawns is itself
        reproducible.
        """
        base = self._gen.next_int() if isinstance(self._gen, LehmerGenerator) else int(self.random() * (2**31 - 2)) + 1
        mixed = (base * 2654435761 + (stream_id + 1) * 40503) % (2**31 - 1)
        return RandomSource(seed=mixed or 1)


class ScriptedSource:
    """A deterministic uniform stream fed from a list, for tests.

    Raises :class:`IndexError` when exhausted so a test that consumes
    more randomness than scripted fails loudly rather than silently.
    """

    def __init__(self, values: Sequence[float]) -> None:
        for v in values:
            if not 0.0 < v < 1.0:
                raise ValueError(f"scripted uniforms must lie in (0, 1), got {v}")
        self._values = list(values)
        self._index = 0

    def random(self) -> float:
        if self._index >= len(self._values):
            raise IndexError("ScriptedSource exhausted")
        value = self._values[self._index]
        self._index += 1
        return value

    @property
    def remaining(self) -> int:
        """Number of unconsumed scripted values."""
        return len(self._values) - self._index
