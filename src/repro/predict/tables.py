"""Content-addressed prediction tables built from campaign runs.

A prediction table is the artifact the serving tier loads: one JSON
document holding, for every grid cell over ``(n, Tc/Tp, Tr/Tp)``, the
Markov chain's expected rounds, the empirical correction factor that
calibrates it against simulation, the collapsed ``pred_rounds`` the
evaluator interpolates, the held-out error bound, and the validity
verdict.  Identity follows the repository's content-addressing rule:

* the **table id** is a 16-hex digest of the canonical build inputs —
  the campaign spec dict, the holdout split, the table schema, and
  :data:`~repro.parallel.job.MODEL_VERSION` — so the same study under
  the same model names the same table on every host, and a model
  version bump makes every old table miss (the stale-surrogate
  guard ``/healthz`` surfaces);
* the **bytes** are canonical JSON (sorted keys, fixed indent), so
  two hosts that complete the same campaign write identical files.

Building reuses the PR-8 orchestration end to end: the calibration
*and* holdout simulations are ordinary campaign jobs retired through
:func:`~repro.campaign.run.run_campaign` into the PR-1
:class:`~repro.parallel.ResultCache` — sharded, resumable, and shared
with every other consumer of the cache.  The table assembly step then
reads the completed study from the cache alone, exactly like
``campaign report`` does.

Seed split: the **last** ``holdout_count`` seeds of the spec's range
(default: a quarter, at least one) are held out of calibration and
used only to measure each cell's bound; the rest fit the correction.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from statistics import fmean
from typing import Callable

from ..campaign.dispatch import Dispatcher
from ..campaign.run import run_campaign
from ..campaign.spec import CampaignSpec
from ..core.parameters import RouterTimingParameters
from ..parallel import ResultCache
from ..parallel.job import MODEL_VERSION
from .bounds import cell_bound
from .surrogate import markov_expected_rounds

__all__ = [
    "TABLE_SCHEMA",
    "build_table",
    "content_digest",
    "default_holdout",
    "load_table",
    "resolve_table",
    "save_table",
    "spec_from_table",
    "table_id",
    "table_json",
    "table_path",
]

#: Bump when the table payload shape changes (folded into the id, so
#: old-shape files can never be loaded as new-shape tables).
TABLE_SCHEMA = 1

#: Subdirectory of the result cache root where tables are stored.
TABLE_DIR = "predict"


def default_holdout(seed_count: int) -> int:
    """The default holdout split: a quarter of the seeds, at least 1."""
    return max(1, seed_count // 4)


def table_id(spec: CampaignSpec, holdout_count: int) -> str:
    """The 16-hex content id of the table these inputs build."""
    payload = json.dumps(
        {
            "holdout_count": holdout_count,
            "model_version": MODEL_VERSION,
            "table": spec.to_dict(),
            "table_schema": TABLE_SCHEMA,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]


def content_digest(table: dict) -> str:
    """16-hex digest of a table's canonical bytes (id-excluded field).

    The table *id* names the build inputs; the content digest seals
    the build *outputs* — every cell, bound, and verdict — so a
    hand-edited calibration cannot serve under a legitimate id.
    """
    body = {k: v for k, v in table.items() if k != "content_digest"}
    payload = json.dumps(body, sort_keys=True)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]


def spec_from_table(table: dict) -> CampaignSpec:
    """The build spec embedded in a table, as a real spec."""
    return CampaignSpec.from_dict(table["spec"])


def _cell(
    spec: CampaignSpec,
    cache: ResultCache,
    params: RouterTimingParameters,
    holdout_count: int,
) -> dict:
    """Assemble one grid cell from the completed campaign's cache."""
    jobs = spec.jobs_for_point(params)
    fit_jobs = jobs[: spec.seed_count - holdout_count]
    holdout_jobs = jobs[spec.seed_count - holdout_count :]

    def family(members):
        observed: list[float] = []
        censored = 0
        for job in members:
            result = cache.get(job)
            if result is None:
                raise ValueError(
                    f"campaign incomplete: job {job.cache_key()[:12]} "
                    f"missing from cache {cache.root}"
                )
            t = result.terminal_time(job)
            if t is None:
                censored += 1
            else:
                observed.append(t)
        return observed, censored

    fit_observed, fit_censored = family(fit_jobs)
    holdout_observed, holdout_censored = family(holdout_jobs)
    markov_rounds, fraction = markov_expected_rounds(params, spec.direction)
    in_phase = fraction < 0.5 if spec.direction == "up" else fraction > 0.5
    round_length = params.round_length
    fit_mean = fmean(fit_observed) if fit_observed else None
    pred_rounds = fit_mean / round_length if fit_mean is not None else None
    correction = (
        pred_rounds / markov_rounds
        if pred_rounds is not None
        and markov_rounds not in (0.0, float("inf"))
        else None
    )
    bound = (
        cell_bound(fit_mean, holdout_observed, fit_observed)
        if fit_mean is not None
        else None
    )
    valid = (
        in_phase
        and fit_censored == 0
        and holdout_censored == 0
        and markov_rounds != float("inf")
        and pred_rounds is not None
        and bound is not None
    )
    return {
        "n_nodes": params.n_nodes,
        "tp": params.tp,
        "tc": params.tc,
        "tr": params.tr,
        "tc_ratio": params.tc / params.tp,
        "tr_ratio": params.tr / params.tp,
        "markov_rounds": None if markov_rounds == float("inf") else markov_rounds,
        "phase_fraction": fraction,
        "in_phase": in_phase,
        "fit": {
            "seeds": len(fit_jobs),
            "observed": len(fit_observed),
            "censored": fit_censored,
            "mean_seconds": fit_mean,
        },
        "holdout": {
            "seeds": len(holdout_jobs),
            "observed": len(holdout_observed),
            "censored": holdout_censored,
            "mean_seconds": fmean(holdout_observed) if holdout_observed else None,
        },
        "pred_rounds": pred_rounds,
        "correction": correction,
        "bound_rel": bound,
        "valid": valid,
    }


def build_table(
    spec: CampaignSpec,
    cache: ResultCache | None = None,
    *,
    holdout_count: int | None = None,
    run: bool = True,
    dispatcher: Dispatcher | None = None,
    checkpoint_root: str | os.PathLike | None = None,
    console: Callable[[str], None] | None = None,
) -> dict:
    """Build (or assemble) the prediction table for one campaign spec.

    With ``run=True`` (default) the campaign is executed first through
    :func:`~repro.campaign.run.run_campaign` — idempotent, so a study
    already retired (by any mix of shards and dispatchers into the
    same cache) executes nothing.  ``run=False`` assembles from the
    cache alone and raises if any job is missing.

    The spec must hold a single ``tp`` value: the table's axes are the
    dimensionless ratios ``Tc/Tp`` and ``Tr/Tp``, which only form a
    clean grid over one base period.
    """
    if cache is None:
        cache = ResultCache()
    if len(spec.tp) != 1:
        raise ValueError(
            "prediction tables need a single-tp spec (the table axes "
            f"are Tc/Tp and Tr/Tp); got tp={list(spec.tp)}"
        )
    if holdout_count is None:
        holdout_count = default_holdout(spec.seed_count)
    if not 1 <= holdout_count < spec.seed_count:
        raise ValueError(
            f"holdout_count must be in [1, seed_count); got "
            f"{holdout_count} of {spec.seed_count} seed(s)"
        )
    if run:
        summary = run_campaign(
            spec,
            dispatcher=dispatcher,
            cache=cache,
            checkpoint_root=checkpoint_root,
            console=console,
        )
        if not summary.complete:
            raise ValueError(
                f"campaign {summary.campaign_id} did not complete; "
                "cannot calibrate a table from a partial study"
            )
    tp = spec.tp[0]
    n_axis = sorted(spec.n_nodes)
    tc_axis = sorted(spec.tc)
    tr_axis = sorted(spec.tr)
    cells = [
        _cell(spec, cache, RouterTimingParameters(n, tp, tc, tr), holdout_count)
        for n in n_axis
        for tc in tc_axis
        for tr in tr_axis
    ]
    table = {
        "table_schema": TABLE_SCHEMA,
        "table_id": table_id(spec, holdout_count),
        "model_version": MODEL_VERSION,
        "campaign_id": spec.campaign_id(),
        "spec": spec.to_dict(),
        "holdout_count": holdout_count,
        "tp": tp,
        "direction": spec.direction,
        "engine": spec.engine,
        "axes": {
            "n_nodes": n_axis,
            "tc_ratio": [tc / tp for tc in tc_axis],
            "tr_ratio": [tr / tp for tr in tr_axis],
        },
        "cells": cells,
    }
    table["content_digest"] = content_digest(table)
    return table


def table_json(table: dict) -> str:
    """The canonical serialization (the byte-identity surface)."""
    return json.dumps(table, sort_keys=True, indent=1) + "\n"


def table_path(cache_root: str | os.PathLike | None, tid: str) -> Path:
    """Where a table id lives under a cache root."""
    root = Path(cache_root) if cache_root is not None else ResultCache().root
    return root / TABLE_DIR / f"{tid}.json"


def save_table(table: dict, cache_root: str | os.PathLike | None = None) -> Path:
    """Write a table under its content address; returns the path."""
    target = table_path(cache_root, table["table_id"])
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(table_json(table))
    return target


def load_table(path: str | os.PathLike) -> dict:
    """Read and validate one table file.

    Rejects unknown schemas, tables built under a different
    :data:`~repro.parallel.job.MODEL_VERSION` (the stale-surrogate
    case: simulation semantics moved underneath the calibration), and
    files whose recomputed content id disagrees with the stored one.
    """
    source = Path(path)
    try:
        table = json.loads(source.read_text())
    except ValueError as error:
        raise ValueError(f"prediction table {source} is not valid JSON: {error}")
    if not isinstance(table, dict):
        raise ValueError(f"prediction table {source} must be a JSON object")
    if table.get("table_schema") != TABLE_SCHEMA:
        raise ValueError(
            f"prediction table {source} has schema "
            f"{table.get('table_schema')!r}; this build reads {TABLE_SCHEMA}"
        )
    if table.get("model_version") != MODEL_VERSION:
        raise ValueError(
            f"prediction table {source} was calibrated under model "
            f"version {table.get('model_version')!r}; the current model "
            f"is {MODEL_VERSION!r} — rebuild with 'predict build'"
        )
    expected = table_id(spec_from_table(table), table["holdout_count"])
    if table.get("table_id") != expected:
        raise ValueError(
            f"prediction table {source} id {table.get('table_id')!r} does "
            f"not match its build inputs (expected {expected}); refusing a "
            "tampered or hand-edited table"
        )
    digest = content_digest(table)
    if table.get("content_digest") != digest:
        raise ValueError(
            f"prediction table {source} content digest "
            f"{table.get('content_digest')!r} does not match its cells "
            f"(expected {digest}); refusing a tampered or hand-edited table"
        )
    return table


def resolve_table(
    ref: str | os.PathLike, cache_root: str | os.PathLike | None = None
) -> dict:
    """Load a table by file path or by bare 16-hex id.

    A path that exists wins; otherwise a 16-hex ``ref`` is looked up
    under ``<cache_root>/predict/``.
    """
    candidate = Path(ref)
    if candidate.is_file():
        return load_table(candidate)
    text = str(ref)
    if len(text) == 16 and all(c in "0123456789abcdef" for c in text):
        stored = table_path(cache_root, text)
        if stored.is_file():
            return load_table(stored)
        raise ValueError(
            f"no prediction table {text} under {stored.parent} "
            "(run 'predict build' first)"
        )
    raise ValueError(
        f"prediction table reference {text!r} is neither a file nor a "
        "16-hex table id"
    )
