"""The prediction-tier benchmark (``repro-sync bench --predict``).

One self-contained pass over the whole tier, producing the numbers
the acceptance criteria are stated in:

* **surrogate latency** — the in-memory evaluator timed directly
  (batched ``perf_counter`` deltas; single calls are far below timer
  resolution), reported as per-query p50/mean in microseconds;
* **warm-simulate latency** — ``POST /v1/simulate`` round-trips for a
  job already in the cache, against a real loopback server: the
  fastest answer the simulation tier can give, and the baseline the
  ``>= 1000x`` speedup claim is measured against;
* **bound audit** — :func:`~repro.predict.bounds.verify_table` on a
  fresh seed set: every valid cell must fall within its own reported
  bound (``verify.all_in_bound``);
* **fallback byte-identity** — a ``tolerance: 0`` predict (every
  bound carries the 0.10 floor, so it must fall back) and an
  out-of-range predict, each asserted to embed the *verbatim*
  ``/v1/simulate`` payload bytes for the same job hash.

The snapshot is written as ``BENCH_predict.json`` in the shared
``repro.benchio`` envelope, next to the other ``BENCH_*`` artifacts.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from statistics import fmean, median

from ..benchio import bench_envelope, write_bench_json
from ..campaign.dispatch import LocalDispatcher
from ..campaign.spec import CampaignSpec
from ..obs.clock import perf_counter
from ..parallel import ResultCache
from ..serve.client import ServeClient
from ..serve.config import ServeConfig
from ..serve.lifecycle import BackgroundServer
from .bounds import verify_table
from .surrogate import SurrogateEvaluator
from .tables import build_table, save_table

__all__ = ["bench_spec", "format_predict_table", "run_predict_benchmark"]

#: Default bench cache directory (cleared before the run so the
#: campaign build and the cold simulate are honest).
DEFAULT_BENCH_CACHE = Path("results") / "cache" / "predict-bench"

#: Speedup floor the tier is designed to clear (surrogate p50 vs warm
#: /v1/simulate p50) — recorded in the snapshot, asserted by CI.
SPEEDUP_TARGET = 1000.0


def bench_spec(seed_count: int = 12) -> CampaignSpec:
    """The benchmark's calibration study: a small all-valid grid.

    ``n >= 10`` with ``Tc >= 2 Tr`` keeps every cell synchronized-side
    (the chain's break-up probability is zero, so the phase fraction
    is exactly 0), fast to simulate, and uncensored at a 2000-round
    horizon — the grid is chosen so the *whole* table is inside the
    validity region and the bound audit exercises every cell.
    """
    return CampaignSpec(
        name="predict-bench",
        n_nodes=(10, 12),
        tp=(20.0,),
        tc=(0.3,),
        tr=(0.05, 0.1),
        seed_count=seed_count,
        horizon=40000.0,
        engine="cascade",
    )


def _time_surrogate(
    evaluator: SurrogateEvaluator,
    queries: list[tuple[float, float, float, float]],
    repeats: int = 200,
    batch: int = 500,
    memoized: bool = True,
) -> dict:
    """Per-query latency of the in-memory evaluator.

    One call is far below what a single ``perf_counter`` delta
    measures honestly, so each sample times a ``batch``-call loop and
    divides; p50/p95 are over ``repeats`` such samples.  Queries
    rotate through grid-exact and interpolated points so the sample
    mixes both paths.  ``memoized=True`` times :meth:`~repro.predict.
    surrogate.SurrogateEvaluator.lookup` — the serving hot path, with
    the memo warmed by one full rotation first — while ``False`` times
    the raw interpolation in :meth:`~repro.predict.surrogate.
    SurrogateEvaluator.evaluate`.
    """
    evaluate = evaluator.lookup if memoized else evaluator.evaluate
    if memoized:
        for q in queries:
            evaluator.lookup(q[0], q[1], q[2], q[3])
    n_queries = len(queries)
    samples = []
    for rep in range(repeats):
        t0 = perf_counter()
        for i in range(batch):
            q = queries[(rep + i) % n_queries]
            evaluate(q[0], q[1], q[2], q[3])
        samples.append((perf_counter() - t0) / batch)
    samples.sort()
    return {
        "batch": batch,
        "repeats": repeats,
        "p50_us": round(median(samples) * 1e6, 3),
        "p95_us": round(samples[int(0.95 * (len(samples) - 1))] * 1e6, 3),
        "mean_us": round(fmean(samples) * 1e6, 3),
    }


def _time_requests(send, count: int) -> dict:
    """p50/p95/mean RTT of ``count`` sequential calls of ``send``."""
    samples = []
    for _ in range(count):
        t0 = perf_counter()
        response = send()
        samples.append(perf_counter() - t0)
        if response.status != 200:
            raise RuntimeError(
                f"benchmark request answered {response.status}: "
                f"{response.body[:200]!r}"
            )
    samples.sort()
    return {
        "requests": count,
        "p50_ms": round(median(samples) * 1e3, 3),
        "p95_ms": round(samples[int(0.95 * (len(samples) - 1))] * 1e3, 3),
        "mean_ms": round(fmean(samples) * 1e3, 3),
    }


def _fallback_check(client: ServeClient, query: dict) -> dict:
    """POST one falling-back predict and prove byte-identity.

    The predict body must embed the ``/v1/simulate`` payload for the
    same job hash as a *verbatim byte substring* — stronger than JSON
    equality, and exactly the guarantee the serving tier states.
    """
    predicted = client.predict(query)
    spec = {k: v for k, v in query.items() if k != "tolerance"}
    simulated = client.simulate(spec)
    ok = predicted.status == 200 and simulated.status == 200
    body = predicted.body if ok else b""
    sim_bytes = simulated.body.rstrip(b"\n") if ok else b"missing"
    parsed = json.loads(body) if ok else {}
    return {
        "query": query,
        "status": predicted.status,
        "reason": parsed.get("predict", {}).get("reason"),
        "fell_back": ok and parsed.get("predict", {}).get("source") == "fallback",
        "byte_identical": ok and sim_bytes in body,
    }


def run_predict_benchmark(
    jobs: int | None = None,
    cache_root: str | os.PathLike | None = None,
    output: str | os.PathLike | None = None,
    simulate_requests: int = 40,
    fresh_seeds: int = 4,
) -> dict:
    """Run the tier benchmark; return (optionally write) the snapshot."""
    jobs = jobs or os.cpu_count() or 1
    root = Path(cache_root) if cache_root is not None else DEFAULT_BENCH_CACHE
    shutil.rmtree(root, ignore_errors=True)
    cache = ResultCache(root)

    spec = bench_spec()
    t0 = perf_counter()
    table = build_table(spec, cache, dispatcher=LocalDispatcher(jobs=jobs))
    build_seconds = perf_counter() - t0
    table_path = save_table(table, root)
    evaluator = SurrogateEvaluator(table)

    tp, tc = spec.tp[0], spec.tc[0]
    grid = [
        (n, tp, tc, tr) for n in spec.n_nodes for tr in spec.tr
    ]
    # Interpolated (off-grid) companions to every grid point.
    off_grid = [
        (n + 1, tp, tc, (spec.tr[0] + spec.tr[1]) / 2)
        for n in spec.n_nodes[:-1]
    ]
    surrogate = _time_surrogate(evaluator, grid + off_grid)
    surrogate_uncached = _time_surrogate(
        evaluator, grid + off_grid, memoized=False
    )

    # The fallback job for the first grid point, with the spec's own
    # horizon/seed so its hash equals a campaign job already in the
    # cache — the warmest answer /v1/simulate can possibly give.
    warm_spec = {
        "n_nodes": spec.n_nodes[0],
        "tp": tp,
        "tc": tc,
        "tr": spec.tr[0],
        "seed": spec.seed_start,
        "horizon": spec.horizon,
        "direction": spec.direction,
        "engine": spec.engine,
    }
    config = ServeConfig(
        host="127.0.0.1",
        port=0,
        jobs=1,
        cache_root=str(root),
        predict_table=str(table_path),
    )
    with BackgroundServer(config) as bg:
        with ServeClient(bg.host, bg.port, timeout=60.0) as client:
            client.simulate(warm_spec)  # prime connection + cache
            simulate_warm = _time_requests(
                lambda: client.simulate(warm_spec), simulate_requests
            )
            hit_query = {
                "n_nodes": spec.n_nodes[0],
                "tp": tp,
                "tc": tc,
                "tr": spec.tr[0],
            }
            predict_http = _time_requests(
                lambda: client.predict(hit_query), simulate_requests
            )
            hit = json.loads(client.predict(hit_query).body)
            fallback_tolerance = _fallback_check(
                client, {**warm_spec, "tolerance": 0}
            )
            out_of_range_spec = {**warm_spec, "tr": 5.0}
            fallback_range = _fallback_check(client, out_of_range_spec)
            health = json.loads(client.healthz().body)

    verify = verify_table(table, cache, seed_count=fresh_seeds, jobs=jobs)

    surrogate_p50_s = surrogate["p50_us"] / 1e6
    simulate_p50_s = simulate_warm["p50_ms"] / 1e3
    speedup = simulate_p50_s / surrogate_p50_s if surrogate_p50_s > 0 else 0.0
    payload = {
        "workload": {
            "spec": spec.to_dict(),
            "table_id": table["table_id"],
            "table_cells": len(table["cells"]),
            "valid_cells": sum(1 for c in table["cells"] if c["valid"]),
            "build_seconds": round(build_seconds, 3),
            "jobs": jobs,
        },
        "surrogate": surrogate,
        "surrogate_uncached": surrogate_uncached,
        "simulate_warm": simulate_warm,
        "predict_http": predict_http,
        "speedup_p50": round(speedup, 1),
        "meets_1000x": speedup >= SPEEDUP_TARGET,
        "surrogate_hit": hit.get("predict", {}),
        "healthz": {
            "model_version": health.get("model_version"),
            "predict_table": health.get("predict_table"),
        },
        "verify": {
            "seed_start": verify["seed_start"],
            "seed_count": verify["seed_count"],
            "cells_checked": verify["cells_checked"],
            "cells_skipped": verify["cells_skipped"],
            "all_in_bound": verify["all_in_bound"],
            "rows": verify["rows"],
        },
        "fallback": {
            "tolerance_zero": fallback_tolerance,
            "out_of_range": fallback_range,
            "byte_identical": (
                fallback_tolerance["byte_identical"]
                and fallback_range["byte_identical"]
            ),
            "out_of_range_falls_back": (
                fallback_range["fell_back"]
                and fallback_range["reason"] == "out_of_range"
            ),
        },
    }
    snapshot = bench_envelope("predict_surrogate", payload)
    if output is not None:
        write_bench_json(output, snapshot)
    return snapshot


def format_predict_table(snapshot: dict) -> str:
    """Render the snapshot as the CLI's prediction-tier table."""
    workload = snapshot["workload"]
    surrogate = snapshot["surrogate"]
    uncached = snapshot["surrogate_uncached"]
    simulate = snapshot["simulate_warm"]
    predict_http = snapshot["predict_http"]
    verify = snapshot["verify"]
    fallback = snapshot["fallback"]
    lines = [
        f"prediction tier: table {workload['table_id']} "
        f"({workload['valid_cells']}/{workload['table_cells']} cells valid, "
        f"built in {workload['build_seconds']:g}s)",
        "",
        f"{'path':<28} {'p50':>12} {'p95':>12} {'mean':>12}",
        "-" * 67,
        f"{'surrogate (memo-warm)':<28} "
        f"{surrogate['p50_us']:>9.3f} us {surrogate['p95_us']:>9.3f} us "
        f"{surrogate['mean_us']:>9.3f} us",
        f"{'surrogate (uncached)':<28} "
        f"{uncached['p50_us']:>9.3f} us {uncached['p95_us']:>9.3f} us "
        f"{uncached['mean_us']:>9.3f} us",
        f"{'/v1/predict (loopback)':<28} "
        f"{predict_http['p50_ms']:>9.3f} ms {predict_http['p95_ms']:>9.3f} ms "
        f"{predict_http['mean_ms']:>9.3f} ms",
        f"{'/v1/simulate warm (loopback)':<28} "
        f"{simulate['p50_ms']:>9.3f} ms {simulate['p95_ms']:>9.3f} ms "
        f"{simulate['mean_ms']:>9.3f} ms",
        "",
        f"speedup p50 (surrogate vs warm simulate): "
        f"{snapshot['speedup_p50']:g}x "
        f"(>= {SPEEDUP_TARGET:g}x: "
        + ("yes" if snapshot["meets_1000x"] else "NO")
        + ")",
        f"bound audit: {verify['cells_checked']} cell(s) on fresh seeds "
        f"{verify['seed_start']}..{verify['seed_start'] + verify['seed_count'] - 1}, "
        "all in bound: "
        + ("yes" if verify["all_in_bound"] else "NO"),
        "fallback byte-identity (tolerance=0 + out-of-range): "
        + ("yes" if fallback["byte_identical"] else "NO"),
        "out-of-range falls back: "
        + ("yes" if fallback["out_of_range_falls_back"] else "NO"),
    ]
    return "\n".join(lines)
