"""The microsecond evaluator: Markov prediction x table calibration.

The paper's Section 5 chain answers "how many rounds to synchronize?"
analytically, but over-predicts the simulated first-passage time by a
factor of 2-3x (its ``f(2)`` is fitted, and the chain collapses the
cluster geometry to one number).  The prediction tier therefore
serves a *calibrated* figure: at table-build time every grid cell
stores the chain's expected rounds next to the correction factor that
maps it onto the simulated calibration mean, and the two collapse
into one precomputed ``pred_rounds`` per cell.

That precomputation is what makes the query path microseconds: a
:class:`SurrogateEvaluator` holds the table as flat lists and answers
``evaluate(n, tp, tc, tr)`` with three bisects and an (up to)
8-corner trilinear interpolation over ``(n, Tc/Tp, Tr/Tp)`` — no
chain is ever built per query, no dict is touched, nothing allocates
beyond the result tuple.  Pure Python by design (the tier must serve
from the numpy-free floor); NumPy, when present, is only ever used
upstream of the table.

Error handling is by return code, not exception, because the serving
path routes every non-``OK`` outcome to the simulation fallback:

* ``OK`` — inside the table hull, every bracketing cell validated.
* ``OUT_OF_RANGE`` — outside the hull of any axis.
* ``INVALID_CELL`` — inside the hull, but a bracketing cell failed
  validation (wrong phase, censored calibration, unbounded chain).
"""

from __future__ import annotations

import math
from bisect import bisect_left

from ..core.parameters import RouterTimingParameters
from ..markov.hitting_times import synchronization_times

__all__ = [
    "INVALID_CELL",
    "OK",
    "OUT_OF_RANGE",
    "STATUS_NAMES",
    "SurrogateEvaluator",
    "markov_expected_rounds",
]

#: Return codes of :meth:`SurrogateEvaluator.evaluate`.
OK = 0
OUT_OF_RANGE = 1
INVALID_CELL = 2

#: Wire names for the return codes (``INVALID_CELL`` surfaces as
#: ``out_of_region``: inside the table hull but outside the validity
#: region the bounds layer established).
STATUS_NAMES = {OK: "ok", OUT_OF_RANGE: "out_of_range", INVALID_CELL: "out_of_region"}

#: Query-memo capacity of :meth:`SurrogateEvaluator.lookup`.  Answers
#: are pure functions of the query, so the memo can never go stale;
#: the bound (with wholesale clear on overflow) only caps memory
#: against adversarial never-repeating query streams.
MEMO_LIMIT = 65536


def markov_expected_rounds(
    params: RouterTimingParameters, direction: str = "up"
) -> tuple[float, float]:
    """The chain's raw prediction at one point: ``(rounds, fraction)``.

    ``rounds`` is ``f(N)`` (direction ``"up"``) or ``g(1)``
    (``"down"``), possibly ``math.inf``; ``fraction`` is the
    equilibrium estimator ``f(N)/(f(N)+g(1))`` the validity region is
    cut on.  This is the build-time half of the surrogate — queries
    never call it.
    """
    times = synchronization_times(params)
    rounds = (
        times.rounds_to_synchronize
        if direction == "up"
        else times.rounds_to_break_up
    )
    return rounds, times.fraction_unsynchronized()


def _bracket(axis: list[float], value: float) -> tuple[int, int, float] | None:
    """Locate ``value`` on a sorted axis: ``(lo, hi, weight)``.

    ``weight`` is the linear interpolation weight of ``hi`` (0.0 on an
    exact hit, where ``lo == hi``); None when outside the axis hull.
    """
    if value < axis[0] or value > axis[-1]:
        return None
    i = bisect_left(axis, value)
    if i < len(axis) and axis[i] == value:
        return (i, i, 0.0)
    lo = i - 1
    return (lo, i, (value - axis[lo]) / (axis[i] - axis[lo]))


class SurrogateEvaluator:
    """The in-memory query engine over one prediction table.

    Construction flattens the table's cells into parallel lists
    indexed ``(i * len(tc_axis) + j) * len(tr_axis) + k`` so the hot
    path is pure index arithmetic.  The instance is immutable after
    construction and safe to share across requests.
    """

    __slots__ = (
        "direction",
        "table_id",
        "_ns",
        "_xs",
        "_ys",
        "_nj",
        "_nk",
        "_pred",
        "_bound",
        "_valid",
        "_memo",
    )

    def __init__(self, table: dict) -> None:
        self.direction = table["direction"]
        self.table_id = table["table_id"]
        axes = table["axes"]
        self._ns = [float(v) for v in axes["n_nodes"]]
        self._xs = [float(v) for v in axes["tc_ratio"]]
        self._ys = [float(v) for v in axes["tr_ratio"]]
        for name, axis in (
            ("n_nodes", self._ns),
            ("tc_ratio", self._xs),
            ("tr_ratio", self._ys),
        ):
            if sorted(axis) != axis:
                raise ValueError(f"table axis {name!r} is not sorted")
        cells = table["cells"]
        expected = len(self._ns) * len(self._xs) * len(self._ys)
        if len(cells) != expected:
            raise ValueError(
                f"table holds {len(cells)} cells; axes imply {expected}"
            )
        self._nj = len(self._xs)
        self._nk = len(self._ys)
        self._pred = [
            cell["pred_rounds"] if cell["pred_rounds"] is not None else math.nan
            for cell in cells
        ]
        self._bound = [
            cell["bound_rel"] if cell["bound_rel"] is not None else math.nan
            for cell in cells
        ]
        self._valid = [bool(cell["valid"]) for cell in cells]
        self._memo: dict[tuple, tuple[int, float, float, float]] = {}

    def lookup(
        self, n_nodes: float, tp: float, tc: float, tr: float
    ) -> tuple[int, float, float, float]:
        """Memoized :meth:`evaluate` — the serving hot path.

        The paper's motivating workload is many routers asking about
        the *same few* configurations, so the common case is a repeat
        query: one tuple hash instead of three bisects and an
        interpolation.  Same figure-memo reasoning as the server's
        ``/v1/figures`` cache — answers are pure functions of the
        query, so memoization cannot change a byte.
        """
        key = (n_nodes, tp, tc, tr)
        memo = self._memo
        hit = memo.get(key)
        if hit is not None:
            return hit
        result = self.evaluate(n_nodes, tp, tc, tr)
        if len(memo) >= MEMO_LIMIT:
            memo.clear()
        memo[key] = result
        return result

    def evaluate(
        self, n_nodes: float, tp: float, tc: float, tr: float
    ) -> tuple[int, float, float, float]:
        """The hot path: ``(code, seconds, rounds, bound_rel)``.

        ``seconds``/``rounds``/``bound_rel`` are meaningful only when
        ``code == OK``.  The reported bound is the worst bracketing
        cell's bound plus the corners' relative prediction spread (the
        off-grid interpolation penalty; zero on exact grid hits).
        """
        if tp <= 0.0:
            return (OUT_OF_RANGE, 0.0, 0.0, 0.0)
        bn = _bracket(self._ns, n_nodes)
        if bn is None:
            return (OUT_OF_RANGE, 0.0, 0.0, 0.0)
        bx = _bracket(self._xs, tc / tp)
        if bx is None:
            return (OUT_OF_RANGE, 0.0, 0.0, 0.0)
        by = _bracket(self._ys, tr / tp)
        if by is None:
            return (OUT_OF_RANGE, 0.0, 0.0, 0.0)
        nj, nk = self._nj, self._nk
        preds, bounds, valid = self._pred, self._bound, self._valid
        pred = 0.0
        bound = 0.0
        lo = math.inf
        hi = -math.inf
        for i, wi in ((bn[0], 1.0 - bn[2]), (bn[1], bn[2])):
            if wi == 0.0:
                continue
            for j, wj in ((bx[0], 1.0 - bx[2]), (bx[1], bx[2])):
                if wj == 0.0:
                    continue
                row = (i * nj + j) * nk
                for k, wk in ((by[0], 1.0 - by[2]), (by[1], by[2])):
                    if wk == 0.0:
                        continue
                    idx = row + k
                    if not valid[idx]:
                        return (INVALID_CELL, 0.0, 0.0, 0.0)
                    p = preds[idx]
                    pred += wi * wj * wk * p
                    b = bounds[idx]
                    if b > bound:
                        bound = b
                    if p < lo:
                        lo = p
                    if p > hi:
                        hi = p
        if hi > lo and pred > 0.0:
            bound += (hi - lo) / pred
        return (OK, pred * (tp + tc), pred, bound)

    def predict(
        self, n_nodes: float, tp: float, tc: float, tr: float
    ) -> dict:
        """The friendly form of :meth:`evaluate` (CLI and payloads)."""
        code, seconds, rounds, bound = self.evaluate(n_nodes, tp, tc, tr)
        out = {
            "status": STATUS_NAMES[code],
            "table_id": self.table_id,
            "direction": self.direction,
        }
        if code == OK:
            out["event"] = (
                "synchronize" if self.direction == "up" else "break_up"
            )
            out["expected_seconds"] = seconds
            out["expected_rounds"] = rounds
            out["bound_rel"] = bound
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SurrogateEvaluator({self.table_id}, "
            f"{len(self._ns)}x{self._nj}x{self._nk} cells, "
            f"direction={self.direction})"
        )
