"""The serving-side seam: query parsing and surrogate-vs-fallback routing.

:class:`PredictService` is everything ``POST /v1/predict`` needs that
is not HTTP: parse the query into the *same* content-addressed
:class:`~repro.parallel.job.SimulationJob` the simulation tier uses,
then decide — surrogate answer, or fallback.  Keeping the decision
here (pure, synchronous, exception-free) lets the server treat it as
a lookup and the tests exercise every routing branch without a
socket.

The routing contract, in fallback-priority order:

1. ``direction_mismatch`` — the query asks for the passage the loaded
   table was not built for.
2. ``out_of_range`` — outside the table's axis hull.
3. ``out_of_region`` — inside the hull, but a bracketing cell is
   outside the validity region (:mod:`repro.predict.bounds`).
4. ``tolerance_exceeded`` — the answer exists but its quantified
   bound is looser than the caller's ``tolerance``.  ``tolerance: 0``
   therefore *always* falls back (every bound carries the 0.10
   floor), which is the lever the differential byte-identity test
   pulls.

Anything else is a surrogate hit: a microsecond in-memory answer that
never touches the admission queue.
"""

from __future__ import annotations

from ..parallel.job import MODEL_VERSION, SimulationJob
from .surrogate import INVALID_CELL, OK, OUT_OF_RANGE, SurrogateEvaluator

__all__ = ["DEFAULT_HORIZON_ROUNDS", "PredictService", "parse_query"]

#: Default fallback-simulation horizon, in rounds of ``Tp + Tc``: a
#: query that does not say how long to simulate gets the same horizon
#: scale the campaign reference procedure uses.
DEFAULT_HORIZON_ROUNDS = 1000.0


def parse_query(data) -> tuple[SimulationJob, float | None]:
    """Parse a ``/v1/predict`` body: ``(fallback job, tolerance)``.

    The query *is* a job spec (minus the simulation-only fields, which
    default) so that the fallback path needs no translation — the
    job's content hash is the coalescing key and the cache address,
    exactly as if the caller had POSTed ``/v1/simulate``.  Raises
    :class:`ValueError` on malformed input.
    """
    if not isinstance(data, dict):
        raise ValueError("predict query must be a JSON object")
    known = {
        "n_nodes", "tp", "tc", "tr", "seed", "horizon",
        "direction", "engine", "tolerance",
    }
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown predict field(s): {', '.join(unknown)}")
    missing = sorted({"n_nodes", "tp", "tc", "tr"} - set(data))
    if missing:
        raise ValueError(f"predict query missing field(s): {', '.join(missing)}")
    tolerance = data.get("tolerance")
    if tolerance is not None:
        try:
            tolerance = float(tolerance)
        except (TypeError, ValueError):
            raise ValueError("tolerance must be a number")
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
    tp = float(data["tp"])
    tc = float(data["tc"])
    horizon = data.get("horizon")
    if horizon is None:
        if tp <= 0:
            raise ValueError("tp must be positive")
        horizon = DEFAULT_HORIZON_ROUNDS * (tp + tc)
    job = SimulationJob(
        n_nodes=int(data["n_nodes"]),
        tp=tp,
        tc=tc,
        tr=float(data["tr"]),
        seed=int(data.get("seed", 1)),
        horizon=float(horizon),
        direction=str(data.get("direction", "up")),
        engine=str(data.get("engine", "cascade")),
    )
    return job, tolerance


class PredictService:
    """One loaded table plus the routing decision, shareable across
    requests (the evaluator is immutable)."""

    def __init__(self, table: dict) -> None:
        self.evaluator = SurrogateEvaluator(table)
        self.table_id = self.evaluator.table_id
        self.direction = self.evaluator.direction

    def resolve(
        self, job: SimulationJob, tolerance: float | None
    ) -> tuple[str, ...]:
        """Route one query: ``("surrogate", meta)`` or
        ``("fallback", reason, detail)``."""
        if job.direction != self.direction:
            return (
                "fallback",
                "direction_mismatch",
                {"table_direction": self.direction, "query_direction": job.direction},
            )
        code, seconds, rounds, bound = self.evaluator.lookup(
            job.n_nodes, job.tp, job.tc, job.tr
        )
        if code == OUT_OF_RANGE:
            return ("fallback", "out_of_range", {})
        if code == INVALID_CELL:
            return ("fallback", "out_of_region", {})
        assert code == OK
        if tolerance is not None and bound > tolerance:
            return (
                "fallback",
                "tolerance_exceeded",
                {"bound_rel": bound, "tolerance": tolerance},
            )
        return (
            "surrogate",
            {
                "source": "surrogate",
                "table_id": self.table_id,
                "model_version": MODEL_VERSION,
                "query": job.to_dict(),
                "prediction": {
                    "event": (
                        "synchronize" if self.direction == "up" else "break_up"
                    ),
                    "expected_seconds": seconds,
                    "expected_rounds": rounds,
                    "bound_rel": bound,
                },
            },
        )
