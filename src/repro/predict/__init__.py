"""The prediction tier: calibrated analytic answers in microseconds.

``repro.predict`` turns the Section 5 Markov chain plus one campaign
run into a serving tier: content-addressed interpolation tables
(:mod:`~repro.predict.tables`), a pure-Python microsecond evaluator
(:mod:`~repro.predict.surrogate`), quantified per-cell error bounds
and the validity region (:mod:`~repro.predict.bounds`), and the
query/routing seam ``POST /v1/predict`` sits on
(:mod:`~repro.predict.service`).  Outside the validity region — or
when the caller's tolerance is tighter than the bound — the answer
falls back to the simulation tier, byte-identically.

The whole package is importable and serviceable without NumPy: the
chain math it needs is the pure-recursion half of ``repro.markov``.
"""

from .bounds import BOUND_FLOOR, BOUND_SEM_MULTIPLIER, cell_bound, in_phase, verify_table
from .service import PredictService, parse_query
from .surrogate import SurrogateEvaluator, markov_expected_rounds
from .tables import (
    TABLE_SCHEMA,
    build_table,
    content_digest,
    load_table,
    resolve_table,
    save_table,
    spec_from_table,
    table_id,
    table_json,
    table_path,
)

__all__ = [
    "BOUND_FLOOR",
    "BOUND_SEM_MULTIPLIER",
    "PredictService",
    "SurrogateEvaluator",
    "TABLE_SCHEMA",
    "build_table",
    "cell_bound",
    "content_digest",
    "in_phase",
    "load_table",
    "markov_expected_rounds",
    "parse_query",
    "resolve_table",
    "save_table",
    "spec_from_table",
    "table_id",
    "table_json",
    "table_path",
    "verify_table",
]
