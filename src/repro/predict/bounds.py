"""Quantified error bounds and the validity region.

A surrogate answer without an error bar is a guess.  This module owns
both halves of the tier's honesty story:

**Validity region.**  The Malyshev-Manita phase-transition picture
(and the paper's own Figures 14/15) says the chain is only a model of
the *dominant* passage: expected time to synchronize is meaningful on
the synchronized side of the transition, expected time to break up on
the unsynchronized side.  A cell is in-region when the equilibrium
estimator ``f(N)/(f(N)+g(1))`` sits on the matching side of one half
(:func:`in_phase` — the same 0.5 crossing ``markov.critical`` bisects
for), the chain's prediction is finite, and *no* calibration seed was
censored at the horizon.  Everything else is served by the simulation
fallback, never the table.

**Per-cell bound.**  Each cell's relative bound is measured against
simulation seeds the calibration never saw::

    bound = |pred - holdout_mean| / holdout_mean      (observed bias)
          + 4 * (spread / sqrt(m)) / holdout_mean     (seed noise, 4 SEM)
          + 0.10                                      (floor)

with ``spread`` the sample standard deviation of the holdout seeds
(falling back to the calibration seeds when only one seed is held
out).  The floor keeps single-digit-seed tables from reporting bounds
tighter than their evidence; 4 standard errors keeps a *fresh* seed
set inside the bound with comfortable margin — which is exactly what
:func:`verify_table` measures, and what ``bench --predict`` and the
CI smoke assert.
"""

from __future__ import annotations

import math
from statistics import fmean, stdev

from ..core.parameters import RouterTimingParameters
from ..parallel import ParallelRunner, ResultCache
from ..parallel.job import SimulationJob
from .surrogate import OK, SurrogateEvaluator

__all__ = [
    "BOUND_FLOOR",
    "BOUND_SEM_MULTIPLIER",
    "cell_bound",
    "in_phase",
    "phase_fraction",
    "verify_table",
]

#: Standard errors of the holdout mean folded into every bound.
BOUND_SEM_MULTIPLIER = 4.0

#: Additive relative-error floor: no cell claims to be tighter than
#: this, however well its few seeds happened to agree.
BOUND_FLOOR = 0.10


def phase_fraction(params: RouterTimingParameters) -> float:
    """The equilibrium estimator ``f(N)/(f(N)+g(1))`` at one point."""
    from ..markov.critical import fraction_unsynchronized_at

    return fraction_unsynchronized_at(params)


def in_phase(params: RouterTimingParameters, direction: str = "up") -> bool:
    """Whether ``direction``'s passage is the dominant one here.

    ``"up"`` (time to synchronize) is trustworthy on the synchronized
    side of the transition (fraction below one half); ``"down"`` (time
    to break up) on the unsynchronized side.
    """
    fraction = phase_fraction(params)
    return fraction < 0.5 if direction == "up" else fraction > 0.5


def cell_bound(
    pred_seconds: float,
    holdout_seconds: list[float],
    fit_seconds: list[float] = (),
) -> float | None:
    """The relative error bound of one cell, or None when unmeasurable.

    ``holdout_seconds``/``fit_seconds`` are the *observed* (uncensored)
    terminal times of the holdout and calibration seed families.
    """
    if not holdout_seconds or pred_seconds <= 0.0:
        return None
    mean = fmean(holdout_seconds)
    if mean <= 0.0:
        return None
    if len(holdout_seconds) >= 2:
        spread = stdev(holdout_seconds)
    elif len(fit_seconds) >= 2:
        spread = stdev(fit_seconds)
    else:
        spread = 0.0
    sem = spread / math.sqrt(len(holdout_seconds))
    return (
        abs(pred_seconds - mean) / mean
        + BOUND_SEM_MULTIPLIER * sem / mean
        + BOUND_FLOOR
    )


def verify_table(
    table: dict,
    cache: ResultCache | None = None,
    *,
    seed_count: int = 4,
    seed_start: int | None = None,
    jobs: int | None = None,
) -> dict:
    """Check every valid cell against a fresh seed set.

    Runs ``seed_count`` seeds the table has never seen (by default the
    range directly above the build spec's) at each valid cell's exact
    grid point, and asserts the surrogate's answer falls within its
    own reported bound of the fresh mean.  Returns the audit:
    per-cell rows plus ``all_in_bound`` — the acceptance gate
    ``bench --predict`` and the CI smoke both key on.
    """
    from .tables import spec_from_table

    spec = spec_from_table(table)
    if seed_count < 1:
        raise ValueError("seed_count must be >= 1")
    start = (
        seed_start
        if seed_start is not None
        else spec.seed_start + spec.seed_count
    )
    evaluator = SurrogateEvaluator(table)
    checked = [cell for cell in table["cells"] if cell["valid"]]
    specs: list[SimulationJob] = []
    for cell in checked:
        for seed in range(start, start + seed_count):
            specs.append(
                SimulationJob(
                    n_nodes=cell["n_nodes"],
                    tp=cell["tp"],
                    tc=cell["tc"],
                    tr=cell["tr"],
                    seed=seed,
                    horizon=spec.horizon,
                    direction=spec.direction,
                    engine=spec.engine,
                )
            )
    runner = ParallelRunner(jobs=jobs or 1, cache=cache)
    results = runner.run(specs)
    rows = []
    for index, cell in enumerate(checked):
        family = specs[index * seed_count : (index + 1) * seed_count]
        outcomes = results[index * seed_count : (index + 1) * seed_count]
        observed = [
            t
            for job, result in zip(family, outcomes)
            if (t := result.terminal_time(job)) is not None
        ]
        code, seconds, _rounds, bound = evaluator.evaluate(
            cell["n_nodes"], cell["tp"], cell["tc"], cell["tr"]
        )
        row = {
            "n_nodes": cell["n_nodes"],
            "tp": cell["tp"],
            "tc": cell["tc"],
            "tr": cell["tr"],
            "pred_seconds": seconds,
            "bound_rel": bound,
            "fresh_observed": len(observed),
            "fresh_censored": seed_count - len(observed),
            "fresh_mean": fmean(observed) if observed else None,
        }
        if code != OK or not observed:
            # A valid cell must answer OK at its own grid point and a
            # fresh seed set must reach the terminal event there;
            # either failure is a real violation, not a skip.
            row["rel_error"] = None
            row["in_bound"] = False
        else:
            rel_error = abs(seconds - row["fresh_mean"]) / row["fresh_mean"]
            row["rel_error"] = rel_error
            row["in_bound"] = rel_error <= bound
        rows.append(row)
    return {
        "table_id": table["table_id"],
        "seed_start": start,
        "seed_count": seed_count,
        "cells_checked": len(rows),
        "cells_skipped": len(table["cells"]) - len(rows),
        "rows": rows,
        "all_in_bound": all(row["in_bound"] for row in rows),
    }
