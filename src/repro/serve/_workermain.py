"""Diagnosable ``-m`` entry for prefork serve workers.

The supervisor boots workers through :data:`~repro.serve.supervisor
.WORKER_BOOT` (a ``python -c`` shim whose signal latch must precede
the package imports), but this module remains as the inspectable
``python -m repro.serve._workermain`` entry: with the worker
environment set it runs a worker, bare it prints how fleets are
actually started.  Deliberately *not* imported by the package
``__init__`` so runpy never warns about the ``-m`` target already
being in ``sys.modules``.
"""

from .supervisor import main

if __name__ == "__main__":  # pragma: no cover - subprocess entry
    raise SystemExit(main())
