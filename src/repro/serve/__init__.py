"""``repro.serve`` — the zero-dependency simulation-serving layer.

Turns the job/cache/obs stack into a long-running service: an asyncio
HTTP/1.1 JSON API (hand-rolled on ``asyncio.start_server``, the same
way ``repro.net`` hand-rolls its packet layer) with

* **single-flight coalescing** on content-addressed job hashes — N
  identical concurrent requests cost one simulation and all receive
  the same bytes (:mod:`repro.serve.coalesce`);
* **bounded admission with backpressure** — over the depth limit,
  requests shed with ``429`` and a deterministic, job-keyed
  ``Retry-After`` (:mod:`repro.serve.queue`), never an unbounded
  queue;
* **write-through caching** on the PR-1 :class:`~repro.parallel
  .ResultCache`, so a restarted server answers warm;
* **deadlines** that reuse the PR-2 watchdog semantics — a hung job
  is a ``504``, never a wedged event loop;
* **graceful drain** on SIGTERM (:mod:`repro.serve.lifecycle`) —
  ``/readyz`` flips to 503, in-flight work finishes, exit 0;
* **prefork multi-worker serving** (:mod:`repro.serve.supervisor`) —
  ``workers >= 2`` binds the socket once in a parent that spawns,
  monitors, and crash-respawns asyncio workers (deterministic
  key-seeded backoff), with single-flight promoted to cross-process
  claim records next to the cache
  (:class:`~repro.parallel.ClaimRegistry`) and SIGTERM performing a
  coordinated whole-fleet drain;
* a stdlib **client** and a seeded, deterministic **load generator**
  whose periodic clients jitter their timers with the paper's own
  ``[Tp - Tr, Tp + Tr]`` rule (:mod:`repro.serve.loadgen`);
* a **loopback bench** writing ``BENCH_serve.json`` in the shared
  envelope (:mod:`repro.serve.bench`).

Serving never touches simulation semantics: response bodies are
canonical JSON that is byte-identical to what the direct
``ParallelRunner`` path produces for the same
:class:`~repro.parallel.SimulationJob` spec.
"""

from __future__ import annotations

from .bench import run_serve_benchmark
from .client import ApiResponse, ServeClient
from .coalesce import CoalesceCancelledError, Coalescer
from .config import ServeConfig
from .lifecycle import BackgroundServer, serve_forever
from .loadgen import (
    LoadPlan,
    build_schedule,
    default_specs,
    format_report,
    run_chaos_load,
    run_load,
)
from .queue import AdmissionQueue, QueueFullError
from .server import SimulationServer, figure_payload, simulation_payload
from .supervisor import SupervisedServer, Supervisor, supervise

__all__ = [
    "AdmissionQueue",
    "ApiResponse",
    "BackgroundServer",
    "CoalesceCancelledError",
    "Coalescer",
    "LoadPlan",
    "QueueFullError",
    "ServeClient",
    "ServeConfig",
    "SimulationServer",
    "SupervisedServer",
    "Supervisor",
    "build_schedule",
    "default_specs",
    "figure_payload",
    "format_report",
    "run_chaos_load",
    "run_load",
    "run_serve_benchmark",
    "serve_forever",
    "simulation_payload",
    "supervise",
]
