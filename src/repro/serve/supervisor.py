"""Prefork multi-worker serving: bind once, spawn N, respawn crashes.

The paper's subject — many independent periodic processes sharing a
resource — is exactly what a prefork server fleet is, and this module
applies the paper's own medicine to its failure handling: worker
respawns are spaced by *deterministic key-seeded jitter*
(:func:`~repro.parallel.runner.deterministic_jitter`), so a fleet of
crash-looping workers never thunders back in lockstep, yet every run
of the supervisor sleeps the same schedule.

Architecture::

    parent (Supervisor)                 workers (asyncio, one process each)
    ───────────────────                 ──────────────────────────────────
    bind host:port once  ──inherited──▶ asyncio.start_server(sock=fd)
    spawn N workers           fd        admit → coalesce → claims → pool
    monitor & respawn                   cross-process single-flight via
    SIGTERM → drain all                 ClaimRegistry next to the cache

* **One socket.** The parent binds (resolving ``port=0`` to a real
  port before any worker exists) and each worker inherits the
  listening fd via ``pass_fds`` + :data:`SOCKET_FD_ENV`; the kernel
  load-balances accepts between the workers' event loops.
* **Config by environment.** Workers are fresh interpreters running
  the :data:`WORKER_BOOT` shim (a signal latch, then
  :func:`worker_main`); they rebuild their
  :class:`~repro.serve.config.ServeConfig` (fault plan included) from
  JSON in :data:`CONFIG_ENV` — nothing is pickled, everything is
  inspectable with ``ps e``.
* **Crash-respawn with backoff.** A worker exiting outside a drain is
  respawned after ``restart_backoff * 2^n * jitter(slot, n)`` seconds
  (``n`` = consecutive crashes of that slot); after
  ``restart_limit`` consecutive crashes the slot is abandoned (crash
  loops must not melt the host).  A worker that stays up resets its
  slot's crash count.  Respawns are counted in
  ``serve.workers.restarts`` (supervisor registry *and* the global
  :mod:`repro.obs` runtime).
* **Coordinated drain.** SIGTERM/SIGINT to the parent forwards
  SIGTERM to every worker; each flips ``/readyz`` to 503, finishes
  in-flight requests, and exits 0 (the PR-4 drain, unchanged).  The
  parent reaps them (bounded by ``drain_grace`` plus margin,
  SIGKILL stragglers) and exits 0 iff every worker drained cleanly.

:class:`SupervisedServer` is the in-process harness mirroring
:class:`~repro.serve.lifecycle.BackgroundServer`: the supervisor runs
on a daemon thread (workers are still real subprocesses), so chaos
tests can kill workers, await respawns, and read supervisor counters
directly.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
from time import monotonic as _monotonic

from ..obs import WARNING, obs
from ..obs.metrics import MetricsRegistry
from ..parallel import SERVE_WORKER_ENV, deterministic_jitter
from .config import ServeConfig

__all__ = [
    "CONFIG_ENV",
    "SOCKET_FD_ENV",
    "WORKER_BOOT",
    "WORKER_SLOT_ENV",
    "SupervisedServer",
    "Supervisor",
    "supervise",
    "worker_main",
]

#: Worker environment: JSON-encoded ``ServeConfig.to_dict()``.
CONFIG_ENV = "REPRO_SERVE_CONFIG"

#: Worker environment: the inherited listening socket's fd number.
SOCKET_FD_ENV = "REPRO_SERVE_SOCKET_FD"

#: Worker environment: this worker's slot index (0..workers-1).
WORKER_SLOT_ENV = "REPRO_SERVE_WORKER_SLOT"

#: A worker must stay alive this long for its slot's consecutive-crash
#: counter to reset (seconds).
STABLE_AFTER = 2.0

#: The worker boot shim, run via ``python -c``.  It installs a signal
#: latch *before* the (slow) package imports, closing the window where
#: a SIGTERM arriving mid-boot — e.g. a fleet drain right after a
#: respawn — would kill the worker with the default action (exit
#: -SIGTERM) instead of draining it to exit 0.  Latched signals are
#: honored the moment the server is up.
WORKER_BOOT = (
    "import signal\n"
    "early = []\n"
    "for s in (signal.SIGTERM, signal.SIGINT):\n"
    "    signal.signal(s, lambda *a: early.append(a[0]))\n"
    "from repro.serve import supervisor\n"
    "raise SystemExit(supervisor.worker_main(early))\n"
)


def worker_main(early_signals=()) -> int:  # pragma: no cover - worker subprocess
    """Entry point inside one spawned worker process.

    Rebuilds the config from the environment, wraps the inherited
    listening fd, and runs the ordinary single-process serve loop
    (SIGTERM → drain → exit 0) on it.  ``early_signals`` is the boot
    shim's latch: signals that arrived before the event loop existed,
    replayed as an immediate drain once the server starts.
    """
    from .lifecycle import serve_forever

    config = ServeConfig.from_dict(json.loads(os.environ[CONFIG_ENV]))
    fd = int(os.environ[SOCKET_FD_ENV])
    sock = socket.socket(fileno=fd)
    slot = os.environ.get(WORKER_SLOT_ENV, "?")

    def announce(line: str) -> None:
        print(f"[worker {slot}] {line}", flush=True)

    return serve_forever(
        config, announce=announce, sock=sock, early_signals=early_signals
    )


class Supervisor:
    """The prefork parent: owns the socket, the workers, the respawns.

    Drive it with :meth:`run` (blocking, installs signal handlers —
    the CLI path) or ``start()``/``monitor()``/``drain()`` separately
    (the :class:`SupervisedServer` harness path).
    """

    def __init__(self, config: ServeConfig, announce=None) -> None:
        if config.workers < 1:
            raise ValueError("workers must be >= 1")
        self.config = config
        self.announce = announce or (lambda line: None)
        self.metrics = MetricsRegistry(enabled=True)
        self.restarts = 0
        self.abandoned = 0
        self._sock: socket.socket | None = None
        self._procs: list[subprocess.Popen | None] = [None] * config.workers
        self._crashes = [0] * config.workers
        self._spawned_at = [0.0] * config.workers
        self._draining = threading.Event()

    # -- socket ---------------------------------------------------------------

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0``); valid after start()."""
        if self._sock is not None:
            return self._sock.getsockname()[1]
        return self.config.port

    def _bind(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.config.host, self.config.port))
        sock.listen(128)
        self._sock = sock

    # -- workers --------------------------------------------------------------

    def _spawn(self, slot: int) -> None:
        assert self._sock is not None
        env = dict(os.environ)
        env[CONFIG_ENV] = json.dumps(self.config.to_dict(), sort_keys=True)
        env[SOCKET_FD_ENV] = str(self._sock.fileno())
        env[WORKER_SLOT_ENV] = str(slot)
        env[SERVE_WORKER_ENV] = "1"
        self._procs[slot] = subprocess.Popen(
            [sys.executable, "-c", WORKER_BOOT],
            pass_fds=(self._sock.fileno(),),
            env=env,
        )
        self._spawned_at[slot] = _monotonic()

    def kill_worker(self, slot: int, sig: int = signal.SIGKILL) -> int:
        """Send ``sig`` to one worker (chaos/testing); returns its pid."""
        proc = self._procs[slot]
        assert proc is not None, f"slot {slot} has no worker"
        proc.send_signal(sig)
        return proc.pid

    def worker_pids(self) -> list[int | None]:
        return [proc.pid if proc is not None else None for proc in self._procs]

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Bind the socket and spawn the full worker fleet."""
        self._bind()
        for slot in range(self.config.workers):
            self._spawn(slot)
        self.announce(
            f"supervisor: serving on http://{self.host}:{self.port} "
            f"with {self.config.workers} worker(s)"
        )

    def begin_drain(self) -> None:
        """Ask the monitor loop to stop and drain (idempotent)."""
        self._draining.set()

    def monitor(self, poll: float = 0.05) -> None:
        """Respawn crashed workers until a drain begins.

        The respawn delay is ``restart_backoff * 2^n *
        deterministic_jitter(slot-key, n)`` — exponential per
        consecutive crash, jittered so multiple crashed slots never
        respawn in lockstep, deterministic so tests can budget it.
        """
        while not self._draining.wait(poll):
            for slot, proc in enumerate(self._procs):
                if proc is None or proc.poll() is None:
                    if (
                        proc is not None
                        and self._crashes[slot]
                        and _monotonic() - self._spawned_at[slot] > STABLE_AFTER
                    ):
                        self._crashes[slot] = 0
                    continue
                self._reap_crash(slot, proc)
                if self._draining.is_set():
                    return

    def _reap_crash(self, slot: int, proc: subprocess.Popen) -> None:
        status = proc.returncode
        n = self._crashes[slot]
        if n >= self.config.restart_limit:
            self._procs[slot] = None
            self.abandoned += 1
            self.announce(
                f"supervisor: worker {slot} crash-looped "
                f"{n} time(s); abandoning the slot"
            )
            obs().emit(
                "serve.worker.abandoned",
                f"worker slot {slot} exceeded restart_limit="
                f"{self.config.restart_limit}",
                level=WARNING,
                slot=slot,
            )
            if all(p is None for p in self._procs):
                self.announce("supervisor: no workers left; draining")
                self.begin_drain()
            return
        delay = (
            self.config.restart_backoff
            * (2**n)
            * deterministic_jitter(f"serve-worker-{slot}", n)
        )
        self.announce(
            f"supervisor: worker {slot} (pid {proc.pid}) exited "
            f"status {status}; respawn #{n + 1} in {delay:.3f}s"
        )
        obs().emit(
            "serve.worker.restart",
            f"worker {slot} exited status {status}; respawning",
            level=WARNING,
            slot=slot,
            status=status,
            delay=delay,
        )
        # An interruptible sleep: a drain arriving mid-backoff wins.
        if self._draining.wait(delay):
            return
        self._crashes[slot] = n + 1
        self.restarts += 1
        self.metrics.counter("serve.workers.restarts").inc()
        obs().metrics.counter("serve.workers.restarts").inc()
        self._spawn(slot)

    def drain(self) -> int:
        """SIGTERM every worker, reap them, close the socket.

        Returns 0 iff every remaining worker exited 0 (the in-worker
        drain finished inside its grace); stragglers past
        ``drain_grace`` plus margin are SIGKILLed and count as
        failures.
        """
        self.announce("supervisor: draining workers")
        live = [proc for proc in self._procs if proc is not None]
        for proc in live:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        deadline = _monotonic() + self.config.drain_grace + 5.0
        exit_code = 0
        for proc in live:
            budget = max(0.0, deadline - _monotonic())
            try:
                status = proc.wait(timeout=budget)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
                status = proc.returncode
            # Status -SIGTERM means the signal's *default* action fired:
            # the worker died before its very first instruction (the
            # boot shim's latch takes over within milliseconds), so it
            # held no connection, no claim, no in-flight work — that is
            # a clean drain of an empty worker.  Anything else nonzero
            # (including -SIGKILL for a wedged straggler) is a failure.
            if status not in (0, -signal.SIGTERM):
                exit_code = 1
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self.announce(f"supervisor: drained; exiting {exit_code}")
        return exit_code

    def run(self, install_signals: bool = True) -> int:
        """Blocking entry point: start, monitor, drain on signal."""
        self.start()
        if install_signals:
            try:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    signal.signal(signum, lambda *_: self.begin_drain())
            except ValueError:
                pass  # lint: allow-swallow — not the main thread; the
                # harness path drives begin_drain() directly instead.
        try:
            self.monitor()
        finally:
            code = self.drain()
        return code


def supervise(config: ServeConfig, announce=None) -> int:
    """Run the prefork supervisor until a signal drains it."""
    return Supervisor(config, announce=announce).run()


class SupervisedServer:
    """A prefork fleet with the supervisor on a daemon thread.

    The multi-process sibling of
    :class:`~repro.serve.lifecycle.BackgroundServer`: workers are real
    subprocesses accepting on a shared socket, but the supervisor's
    monitor loop runs in this process, so tests and the bench can
    ``kill_worker()``, ``wait_respawn()``, and read
    ``supervisor.restarts`` without scraping logs.

    Usage::

        with SupervisedServer(config) as fleet:
            client = ServeClient(fleet.host, fleet.port)
            ...
            fleet.kill_worker(0)
            fleet.wait_respawn(1)
    """

    def __init__(self, config: ServeConfig, announce=None) -> None:
        self.supervisor = Supervisor(config, announce=announce)
        self._thread: threading.Thread | None = None
        self.exit_code: int | None = None

    def start(self) -> "SupervisedServer":
        self.supervisor.start()

        def body() -> None:
            self.supervisor.monitor()
            self.exit_code = self.supervisor.drain()

        self._thread = threading.Thread(
            target=body, name="repro-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 60.0) -> int | None:
        """Drain the fleet; returns the supervisor exit code."""
        self.supervisor.begin_drain()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        return self.exit_code

    def kill_worker(self, slot: int = 0, sig: int = signal.SIGKILL) -> int:
        return self.supervisor.kill_worker(slot, sig)

    def wait_respawn(self, count: int = 1, timeout: float = 30.0) -> None:
        """Block until the supervisor has performed ``count`` respawns."""
        deadline = _monotonic() + timeout
        while self.supervisor.restarts < count:
            if _monotonic() >= deadline:
                raise TimeoutError(
                    f"only {self.supervisor.restarts}/{count} respawn(s) "
                    f"within {timeout}s"
                )
            threading.Event().wait(0.02)

    def __enter__(self) -> "SupervisedServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def host(self) -> str:
        return self.supervisor.host

    @property
    def port(self) -> int:
        return self.supervisor.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"


def main() -> int:
    """``python -m repro.serve.supervisor``: the worker entry.

    Only meaningful with the worker environment set; humans start
    fleets with ``python -m repro serve --workers N``.
    """
    if CONFIG_ENV in os.environ and SOCKET_FD_ENV in os.environ:
        return worker_main()
    print(
        "this module is the prefork worker entry point; "
        "start a fleet with: python -m repro serve --workers N",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    raise SystemExit(main())
