"""A minimal HTTP/1.1 layer for the serving subsystem.

The serving layer follows the repository's zero-dependency rule the
same way ``repro.net`` does for packets: rather than pulling in a web
framework, this module hand-rolls the small slice of HTTP/1.1 the API
actually needs — request-line + header parsing, ``Content-Length``
bodies, keep-alive connection reuse, and canonical JSON responses.

Two properties matter to the rest of the package:

* **Bounded parsing.**  Header blocks and bodies are size-capped, so a
  misbehaving client can cost at most ``MAX_HEADER_BYTES +
  MAX_BODY_BYTES`` of memory per connection, never an unbounded read.
* **Canonical bodies.**  :func:`canonical_json` is the single encoder
  for every payload the server emits, so "the same simulation result"
  is always the same bytes — the property the coalescing and
  determinism guarantees are stated in terms of.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from email.utils import formatdate

# Wall-clock reads are legitimate here (HTTP Date headers are defined
# as wall time); ``repro/serve`` is on the lint_clocks allowlist.
from time import time as _wall_time

__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "BadRequestError",
    "HttpRequest",
    "HttpResponse",
    "PayloadTooLargeError",
    "canonical_json",
    "json_response",
    "read_request",
    "render_response",
]

#: Upper bound on the request line + header block, in bytes.
MAX_HEADER_BYTES = 16 * 1024

#: Upper bound on a request body, in bytes (job specs are tiny; a
#: sweep of a few thousand specs still fits comfortably).
MAX_BODY_BYTES = 1024 * 1024

#: Reason phrases for the status codes the API actually uses.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class BadRequestError(Exception):
    """The bytes on the wire are not a parseable HTTP/1.1 request."""


class PayloadTooLargeError(BadRequestError):
    """Headers or body exceeded the configured size caps."""


@dataclass
class HttpRequest:
    """One parsed request: method, split path, headers, raw body."""

    method: str
    target: str
    headers: dict[str, str]
    body: bytes

    @property
    def path(self) -> str:
        """The target without its query string."""
        return self.target.split("?", 1)[0]

    @property
    def query(self) -> dict[str, str]:
        """Query parameters as a plain dict (last value wins)."""
        if "?" not in self.target:
            return {}
        params: dict[str, str] = {}
        for pair in self.target.split("?", 1)[1].split("&"):
            if not pair:
                continue
            key, _, value = pair.partition("=")
            params[key] = value
        return params

    @property
    def keep_alive(self) -> bool:
        """Whether the connection survives this exchange (HTTP/1.1
        default: yes, unless the client said ``Connection: close``)."""
        return self.headers.get("connection", "").lower() != "close"

    def json(self):
        """The body decoded as JSON (:class:`BadRequestError` on junk)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise BadRequestError(f"request body is not valid JSON: {error}")


@dataclass
class HttpResponse:
    """One response about to be serialized onto the wire."""

    status: int
    body: bytes
    headers: dict[str, str] = field(default_factory=dict)
    content_type: str = "application/json"


def canonical_json(payload) -> bytes:
    """The one JSON encoding every response body goes through.

    Sorted keys and fixed separators make equal payloads equal bytes —
    across requests, across server restarts, and across the direct
    ``ParallelRunner`` path (the byte-identity acceptance test).
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def json_response(
    status: int, payload, headers: dict[str, str] | None = None
) -> HttpResponse:
    """Build a canonical-JSON response."""
    return HttpResponse(
        status=status, body=canonical_json(payload), headers=dict(headers or {})
    )


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request off the stream; None on clean EOF.

    Raises :class:`BadRequestError` (or its
    :class:`PayloadTooLargeError` subclass) on malformed or oversized
    input — the connection handler turns those into 400/413 and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between requests (keep-alive close)
        raise BadRequestError("connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise PayloadTooLargeError(
            f"header block exceeds {MAX_HEADER_BYTES} bytes"
        )
    if len(head) > MAX_HEADER_BYTES:
        raise PayloadTooLargeError(
            f"header block exceeds {MAX_HEADER_BYTES} bytes"
        )
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        raise BadRequestError("malformed request line")
    if not version.startswith("HTTP/1."):
        raise BadRequestError(f"unsupported protocol version {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequestError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise BadRequestError(f"bad Content-Length {length_text!r}")
    if length < 0:
        raise BadRequestError("negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise PayloadTooLargeError(f"body exceeds {MAX_BODY_BYTES} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise BadRequestError("connection closed mid-body")
    return HttpRequest(method=method.upper(), target=target, headers=headers, body=body)


def render_response(response: HttpResponse, keep_alive: bool) -> bytes:
    """Serialize a response, headers first, body verbatim."""
    reason = REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    headers = {
        "content-type": response.content_type,
        "content-length": str(len(response.body)),
        "date": formatdate(_wall_time(), usegmt=True),
        "connection": "keep-alive" if keep_alive else "close",
    }
    headers.update({k.lower(): v for k, v in response.headers.items()})
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + response.body
