"""Single-flight request coalescing keyed on content hashes.

N concurrent requests for the same content-addressed key fan in to
one computation: the first arrival (the *leader*) registers a future
and runs the work; everyone else (the *followers*) awaits the same
future and receives the **same bytes** object.  Combined with the
PR-1 result cache underneath, a thundering herd of identical
simulation requests costs exactly one simulation, once, ever.

The registry is safe without locks because claims happen on the
server's single event-loop thread: ``claim`` runs synchronously
between awaits, so a key can never be claimed twice in one tick.
Entries are removed when their future settles — a later request for
the same key after completion starts a fresh flight (which the cache
then answers without recomputation).
"""

from __future__ import annotations

import asyncio

__all__ = ["CoalesceCancelledError", "Coalescer"]


class CoalesceCancelledError(RuntimeError):
    """The in-flight computation a follower was awaiting got cancelled.

    Raised *instead of* a bare ``asyncio.CancelledError`` so a
    follower's handler keeps running and can answer its client with a
    retryable 503 + Retry-After — a cancelled leader must never
    silently drop the followers' connections.  The leader settles the
    shared future with this error on its way out (see
    ``SimulationServer._lead_async``); ``_await_body`` also maps a
    directly-cancelled future to it for the same reason.
    """


class Coalescer:
    """Single-flight registry of in-flight computations by key."""

    def __init__(self, metrics=None) -> None:
        self.metrics = metrics
        self._inflight: dict[str, asyncio.Future] = {}
        self.leaders = 0
        self.followers = 0

    def claim(self, key: str) -> tuple[asyncio.Future, bool]:
        """Return ``(future, is_leader)`` for one request.

        Must be called from the event-loop thread.  The leader is
        responsible for settling the future (result or exception);
        settling automatically retires the key.
        """
        future = self._inflight.get(key)
        if future is not None:
            self.followers += 1
            if self.metrics is not None:
                self.metrics.counter("serve.coalesce.followers").inc()
            return future, False
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        future.add_done_callback(lambda fut, key=key: self._retire(key, fut))
        self.leaders += 1
        if self.metrics is not None:
            self.metrics.counter("serve.coalesce.leaders").inc()
        return future, True

    def _retire(self, key: str, future: asyncio.Future) -> None:
        self._inflight.pop(key, None)
        if not future.cancelled():
            # Mark a failure as retrieved even if every awaiter gave
            # up first (deadline), so asyncio never logs a spurious
            # "exception was never retrieved".
            future.exception()

    def peek(self, key: str) -> asyncio.Future | None:
        """The in-flight future for ``key``, if any (no claim)."""
        return self._inflight.get(key)

    @property
    def inflight(self) -> int:
        """Number of keys currently being computed."""
        return len(self._inflight)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Coalescer(inflight={self.inflight}, leaders={self.leaders}, "
            f"followers={self.followers})"
        )
