"""The asyncio simulation server: admit → coalesce → cache → pool.

A :class:`SimulationServer` turns the existing job/cache/obs stack
into a long-running JSON-over-HTTP service.  The request path is the
serving skeleton later sharding / multi-backend work builds on:

1. **Admit** — every compute request passes the bounded
   :class:`~repro.serve.queue.AdmissionQueue`; over the limit it is
   shed with ``429`` and a jittered, job-keyed ``Retry-After``.
2. **Coalesce** — requests are single-flighted on the job's content
   hash (:class:`~repro.serve.coalesce.Coalescer`): N identical
   concurrent requests cost one computation, and all N receive the
   same bytes.
3. **Cache** — cold results are written through the PR-1
   :class:`~repro.parallel.ResultCache`, so a restarted server serves
   warm immediately.
4. **Pool** — the actual simulation runs on a
   :class:`~repro.parallel.ParallelRunner` (process pool when
   ``jobs > 1``) inside the default thread executor, keeping the
   event loop free; the per-request deadline doubles as the runner's
   PR-2 watchdog timeout, so a hung job becomes ``504``, never a
   wedged loop.

Endpoints::

    POST /v1/simulate        body = SimulationJob spec dict
    POST /v1/sweep           body = {"jobs": [spec, ...]}
    GET  /v1/figures/{figNN} reduced-scale figure reproduction
    GET  /healthz            liveness (always 200 while the loop runs)
    GET  /readyz             readiness (503 once draining)
    GET  /metrics            serve + obs metric snapshots as JSON

Response bodies are canonical JSON (sorted keys, fixed separators):
the bytes for a given job are a pure function of the job spec, equal
across requests, restarts, and the direct ``ParallelRunner`` path —
the determinism acceptance test is stated in exactly those terms.
"""

from __future__ import annotations

import asyncio
from contextlib import suppress
from time import monotonic as _monotonic

from ..experiments.registry import figure_ids, run_figure
from ..obs import WARNING, obs
from ..obs.metrics import MetricsRegistry
from ..parallel import (
    JobResult,
    JobTimeoutError,
    ParallelRunner,
    ResultCache,
    SimulationJob,
    resolve_checkpoint,
)
from ..parallel.job import MODEL_VERSION
from .coalesce import Coalescer
from .config import ServeConfig
from .http import (
    BadRequestError,
    HttpRequest,
    HttpResponse,
    PayloadTooLargeError,
    canonical_json,
    json_response,
    read_request,
    render_response,
)
from .queue import AdmissionQueue, QueueFullError

__all__ = [
    "MAX_SWEEP_JOBS",
    "SimulationServer",
    "figure_payload",
    "simulation_payload",
]

#: Upper bound on specs per sweep request (a guard, not a throughput
#: limit — the admission queue is what bounds concurrent work).
MAX_SWEEP_JOBS = 4096


def simulation_payload(job: SimulationJob, result: JobResult) -> bytes:
    """The canonical response bytes for one completed job.

    A pure function of ``(job, result)`` — the unit the byte-identity
    and coalescing guarantees are stated in.
    """
    return canonical_json(
        {
            "key": job.cache_key(),
            "model_version": MODEL_VERSION,
            "job": job.to_dict(),
            "result": result.to_dict(),
        }
    )


def figure_payload(result) -> bytes:
    """Canonical response bytes for one FigureResult."""
    return canonical_json(
        {
            "figure_id": result.figure_id,
            "title": result.title,
            "series": {
                name: [[x, y] for x, y in points]
                for name, points in result.series.items()
            },
            "metrics": result.metrics,
            "notes": list(result.notes),
        }
    )


class SimulationServer:
    """The serving layer over the job/cache/obs stack.

    Parameters
    ----------
    config:
        A :class:`~repro.serve.config.ServeConfig`.
    job_runner:
        Optional override: a callable ``(list[SimulationJob]) ->
        list[JobResult]`` run on the default executor.  Tests inject
        slow or counting runners here; production uses the
        :class:`~repro.parallel.ParallelRunner` + cache default.
    figure_runner:
        Optional override for figure requests: ``(figure_id) ->
        FigureResult``.  Defaults to the registry's reduced-scale
        (``fast=True``) driver.
    """

    def __init__(self, config: ServeConfig, job_runner=None, figure_runner=None):
        self.config = config
        #: The server's own always-on registry (``/metrics``).  It is
        #: deliberately separate from the global obs runtime, which
        #: stays inert/off unless the operator opted in.
        self.metrics = MetricsRegistry(enabled=True)
        self.queue = AdmissionQueue(
            config.queue_depth, config.retry_after_base, metrics=self.metrics
        )
        self.coalescer = Coalescer(metrics=self.metrics)
        self.cache = (
            ResultCache(config.cache_root) if config.cache_root is not None else None
        )
        self._job_runner = job_runner or self._run_specs
        self._figure_runner = figure_runner or self._run_figure
        self.draining = False
        self._asgi_server: asyncio.AbstractServer | None = None
        self._stopped: asyncio.Event | None = None
        self._tasks: set[asyncio.Task] = set()
        self._active_requests = 0
        #: Memoized figure payload bytes (figures are deterministic,
        #: so a computed figure never needs recomputing).
        self._figures: dict[str, bytes] = {}

    # -- production compute defaults -----------------------------------------

    def _run_specs(self, specs: list[SimulationJob]) -> list[JobResult]:
        """Default job runner: fresh ParallelRunner, shared cache.

        A new runner per batch keeps per-batch stats/reports race-free
        when several batches compute concurrently on executor threads;
        the cache and pool settings come from the config.  The request
        deadline doubles as the runner's per-job watchdog timeout.
        """
        journal = (
            resolve_checkpoint(True, specs) if self.config.checkpoint else None
        )
        runner = ParallelRunner(
            jobs=self.config.jobs,
            cache=self.cache,
            timeout=self.config.deadline,
            checkpoint=journal,
        )
        try:
            results = runner.run(specs)
        except BaseException:
            if journal is not None:
                journal.close()
            raise
        if journal is not None:
            journal.complete()
        stats = runner.stats
        self.metrics.counter("serve.jobs.executed").inc(stats.executed)
        self.metrics.counter("serve.jobs.cache_hits").inc(stats.cache_hits)
        return results

    def _run_figure(self, figure_id: str):
        return run_figure(
            figure_id,
            fast=True,
            jobs=self.config.jobs,
            cache=self.cache,
            engine=self.config.engine,
        )

    # -- lifecycle ------------------------------------------------------------

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the OS's choice)."""
        if self._asgi_server is not None and self._asgi_server.sockets:
            return self._asgi_server.sockets[0].getsockname()[1]
        return self.config.port

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        self._asgi_server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )

    def begin_drain(self) -> None:
        """Start a graceful drain (idempotent; the SIGTERM handler).

        Flips ``/readyz`` to 503, stops admitting compute work,
        finishes in-flight requests (bounded by ``drain_grace``), then
        releases :meth:`wait_stopped`.
        """
        if self.draining:
            return
        self.draining = True
        self.metrics.gauge("serve.draining").set(1)
        obs().emit(
            "serve.drain",
            f"drain started: {self._active_requests} request(s) in flight",
            inflight=self._active_requests,
        )
        task = asyncio.get_running_loop().create_task(self._drain())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _drain(self) -> None:
        deadline = _monotonic() + self.config.drain_grace
        while _monotonic() < deadline:
            # In-flight = requests mid-handler plus unfinished compute
            # tasks (this drain task itself does not count).
            busy = self._active_requests > 0 or len(self._tasks) > 1
            if not busy:
                break
            await asyncio.sleep(0.02)
        assert self._stopped is not None
        self._stopped.set()

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, "server not started"
        await self._stopped.wait()

    async def close(self) -> None:
        if self._asgi_server is not None:
            self._asgi_server.close()
            with suppress(Exception):
                await self._asgi_server.wait_closed()

    # -- connection handling ---------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        self.metrics.counter("serve.connections").inc()
        try:
            while True:
                try:
                    request = await read_request(reader)
                except PayloadTooLargeError as error:
                    await self._write(
                        writer, json_response(413, {"error": str(error)}), False
                    )
                    break
                except BadRequestError as error:
                    await self._write(
                        writer, json_response(400, {"error": str(error)}), False
                    )
                    break
                if request is None:
                    break
                self._active_requests += 1
                try:
                    t0 = _monotonic()
                    response = await self._route(request)
                    self.metrics.counter("serve.requests").inc()
                    self.metrics.counter(
                        f"serve.responses.{response.status}"
                    ).inc()
                    self.metrics.histogram("serve.request_seconds").observe(
                        _monotonic() - t0
                    )
                    keep = request.keep_alive
                    await self._write(writer, response, keep)
                finally:
                    self._active_requests -= 1
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            with suppress(Exception):
                await writer.wait_closed()

    async def _write(self, writer, response: HttpResponse, keep: bool) -> None:
        writer.write(render_response(response, keep))
        await writer.drain()

    # -- routing ---------------------------------------------------------------

    async def _route(self, request: HttpRequest) -> HttpResponse:
        o = obs()
        with o.span("serve.request", method=request.method, path=request.path) as span:
            try:
                response = await self._dispatch(request)
            except BadRequestError as error:
                response = json_response(400, {"error": str(error)})
            except Exception as error:
                # The one deliberately broad handler on the serving
                # path: any unplanned failure becomes a 500 response
                # (with the event logged) instead of a dropped
                # connection.
                self.metrics.counter("serve.errors").inc()
                o.emit(
                    "serve.error",
                    f"unhandled error serving {request.method} "
                    f"{request.path}: {error!r}",
                    level=WARNING,
                    error=repr(error),
                )
                response = json_response(
                    500, {"error": f"{type(error).__name__}: {error}"}
                )
            span.set(status=response.status)
        return response

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        path, method = request.path, request.method
        if path == "/healthz":
            if method != "GET":
                return json_response(405, {"error": "use GET"})
            return json_response(200, {"status": "ok"})
        if path == "/readyz":
            if method != "GET":
                return json_response(405, {"error": "use GET"})
            if self.draining:
                return json_response(503, {"ready": False, "draining": True})
            return json_response(200, {"ready": True, "draining": False})
        if path == "/metrics":
            if method != "GET":
                return json_response(405, {"error": "use GET"})
            return self._metrics_response()
        if path == "/v1/simulate":
            if method != "POST":
                return json_response(405, {"error": "use POST"})
            return await self._simulate(request)
        if path == "/v1/sweep":
            if method != "POST":
                return json_response(405, {"error": "use POST"})
            return await self._sweep(request)
        if path.startswith("/v1/figures/"):
            if method != "GET":
                return json_response(405, {"error": "use GET"})
            return await self._figure(path.removeprefix("/v1/figures/"))
        return json_response(404, {"error": f"no route for {path}"})

    def _metrics_response(self) -> HttpResponse:
        o = obs()
        snapshot = {
            "serve": self.metrics.snapshot(),
            "obs": o.metrics.snapshot() if o.enabled else {},
        }
        return json_response(200, snapshot)

    # -- compute endpoints ------------------------------------------------------

    def _parse_spec(self, data) -> SimulationJob:
        if not isinstance(data, dict):
            raise BadRequestError("job spec must be a JSON object")
        try:
            return SimulationJob.from_dict(data)
        except (ValueError, TypeError) as error:
            raise BadRequestError(f"invalid job spec: {error}")

    async def _simulate(self, request: HttpRequest) -> HttpResponse:
        spec = self._parse_spec(request.json())
        if self.draining:
            return self._draining_response()
        key = spec.cache_key()
        future, leader = self.coalescer.claim(key)
        if leader:
            self._lead(
                [future],
                key,
                lambda results, spec=spec: [simulation_payload(spec, results[0])],
                [spec],
            )
        return await self._await_body(future, key)

    async def _sweep(self, request: HttpRequest) -> HttpResponse:
        body = request.json()
        if not isinstance(body, dict) or not isinstance(body.get("jobs"), list):
            raise BadRequestError('sweep body must be {"jobs": [spec, ...]}')
        raw_specs = body["jobs"]
        if not raw_specs:
            raise BadRequestError("sweep needs at least one job spec")
        if len(raw_specs) > MAX_SWEEP_JOBS:
            raise BadRequestError(
                f"sweep of {len(raw_specs)} jobs exceeds the "
                f"{MAX_SWEEP_JOBS}-job limit"
            )
        specs = [self._parse_spec(data) for data in raw_specs]
        if self.draining:
            return self._draining_response()

        # Claim every job; compute only the ones this request leads.
        # Jobs already in flight (a concurrent /v1/simulate, or a
        # duplicate spec within this sweep) coalesce for free.
        futures: list[asyncio.Future] = []
        led_futures: list[asyncio.Future] = []
        led_specs: list[SimulationJob] = []
        for spec in specs:
            future, leader = self.coalescer.claim(spec.cache_key())
            futures.append(future)
            if leader:
                led_futures.append(future)
                led_specs.append(spec)
        if led_specs:
            batch_key = led_specs[0].cache_key()
            self._lead(
                led_futures,
                batch_key,
                lambda results, led=tuple(led_specs): [
                    simulation_payload(spec, result)
                    for spec, result in zip(led, results)
                ],
                led_specs,
            )
        try:
            pieces = await asyncio.wait_for(
                asyncio.shield(asyncio.gather(*futures)), self.config.deadline
            )
        except QueueFullError as error:
            return self._shed_response(error)
        except (asyncio.TimeoutError, JobTimeoutError):
            return self._timeout_response()
        # Splice the canonical per-job payloads into one canonical
        # body without re-encoding them (bytes equality with the
        # /v1/simulate payloads is part of the contract).
        joined = b",".join(piece.rstrip(b"\n") for piece in pieces)
        return HttpResponse(200, b'{"results":[' + joined + b"]}\n")

    async def _figure(self, figure_id: str) -> HttpResponse:
        if figure_id not in figure_ids():
            return json_response(
                404,
                {"error": f"unknown figure {figure_id!r}", "known": figure_ids()},
            )
        cached = self._figures.get(figure_id)
        if cached is not None:
            self.metrics.counter("serve.figures.memo_hits").inc()
            return HttpResponse(200, cached)
        if self.draining:
            return self._draining_response()
        key = f"figure:{figure_id}"
        future, leader = self.coalescer.claim(key)
        if leader:
            loop = asyncio.get_running_loop()

            async def produce() -> list[bytes]:
                result = await loop.run_in_executor(
                    None, self._figure_runner, figure_id
                )
                body = figure_payload(result)
                self._figures[figure_id] = body
                return [body]

            self._lead_async([future], key, produce)
        return await self._await_body(future, key)

    # -- the admit -> compute -> settle machinery -------------------------------

    def _lead(self, futures, admission_key: str, to_payloads, specs) -> None:
        """Leader path for job batches: admit, compute on the
        executor, settle every led future with its payload bytes."""
        loop = asyncio.get_running_loop()

        async def produce() -> list[bytes]:
            results = await loop.run_in_executor(
                None, self._job_runner, list(specs)
            )
            return to_payloads(results)

        self._lead_async(futures, admission_key, produce)

    def _lead_async(self, futures, admission_key: str, produce) -> None:
        """Admit then run ``produce`` as a tracked task; settle
        ``futures`` (one payload each, in order) when it finishes.

        Admission failure settles every future with the
        :class:`QueueFullError`, so a coalesced herd that arrives
        while the queue is full is shed as one — with one shared,
        deterministic ``Retry-After``.
        """
        try:
            admission = self.queue.admit(admission_key)
        except QueueFullError as error:
            for future in futures:
                if not future.done():
                    future.set_exception(error)
            return

        async def run() -> None:
            try:
                with admission:
                    payloads = await produce()
            except BaseException as error:  # settle followers, always
                for future in futures:
                    if not future.done():
                        future.set_exception(error)
            else:
                for future, payload in zip(futures, payloads):
                    if not future.done():
                        future.set_result(payload)

        task = asyncio.get_running_loop().create_task(run())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _await_body(self, future: asyncio.Future, key: str) -> HttpResponse:
        """Wait (under the request deadline) for the shared bytes."""
        try:
            body = await asyncio.wait_for(
                asyncio.shield(future), self.config.deadline
            )
        except QueueFullError as error:
            return self._shed_response(error)
        except (asyncio.TimeoutError, JobTimeoutError):
            return self._timeout_response(key)
        return HttpResponse(200, body)

    def _draining_response(self) -> HttpResponse:
        return json_response(
            503, {"error": "server is draining"}, headers={"connection": "close"}
        )

    def _shed_response(self, error: QueueFullError) -> HttpResponse:
        obs().emit(
            "serve.shed",
            f"queue full ({error.depth}/{error.limit}); "
            f"shed with Retry-After {error.retry_after:.3f}s",
            depth=error.depth,
            limit=error.limit,
        )
        return json_response(
            429,
            {
                "error": "admission queue full",
                "retry_after": round(error.retry_after, 3),
            },
            headers={"retry-after": f"{error.retry_after:.3f}"},
        )

    def _timeout_response(self, key: str = "") -> HttpResponse:
        self.metrics.counter("serve.timeouts").inc()
        return json_response(
            504,
            {
                "error": "deadline exceeded",
                "deadline": self.config.deadline,
                "key": key,
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "draining" if self.draining else "serving"
        return (
            f"SimulationServer({state}, {self.host}:{self.port}, "
            f"queue={self.queue!r}, coalescer={self.coalescer!r})"
        )
