"""The asyncio simulation server: admit → coalesce → cache → pool.

A :class:`SimulationServer` turns the existing job/cache/obs stack
into a long-running JSON-over-HTTP service.  The request path is the
serving skeleton later sharding / multi-backend work builds on:

1. **Admit** — every compute request passes the bounded
   :class:`~repro.serve.queue.AdmissionQueue`; over the limit it is
   shed with ``429`` and a jittered, job-keyed ``Retry-After``.
2. **Coalesce** — requests are single-flighted on the job's content
   hash (:class:`~repro.serve.coalesce.Coalescer`): N identical
   concurrent requests cost one computation, and all N receive the
   same bytes.
3. **Cache** — cold results are written through the PR-1
   :class:`~repro.parallel.ResultCache`, so a restarted server serves
   warm immediately.
4. **Pool** — the actual simulation runs on a
   :class:`~repro.parallel.ParallelRunner` (process pool when
   ``jobs > 1``) inside the default thread executor, keeping the
   event loop free; the per-request deadline doubles as the runner's
   PR-2 watchdog timeout, so a hung job becomes ``504``, never a
   wedged loop.

Endpoints::

    POST /v1/simulate        body = SimulationJob spec dict
    POST /v1/sweep           body = {"jobs": [spec, ...]}
    POST /v1/predict         body = prediction query (n_nodes, tp, tc,
                             tr [, tolerance, seed, horizon, ...]);
                             surrogate answers bypass admission, the
                             rest fall back to the simulate path
    GET  /v1/figures/{figNN} reduced-scale figure reproduction
    GET  /healthz            liveness (always 200 while the loop runs)
    GET  /readyz             readiness (503 once draining)
    GET  /metrics            serve + obs metric snapshots as JSON

Response bodies are canonical JSON (sorted keys, fixed separators):
the bytes for a given job are a pure function of the job spec, equal
across requests, restarts, and the direct ``ParallelRunner`` path —
the determinism acceptance test is stated in exactly those terms.
"""

from __future__ import annotations

import asyncio
import os
from contextlib import suppress
from pathlib import Path
from time import monotonic as _monotonic
from time import sleep as _sleep

from ..experiments.registry import figure_ids, run_figure
from ..obs import WARNING, obs
from ..obs.metrics import MetricsRegistry
from ..parallel import (
    ClaimRegistry,
    JobResult,
    JobTimeoutError,
    ParallelRunner,
    ResultCache,
    SimulationJob,
    resolve_checkpoint,
)
from ..parallel.job import MODEL_VERSION
from .coalesce import CoalesceCancelledError, Coalescer
from .config import ServeConfig
from .http import (
    BadRequestError,
    HttpRequest,
    HttpResponse,
    PayloadTooLargeError,
    canonical_json,
    json_response,
    read_request,
    render_response,
)
from .queue import AdmissionQueue, QueueFullError

__all__ = [
    "MAX_SWEEP_JOBS",
    "SimulationServer",
    "figure_payload",
    "simulation_payload",
]

#: Upper bound on specs per sweep request (a guard, not a throughput
#: limit — the admission queue is what bounds concurrent work).
MAX_SWEEP_JOBS = 4096


def simulation_payload(job: SimulationJob, result: JobResult) -> bytes:
    """The canonical response bytes for one completed job.

    A pure function of ``(job, result)`` — the unit the byte-identity
    and coalescing guarantees are stated in.
    """
    return canonical_json(
        {
            "key": job.cache_key(),
            "model_version": MODEL_VERSION,
            "job": job.to_dict(),
            "result": result.to_dict(),
        }
    )


def figure_payload(result) -> bytes:
    """Canonical response bytes for one FigureResult."""
    return canonical_json(
        {
            "figure_id": result.figure_id,
            "title": result.title,
            "series": {
                name: [[x, y] for x, y in points]
                for name, points in result.series.items()
            },
            "metrics": result.metrics,
            "notes": list(result.notes),
        }
    )


class SimulationServer:
    """The serving layer over the job/cache/obs stack.

    Parameters
    ----------
    config:
        A :class:`~repro.serve.config.ServeConfig`.
    job_runner:
        Optional override: a callable ``(list[SimulationJob]) ->
        list[JobResult]`` run on the default executor.  Tests inject
        slow or counting runners here; production uses the
        :class:`~repro.parallel.ParallelRunner` + cache default.
    figure_runner:
        Optional override for figure requests: ``(figure_id) ->
        FigureResult``.  Defaults to the registry's reduced-scale
        (``fast=True``) driver.
    """

    def __init__(self, config: ServeConfig, job_runner=None, figure_runner=None):
        self.config = config
        #: The server's own always-on registry (``/metrics``).  It is
        #: deliberately separate from the global obs runtime, which
        #: stays inert/off unless the operator opted in.
        self.metrics = MetricsRegistry(enabled=True)
        self.queue = AdmissionQueue(
            config.queue_depth, config.retry_after_base, metrics=self.metrics
        )
        self.coalescer = Coalescer(metrics=self.metrics)
        self.cache = (
            ResultCache(config.cache_root) if config.cache_root is not None else None
        )
        #: Cross-process single-flight (prefork mode): claim records
        #: living next to the shared cache.  The in-process Coalescer
        #: above stays the fast path — claims only arbitrate between
        #: the leaders of *different* worker processes.
        self.claims = (
            ClaimRegistry(
                Path(config.cache_root) / "claims",
                ttl=config.claim_ttl,
                metrics=self.metrics,
                prefix="serve.claims",
            )
            if config.claims_enabled
            else None
        )
        #: Shared attempt-slot directory for serving-path fault rules
        #: (``FaultPlan._claim_marker``); None disables the hooks.
        self._fault_state = (
            Path(config.cache_root) / "fault_state"
            if config.faults is not None and config.cache_root is not None
            else None
        )
        self._job_runner = job_runner or self._run_specs
        self._figure_runner = figure_runner or self._run_figure
        self.draining = False
        self._asgi_server: asyncio.AbstractServer | None = None
        self._stopped: asyncio.Event | None = None
        self._tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._active_requests = 0
        #: Memoized figure payload bytes (figures are deterministic,
        #: so a computed figure never needs recomputing).
        self._figures: dict[str, bytes] = {}
        #: Prediction tier, loaded lazily on first use so a missing
        #: or stale table degrades to all-fallback, never a dead
        #: server.  ``_predict_error`` remembers why loading failed.
        self._predict = None
        self._predict_error: str | None = None
        self._predict_loaded = False

    # -- production compute defaults -----------------------------------------

    def _run_specs(self, specs: list[SimulationJob]) -> list[JobResult]:
        """Default job runner: fresh ParallelRunner, shared cache.

        A new runner per batch keeps per-batch stats/reports race-free
        when several batches compute concurrently on executor threads;
        the cache and pool settings come from the config.  The request
        deadline doubles as the runner's per-job watchdog timeout.
        """
        journal = (
            resolve_checkpoint(True, specs) if self.config.checkpoint else None
        )
        runner = ParallelRunner(
            jobs=self.config.jobs,
            cache=self.cache,
            timeout=self.config.deadline,
            checkpoint=journal,
        )
        try:
            results = runner.run(specs)
        except BaseException:
            if journal is not None:
                journal.close()
            raise
        if journal is not None:
            journal.complete()
        stats = runner.stats
        self.metrics.counter("serve.jobs.executed").inc(stats.executed)
        self.metrics.counter("serve.jobs.cache_hits").inc(stats.cache_hits)
        return results

    def _execute_specs(self, specs: list[SimulationJob]) -> list[JobResult]:
        """Executor-thread entry for job batches.

        Applies the serving-path fault hooks, then routes through the
        cross-process claim protocol when enabled, or straight to the
        job runner (the PR-4 single-process path, unchanged).
        """
        if self.claims is None:
            self._inject_serve_faults(specs)
            return self._job_runner(specs)
        return self._execute_claimed(specs)

    def _inject_serve_faults(self, specs) -> None:
        faults = self.config.faults
        if faults is not None and self._fault_state is not None:
            for spec in specs:
                faults.on_serve_job(spec, self._fault_state)

    def _execute_claimed(self, specs: list[SimulationJob]) -> list[JobResult]:
        """Cross-process single-flight execution of one batch.

        Runs synchronously on an executor thread.  Each round splits
        the still-unresolved specs three ways — already published
        (cache hit), claimed by us (we compute), claimed by a live
        peer (we poll) — until every spec has a result:

        * The cache is checked *before* acquiring, so a peer's publish
          resolves a waiter without ever contending for the claim.
        * :meth:`ClaimRegistry.acquire` transparently takes over stale
          claims, so a claimant that died mid-compute delays its
          waiters by at most the claim TTL — never forever.
        * Owned specs heartbeat while computing and are journaled to
          the publish log afterwards: the log is the cross-worker
          exactly-one-execution ledger the chaos suite audits.

        A *live* but wedged claimant is bounded by the request
        deadline (``JobTimeoutError`` → 504), matching the
        single-process hang story.
        """
        faults = self.config.faults
        results: dict[int, JobResult] = {}
        pending = list(enumerate(specs))
        deadline = (
            _monotonic() + self.config.deadline
            if self.config.deadline is not None
            else None
        )
        while pending:
            waiting: list[tuple[int, SimulationJob]] = []
            owned: list[tuple[int, SimulationJob]] = []
            claims = []
            for idx, spec in pending:
                cached = self.cache.get(spec)
                if cached is not None:
                    self.metrics.counter("serve.claims.peer_hits").inc()
                    results[idx] = cached
                    continue
                key = spec.cache_key()
                if faults is not None and faults.wants_claim_orphan(
                    spec, self._fault_state
                ):
                    self.claims.plant_orphan(key)
                claim = self.claims.acquire(key)
                if claim is None:
                    waiting.append((idx, spec))
                else:
                    owned.append((idx, spec))
                    claims.append(claim)
            if owned:
                try:
                    # Crash/hang injection fires *while holding the
                    # claims* — the scenario the takeover path exists
                    # for.  A killed worker leaves them orphaned.
                    self._inject_serve_faults([spec for _, spec in owned])
                    for claim in claims:
                        claim.keep_beating()
                    batch = self._job_runner([spec for _, spec in owned])
                    for (idx, spec), result in zip(owned, batch):
                        results[idx] = result
                        self.claims.record_publish(spec.cache_key())
                finally:
                    for claim in claims:
                        claim.release()
            pending = waiting
            if pending:
                if deadline is not None and _monotonic() >= deadline:
                    raise JobTimeoutError(
                        f"gave up waiting on {len(pending)} job(s) claimed "
                        f"by live peer process(es) after "
                        f"{self.config.deadline}s"
                    )
                _sleep(self.config.claim_poll)
        return [results[idx] for idx in range(len(specs))]

    def _run_figure(self, figure_id: str):
        return run_figure(
            figure_id,
            fast=True,
            jobs=self.config.jobs,
            cache=self.cache,
            engine=self.config.engine,
        )

    # -- lifecycle ------------------------------------------------------------

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the OS's choice)."""
        if self._asgi_server is not None and self._asgi_server.sockets:
            return self._asgi_server.sockets[0].getsockname()[1]
        return self.config.port

    async def start(self, sock=None) -> None:
        """Start listening — on ``config.host:port``, or on an
        already-bound socket (prefork workers inherit the parent's
        listening fd and pass it here)."""
        self._stopped = asyncio.Event()
        if sock is not None:
            self._asgi_server = await asyncio.start_server(
                self._on_connection, sock=sock
            )
        else:
            self._asgi_server = await asyncio.start_server(
                self._on_connection, self.config.host, self.config.port
            )

    def begin_drain(self) -> None:
        """Start a graceful drain (idempotent; the SIGTERM handler).

        Flips ``/readyz`` to 503, stops admitting compute work,
        finishes in-flight requests (bounded by ``drain_grace``), then
        releases :meth:`wait_stopped`.
        """
        if self.draining:
            return
        self.draining = True
        self.metrics.gauge("serve.draining").set(1)
        obs().emit(
            "serve.drain",
            f"drain started: {self._active_requests} request(s) in flight",
            inflight=self._active_requests,
        )
        task = asyncio.get_running_loop().create_task(self._drain())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _drain(self) -> None:
        deadline = _monotonic() + self.config.drain_grace
        while _monotonic() < deadline:
            # In-flight = requests mid-handler plus unfinished compute
            # tasks (this drain task itself does not count).
            busy = self._active_requests > 0 or len(self._tasks) > 1
            if not busy:
                break
            await asyncio.sleep(0.02)
        assert self._stopped is not None
        self._stopped.set()

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, "server not started"
        await self._stopped.wait()

    async def close(self) -> None:
        # Whatever the drain grace could not finish is cancelled *before*
        # the loop dies: cancelling a leader task settles its coalesced
        # followers with CoalesceCancelledError, so their handlers flush
        # a retryable 503 instead of dropping connections on the floor.
        pending = [task for task in self._tasks if not task.done()]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        deadline = _monotonic() + 5.0
        while self._active_requests > 0 and _monotonic() < deadline:
            await asyncio.sleep(0.02)  # let handlers flush their 503s
        if self._asgi_server is not None:
            self._asgi_server.close()
            with suppress(Exception):
                await self._asgi_server.wait_closed()
        # Idle keep-alive connections are still parked in read_request;
        # cancel their handlers *while the loop lives* so each closes
        # its transport cleanly instead of being reaped by the GC.
        lingering = [task for task in self._conn_tasks if not task.done()]
        for task in lingering:
            task.cancel()
        if lingering:
            await asyncio.gather(*lingering, return_exceptions=True)

    # -- connection handling ---------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        self.metrics.counter("serve.connections").inc()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except PayloadTooLargeError as error:
                    await self._write(
                        writer, json_response(413, {"error": str(error)}), False
                    )
                    break
                except BadRequestError as error:
                    await self._write(
                        writer, json_response(400, {"error": str(error)}), False
                    )
                    break
                if request is None:
                    break
                self._active_requests += 1
                try:
                    t0 = _monotonic()
                    response = await self._route(request)
                    self.metrics.counter("serve.requests").inc()
                    self.metrics.counter(
                        f"serve.responses.{response.status}"
                    ).inc()
                    self.metrics.histogram("serve.request_seconds").observe(
                        _monotonic() - t0
                    )
                    keep = request.keep_alive
                    await self._write(writer, response, keep)
                finally:
                    self._active_requests -= 1
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            # RuntimeError covers a handler reaped *after* its loop
            # closed (an idle keep-alive connection at shutdown) —
            # transport.close() would otherwise raise into the GC.
            with suppress(RuntimeError):
                writer.close()
            with suppress(Exception):
                await writer.wait_closed()

    async def _write(self, writer, response: HttpResponse, keep: bool) -> None:
        writer.write(render_response(response, keep))
        await writer.drain()

    # -- routing ---------------------------------------------------------------

    async def _route(self, request: HttpRequest) -> HttpResponse:
        o = obs()
        with o.span("serve.request", method=request.method, path=request.path) as span:
            try:
                response = await self._dispatch(request)
            except BadRequestError as error:
                response = json_response(400, {"error": str(error)})
            except Exception as error:
                # The one deliberately broad handler on the serving
                # path: any unplanned failure becomes a 500 response
                # (with the event logged) instead of a dropped
                # connection.
                self.metrics.counter("serve.errors").inc()
                o.emit(
                    "serve.error",
                    f"unhandled error serving {request.method} "
                    f"{request.path}: {error!r}",
                    level=WARNING,
                    error=repr(error),
                )
                response = json_response(
                    500, {"error": f"{type(error).__name__}: {error}"}
                )
            span.set(status=response.status)
        return response

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        path, method = request.path, request.method
        if path == "/healthz":
            if method != "GET":
                return json_response(405, {"error": "use GET"})
            # pid identifies *which* worker answered — behind a
            # prefork fleet every fresh connection may land elsewhere.
            # model_version + loaded table id let fleet operators
            # detect stale-surrogate skew before byte-identity breaks.
            service = self._predict_service()
            return json_response(
                200,
                {
                    "status": "ok",
                    "pid": os.getpid(),
                    "model_version": MODEL_VERSION,
                    "predict_table": (
                        service.table_id if service is not None else None
                    ),
                },
            )
        if path == "/readyz":
            if method != "GET":
                return json_response(405, {"error": "use GET"})
            if self.draining:
                return json_response(503, {"ready": False, "draining": True})
            return json_response(200, {"ready": True, "draining": False})
        if path == "/metrics":
            if method != "GET":
                return json_response(405, {"error": "use GET"})
            return self._metrics_response()
        if path == "/v1/simulate":
            if method != "POST":
                return json_response(405, {"error": "use POST"})
            return await self._simulate(request)
        if path == "/v1/sweep":
            if method != "POST":
                return json_response(405, {"error": "use POST"})
            return await self._sweep(request)
        if path == "/v1/predict":
            if method != "POST":
                return json_response(405, {"error": "use POST"})
            return await self._predict_route(request)
        if path.startswith("/v1/figures/"):
            if method != "GET":
                return json_response(405, {"error": "use GET"})
            return await self._figure(path.removeprefix("/v1/figures/"))
        return json_response(404, {"error": f"no route for {path}"})

    def _metrics_response(self) -> HttpResponse:
        o = obs()
        snapshot = {
            "serve": self.metrics.snapshot(),
            "obs": o.metrics.snapshot() if o.enabled else {},
        }
        return json_response(200, snapshot)

    # -- compute endpoints ------------------------------------------------------

    def _parse_spec(self, data) -> SimulationJob:
        if not isinstance(data, dict):
            raise BadRequestError("job spec must be a JSON object")
        try:
            return SimulationJob.from_dict(data)
        except (ValueError, TypeError) as error:
            raise BadRequestError(f"invalid job spec: {error}")

    async def _simulate(self, request: HttpRequest) -> HttpResponse:
        spec = self._parse_spec(request.json())
        if self.draining:
            return self._draining_response()
        key = spec.cache_key()
        future, leader = self.coalescer.claim(key)
        if leader:
            self._lead(
                [future],
                key,
                lambda results, spec=spec: [simulation_payload(spec, results[0])],
                [spec],
            )
        return await self._await_body(future, key)

    def _predict_service(self):
        """The loaded prediction tier, or None (lazy, load-once).

        Loading failures are remembered and warned about exactly once;
        the server keeps serving with every predict request routed to
        the fallback (reason ``table_error``).
        """
        if not self._predict_loaded:
            self._predict_loaded = True
            if self.config.predict_table is not None:
                from ..predict.service import PredictService
                from ..predict.tables import resolve_table

                try:
                    table = resolve_table(
                        self.config.predict_table, self.config.cache_root
                    )
                    self._predict = PredictService(table)
                except (OSError, ValueError) as error:
                    self._predict_error = str(error)
                    obs().emit(
                        "serve.predict.table_error",
                        f"prediction table "
                        f"{self.config.predict_table!r} failed to "
                        f"load; serving fallback only: {error}",
                        level=WARNING,
                        error=str(error),
                    )
        return self._predict

    async def _predict_route(self, request: HttpRequest) -> HttpResponse:
        """``POST /v1/predict``: surrogate when trustworthy, else the
        simulation fallback through the normal admit → coalesce →
        claims → cache path.

        A surrogate hit is computed synchronously from the in-memory
        table — it never enters the admission queue, is never shed,
        and keeps answering while the server drains.  A fallback body
        splices the ``/v1/simulate`` payload bytes verbatim, so its
        ``simulate`` member is byte-identical to what the simulation
        endpoint serves for the same job hash.
        """
        from ..predict.service import parse_query

        try:
            job, tolerance = parse_query(request.json())
        except ValueError as error:
            raise BadRequestError(str(error))
        service = self._predict_service()
        if service is None:
            verdict = (
                "fallback",
                "table_error" if self._predict_error is not None else "no_table",
                {},
            )
        else:
            verdict = service.resolve(job, tolerance)
        if verdict[0] == "surrogate":
            self.metrics.counter("serve.predict.hits").inc()
            return HttpResponse(200, canonical_json({"predict": verdict[1]}))
        _, reason, detail = verdict
        self.metrics.counter("serve.predict.fallbacks").inc()
        if reason == "out_of_range":
            self.metrics.counter("serve.predict.out_of_range").inc()
        if self.draining:
            return self._draining_response()
        key = job.cache_key()
        future, leader = self.coalescer.claim(key)
        if leader:
            self._lead(
                [future],
                key,
                lambda results, job=job: [simulation_payload(job, results[0])],
                [job],
            )
        sim_body, failure = await self._await_payload(future, key)
        if failure is not None:
            return failure
        meta = {"source": "fallback", "reason": reason, **detail}
        return HttpResponse(
            200,
            b'{"predict":'
            + canonical_json(meta).rstrip(b"\n")
            + b',"simulate":'
            + sim_body.rstrip(b"\n")
            + b"}\n",
        )

    async def _sweep(self, request: HttpRequest) -> HttpResponse:
        body = request.json()
        if not isinstance(body, dict) or not isinstance(body.get("jobs"), list):
            raise BadRequestError('sweep body must be {"jobs": [spec, ...]}')
        raw_specs = body["jobs"]
        if not raw_specs:
            raise BadRequestError("sweep needs at least one job spec")
        if len(raw_specs) > MAX_SWEEP_JOBS:
            raise BadRequestError(
                f"sweep of {len(raw_specs)} jobs exceeds the "
                f"{MAX_SWEEP_JOBS}-job limit"
            )
        specs = [self._parse_spec(data) for data in raw_specs]
        if self.draining:
            return self._draining_response()

        # Claim every job; compute only the ones this request leads.
        # Jobs already in flight (a concurrent /v1/simulate, or a
        # duplicate spec within this sweep) coalesce for free.
        futures: list[asyncio.Future] = []
        led_futures: list[asyncio.Future] = []
        led_specs: list[SimulationJob] = []
        for spec in specs:
            future, leader = self.coalescer.claim(spec.cache_key())
            futures.append(future)
            if leader:
                led_futures.append(future)
                led_specs.append(spec)
        if led_specs:
            batch_key = led_specs[0].cache_key()
            self._lead(
                led_futures,
                batch_key,
                lambda results, led=tuple(led_specs): [
                    simulation_payload(spec, result)
                    for spec, result in zip(led, results)
                ],
                led_specs,
            )
        try:
            pieces = await asyncio.wait_for(
                asyncio.shield(asyncio.gather(*futures)), self.config.deadline
            )
        except QueueFullError as error:
            return self._shed_response(error)
        except CoalesceCancelledError:
            return self._cancelled_response(batch_key if led_specs else "")
        except (asyncio.TimeoutError, JobTimeoutError):
            return self._timeout_response()
        # Splice the canonical per-job payloads into one canonical
        # body without re-encoding them (bytes equality with the
        # /v1/simulate payloads is part of the contract).
        joined = b",".join(piece.rstrip(b"\n") for piece in pieces)
        return HttpResponse(200, b'{"results":[' + joined + b"]}\n")

    async def _figure(self, figure_id: str) -> HttpResponse:
        if figure_id not in figure_ids():
            return json_response(
                404,
                {"error": f"unknown figure {figure_id!r}", "known": figure_ids()},
            )
        cached = self._figures.get(figure_id)
        if cached is not None:
            self.metrics.counter("serve.figures.memo_hits").inc()
            return HttpResponse(200, cached)
        if self.draining:
            return self._draining_response()
        key = f"figure:{figure_id}"
        future, leader = self.coalescer.claim(key)
        if leader:
            loop = asyncio.get_running_loop()

            async def produce() -> list[bytes]:
                result = await loop.run_in_executor(
                    None, self._figure_runner, figure_id
                )
                body = figure_payload(result)
                self._figures[figure_id] = body
                return [body]

            self._lead_async([future], key, produce)
        return await self._await_body(future, key)

    # -- the admit -> compute -> settle machinery -------------------------------

    def _lead(self, futures, admission_key: str, to_payloads, specs) -> None:
        """Leader path for job batches: admit, compute on the
        executor, settle every led future with its payload bytes."""
        loop = asyncio.get_running_loop()

        async def produce() -> list[bytes]:
            results = await loop.run_in_executor(
                None, self._execute_specs, list(specs)
            )
            return to_payloads(results)

        self._lead_async(futures, admission_key, produce)

    def _lead_async(self, futures, admission_key: str, produce) -> None:
        """Admit then run ``produce`` as a tracked task; settle
        ``futures`` (one payload each, in order) when it finishes.

        Admission failure settles every future with the
        :class:`QueueFullError`, so a coalesced herd that arrives
        while the queue is full is shed as one — with one shared,
        deterministic ``Retry-After``.
        """
        try:
            admission = self.queue.admit(admission_key)
        except QueueFullError as error:
            for future in futures:
                if not future.done():
                    future.set_exception(error)
            return

        async def run() -> None:
            try:
                with admission:
                    payloads = await produce()
            except asyncio.CancelledError:
                # The leader task was cancelled mid-flight (drain-grace
                # expiry, shutdown).  A bare CancelledError set on the
                # shared future would unwind every follower's handler
                # and silently drop their connections — settle them
                # with a retryable error instead, then keep unwinding.
                cancelled = CoalesceCancelledError(
                    f"computation for {admission_key[:12]} was cancelled "
                    f"mid-flight; safe to retry"
                )
                for future in futures:
                    if not future.done():
                        future.set_exception(cancelled)
                raise
            except BaseException as error:  # settle followers, always
                for future in futures:
                    if not future.done():
                        future.set_exception(error)
            else:
                for future, payload in zip(futures, payloads):
                    if not future.done():
                        future.set_result(payload)

        task = asyncio.get_running_loop().create_task(run())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _await_payload(
        self, future: asyncio.Future, key: str
    ) -> tuple[bytes | None, HttpResponse | None]:
        """Wait (under the request deadline) for the shared bytes.

        Returns ``(payload, None)`` on success or ``(None, response)``
        when the wait resolved to a backpressure/timeout answer —
        callers that embed the payload in a larger body (the predict
        fallback) branch on the failure response, plain callers wrap
        the bytes via :meth:`_await_body`.
        """
        try:
            body = await asyncio.wait_for(
                asyncio.shield(future), self.config.deadline
            )
        except QueueFullError as error:
            return None, self._shed_response(error)
        except CoalesceCancelledError:
            return None, self._cancelled_response(key)
        except asyncio.CancelledError:
            # The shared future itself was cancelled (not this
            # handler): answer retryably instead of unwinding the
            # connection.  A genuine handler cancellation propagates.
            if future.cancelled():
                return None, self._cancelled_response(key)
            raise
        except (asyncio.TimeoutError, JobTimeoutError):
            return None, self._timeout_response(key)
        return body, None

    async def _await_body(self, future: asyncio.Future, key: str) -> HttpResponse:
        """:meth:`_await_payload`, as a complete 200 response."""
        body, failure = await self._await_payload(future, key)
        if failure is not None:
            return failure
        return HttpResponse(200, body)

    def _draining_response(self) -> HttpResponse:
        return json_response(
            503, {"error": "server is draining"}, headers={"connection": "close"}
        )

    def _shed_response(self, error: QueueFullError) -> HttpResponse:
        obs().emit(
            "serve.shed",
            f"queue full ({error.depth}/{error.limit}); "
            f"shed with Retry-After {error.retry_after:.3f}s",
            depth=error.depth,
            limit=error.limit,
        )
        return json_response(
            429,
            {
                "error": "admission queue full",
                "retry_after": round(error.retry_after, 3),
            },
            headers={"retry-after": f"{error.retry_after:.3f}"},
        )

    def _cancelled_response(self, key: str = "") -> HttpResponse:
        """Retryable 503 for a computation cancelled mid-flight.

        Carries the same deterministic job-keyed Retry-After as a 429
        shed, so retrying clients spread out instead of re-stampeding.
        """
        self.metrics.counter("serve.cancelled").inc()
        retry_after = self.queue.retry_after(key or "cancelled")
        return json_response(
            503,
            {
                "error": "computation cancelled; safe to retry",
                "key": key,
                "retry_after": round(retry_after, 3),
            },
            headers={"retry-after": f"{retry_after:.3f}"},
        )

    def _timeout_response(self, key: str = "") -> HttpResponse:
        self.metrics.counter("serve.timeouts").inc()
        return json_response(
            504,
            {
                "error": "deadline exceeded",
                "deadline": self.config.deadline,
                "key": key,
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "draining" if self.draining else "serving"
        return (
            f"SimulationServer({state}, {self.host}:{self.port}, "
            f"queue={self.queue!r}, coalescer={self.coalescer!r})"
        )
