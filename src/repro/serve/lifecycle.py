"""Server lifecycle: startup, signal-driven graceful drain, shutdown.

:func:`serve_forever` is the blocking entry point the CLI uses.  On
SIGTERM (or SIGINT) the server *drains* rather than dies:

1. ``/readyz`` flips to 503 and compute endpoints stop admitting —
   a load balancer or client fleet sees the instance leave rotation.
2. In-flight requests finish (bounded by ``drain_grace``); completed
   jobs are already durable via the write-through cache, and with
   ``checkpoint=True`` partially finished batches are journaled, so
   whatever the drain cannot finish resumes on the next request.
3. The listener closes and the process exits 0.

:class:`BackgroundServer` runs the same server on a daemon thread
with its own event loop — the harness the loopback tests and the
``bench --serve`` target drive real sockets through without
subprocesses.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from contextlib import suppress

from .config import ServeConfig
from .server import SimulationServer

__all__ = ["BackgroundServer", "serve_forever"]


async def _serve(
    config: ServeConfig,
    announce,
    install_signals: bool,
    sock=None,
    early_signals=(),
) -> int:
    server = SimulationServer(config)
    await server.start(sock=sock)
    loop = asyncio.get_running_loop()
    if install_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            with suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, server.begin_drain)
    if early_signals:
        # A drain signal beat the event loop into existence (prefork
        # workers latch these during boot); honor it now — the server
        # still answers whatever slipped in, then exits 0.
        server.begin_drain()
    if announce is not None:
        announce(f"serving on http://{server.host}:{server.port}")
    try:
        await server.wait_stopped()
    finally:
        await server.close()
    if announce is not None:
        announce("drained; exiting")
    return 0


def serve_forever(
    config: ServeConfig, announce=None, sock=None, early_signals=()
) -> int:
    """Run the server until a signal drains it; returns the exit code.

    ``announce`` is called with human-readable status lines (the CLI
    passes a flushing ``print``; the bound port is announced so
    ``port=0`` callers can discover it).  ``sock`` is an already-bound
    listening socket to serve on instead of binding ``host:port`` —
    the prefork supervisor's workers pass their inherited fd this way.
    ``early_signals`` is non-empty when a drain signal was latched
    before the event loop existed (the worker boot shim); the server
    then starts already draining and exits 0 instead of dying to the
    signal's default action.

    With ``config.workers >= 2`` this entry point delegates to the
    prefork :func:`~repro.serve.supervisor.supervise` (unless a
    ``sock`` marks this process as already being a worker).
    """
    if config.workers >= 2 and sock is None:
        from .supervisor import supervise

        return supervise(config, announce=announce)
    return asyncio.run(
        _serve(
            config,
            announce,
            install_signals=True,
            sock=sock,
            early_signals=early_signals,
        )
    )


class BackgroundServer:
    """A server on a daemon thread, for loopback tests and benches.

    Usage::

        with BackgroundServer(config) as bg:
            client = ServeClient(bg.host, bg.port)
            ...

    ``server_kwargs`` (``job_runner``, ``figure_runner``) pass through
    to :class:`~repro.serve.server.SimulationServer`, so tests can
    inject counting or slow runners.  Exit drains the server (same
    path as SIGTERM) and joins the thread.
    """

    def __init__(self, config: ServeConfig, **server_kwargs) -> None:
        self.config = config
        self.server_kwargs = server_kwargs
        self.server: SimulationServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._port: int | None = None

    # -- thread body ----------------------------------------------------------

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        try:
            server = SimulationServer(self.config, **self.server_kwargs)
            await server.start()
        except BaseException as error:
            self._startup_error = error
            self._started.set()
            return
        self.server = server
        self._port = server.port
        self._started.set()
        try:
            await server.wait_stopped()
        finally:
            await server.close()

    # -- public API -----------------------------------------------------------

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        if self.server is None:
            raise RuntimeError("server did not start within 30s")
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self.server is not None:
            with suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.server.begin_drain)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        assert self._port is not None, "server not started"
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"
