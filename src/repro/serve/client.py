"""A stdlib client for the simulation-serving API.

Thin, synchronous, dependency-free: one persistent
``http.client.HTTPConnection`` per :class:`ServeClient` (keep-alive —
the load generator's periodic clients reuse their connection exactly
like long-lived routing peers reuse a session), JSON in/out, and the
raw response bytes preserved so byte-identity can be asserted
end-to-end.

Backpressure-aware by choice: the server sheds with ``429`` (queue
full) or ``503`` (draining / computation cancelled) and a
*deterministic jittered* ``Retry-After`` — construct the client with
``retries > 0`` and it honors that hint instead of surfacing the
error, sleeping exactly what the server prescribed (bounded
attempts, no client-side randomness, so a retrying fleet inherits
the server's anti-synchronization jitter and a rerun retries on the
same schedule).
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass, field
from time import sleep as _sleep

__all__ = ["RETRYABLE_STATUSES", "ApiResponse", "ServeClient"]

#: Statuses that carry a Retry-After worth honoring: 429 (admission
#: queue full) and 503 (draining, or a computation cancelled
#: mid-flight).  504 is excluded — a deadline exceeded once will
#: likely be exceeded again.
RETRYABLE_STATUSES = (429, 503)


@dataclass
class ApiResponse:
    """One API exchange: status, selected headers, raw body bytes."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self):
        """The body decoded as JSON (raises ValueError on junk)."""
        return json.loads(self.body.decode("utf-8"))

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def retry_after(self) -> float | None:
        """The Retry-After hint in seconds, when the server sent one."""
        value = self.headers.get("retry-after")
        return float(value) if value is not None else None


@dataclass
class ServeClient:
    """Synchronous client for one server, with connection reuse.

    Not thread-safe: give each load-generating client its own
    instance (exactly what :mod:`repro.serve.loadgen` does).

    Construct with ``retries > 0`` to honor 429/503 ``Retry-After``
    hints: each such response sleeps the server's (deterministic,
    job-keyed) hint and re-sends, up to ``retries`` extra attempts;
    the last response is returned either way.  ``retries=0`` (the
    default) preserves the PR-4 behavior exactly — backpressure is
    surfaced, never absorbed.

    ``connect_timeout`` (optional) bounds only the TCP handshake,
    separately from the read ``timeout``: set it when the cost of a
    dead endpoint must be seconds, not a whole server deadline — the
    campaign dispatcher does.
    """

    host: str = "127.0.0.1"
    port: int = 8793
    timeout: float = 60.0
    connect_timeout: float | None = None
    retries: int = 0
    max_retry_after: float = 60.0
    retried: int = field(default=0, init=False)
    _conn: http.client.HTTPConnection | None = field(
        default=None, init=False, repr=False
    )

    # -- plumbing -------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            if self.connect_timeout is not None:
                # Distinct connect vs read budgets: the TCP handshake
                # to a dead or unroutable endpoint fails within
                # ``connect_timeout`` (fail fast — a campaign shard
                # must not hang for a full compute ``timeout`` just to
                # learn a host is gone), while an established
                # connection still waits ``timeout`` for the server's
                # long-running simulation response.
                conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.connect_timeout
                )
                conn.connect()
                if conn.sock is not None:
                    conn.sock.settimeout(self.timeout)
                self._conn = conn
            else:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def request(
        self, method: str, path: str, payload=None
    ) -> ApiResponse:
        """One request, honoring Retry-After when ``retries > 0``.

        A 429/503 carrying a ``Retry-After`` header sleeps exactly
        the server's hint (capped at ``max_retry_after``) and
        re-sends, up to ``retries`` extra attempts; the final
        response — success or not — is returned.  Retries performed
        are counted in :attr:`retried`.
        """
        response = self._exchange(method, path, payload)
        for _ in range(self.retries):
            if response.status not in RETRYABLE_STATUSES:
                break
            hint = response.retry_after
            if hint is None:
                break
            self.retried += 1
            _sleep(min(hint, self.max_retry_after))
            response = self._exchange(method, path, payload)
        return response

    def _exchange(
        self, method: str, path: str, payload=None
    ) -> ApiResponse:
        """One exchange; reconnects once if the kept-alive peer hung up."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                raw = conn.getresponse()
                data = raw.read()
                response = ApiResponse(
                    status=raw.status,
                    headers={k.lower(): v for k, v in raw.getheaders()},
                    body=data,
                )
                if raw.will_close:
                    self.close()
                return response
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
            ):
                # A server that closed the idle keep-alive connection
                # is routine; retry exactly once on a fresh socket.
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    # -- the API --------------------------------------------------------------

    def healthz(self) -> ApiResponse:
        return self.request("GET", "/healthz")

    def readyz(self) -> ApiResponse:
        return self.request("GET", "/readyz")

    def metrics(self) -> dict:
        """The server's metric snapshot (raises on non-200)."""
        response = self.request("GET", "/metrics")
        if not response.ok:
            raise RuntimeError(f"/metrics returned {response.status}")
        return response.json()

    def simulate(self, spec: dict) -> ApiResponse:
        """POST one SimulationJob spec dict to ``/v1/simulate``."""
        return self.request("POST", "/v1/simulate", payload=spec)

    def predict(self, query: dict) -> ApiResponse:
        """POST one prediction query to ``/v1/predict``."""
        return self.request("POST", "/v1/predict", payload=query)

    def sweep(self, specs: list[dict]) -> ApiResponse:
        """POST a batch of spec dicts to ``/v1/sweep``."""
        return self.request("POST", "/v1/sweep", payload={"jobs": list(specs)})

    def figure(self, figure_id: str) -> ApiResponse:
        """GET one reduced-scale figure reproduction."""
        return self.request("GET", f"/v1/figures/{figure_id}")
