"""The serving-layer loopback benchmark (``repro-sync bench --serve``).

Boots a real server on a loopback socket (ephemeral port, throwaway
cache directory), then drives the deterministic load generator
through two passes of the same seeded plan:

* **cold** — the cache is empty, so every distinct job simulates once
  (repeat requests within the pass coalesce or hit the cache), and
* **warm** — the identical plan replayed, which must be answered
  entirely from cache: ``jobs_executed == 0`` is asserted into the
  snapshot, and the payload hashes must match the cold pass exactly
  (restart-warmth and byte-identity in one number).

The snapshot is written as ``BENCH_serve.json`` in the shared
``repro.benchio`` envelope, next to ``BENCH_parallel.json`` and
``BENCH_obs.json``.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

from ..benchio import bench_envelope, write_bench_json
from .config import ServeConfig
from .lifecycle import BackgroundServer
from .loadgen import LoadPlan, default_specs, run_load

__all__ = ["format_serve_table", "run_serve_benchmark"]

#: Default bench cache directory (cleared before the cold pass so the
#: cold numbers really are cold).
DEFAULT_BENCH_CACHE = Path("results") / "cache" / "serve-bench"


def run_serve_benchmark(
    clients: int = 8,
    duration: float = 30.0,
    seed: int = 1,
    jobs: int | None = None,
    cache_root: str | os.PathLike | None = None,
    output: str | os.PathLike | None = None,
) -> dict:
    """Run the loopback load test; return (optionally write) the snapshot.

    Parameters
    ----------
    clients, duration, seed:
        Load plan shape: ``clients`` periodic clients over
        ``duration`` virtual seconds (virtual mode — the pass replays
        the schedule as fast as the server answers).
    jobs:
        Server-side pool width; defaults to the CPU count.
    cache_root:
        Cache directory; defaults to a throwaway under
        ``results/cache/serve-bench`` (cleared first).
    output:
        If given, the enveloped snapshot JSON is written there.
    """
    jobs = jobs or os.cpu_count() or 1
    cache = Path(cache_root) if cache_root is not None else DEFAULT_BENCH_CACHE
    shutil.rmtree(cache, ignore_errors=True)

    config = ServeConfig(
        host="127.0.0.1",
        port=0,
        jobs=jobs,
        queue_depth=max(64, clients * 4),
        cache_root=str(cache),
    )
    plan = LoadPlan(
        clients=clients,
        period=1.0,
        jitter=0.5,
        duration=duration,
        seed=seed,
        specs=default_specs(),
    )
    with BackgroundServer(config) as bg:
        cold = run_load(plan, bg.host, bg.port)
        warm = run_load(plan, bg.host, bg.port)

    payload = {
        "workload": {
            "clients": clients,
            "duration_virtual_seconds": duration,
            "seed": seed,
            "distinct_jobs": len(plan.specs),
            "jobs": jobs,
        },
        "cold": cold,
        "warm": warm,
        "warm_served_entirely_from_cache": warm["server"]["jobs_executed"] == 0,
        "payloads_identical_cold_vs_warm": (
            cold["payload_sha256"] == warm["payload_sha256"]
            and cold["identical_payloads_per_key"]
            and warm["identical_payloads_per_key"]
        ),
    }
    snapshot = bench_envelope("serve_loopback_load", payload)
    if output is not None:
        write_bench_json(output, snapshot)
    return snapshot


def format_serve_table(snapshot: dict) -> str:
    """Render the snapshot as the CLI's serving table."""
    rows = [("pass", "req/s", "mean latency (ms)", "executed", "cache hits", "shed")]
    for name in ("cold", "warm"):
        report = snapshot[name]
        latency = report["latency_seconds"]
        rows.append(
            (
                name,
                f"{report['throughput_rps']:.1f}",
                f"{latency.get('mean', 0.0) * 1000:.2f}",
                f"{report['server']['jobs_executed']:g}",
                f"{report['server']['cache_hits']:g}",
                f"{report['server']['shed']:g}",
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    workload = snapshot["workload"]
    lines = [
        f"serve loopback load: {workload['clients']} client(s), "
        f"{workload['duration_virtual_seconds']:g} virtual s, "
        f"{workload['distinct_jobs']} distinct job(s), "
        f"server jobs={workload['jobs']}"
    ]
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    lines.append(
        "warm pass served entirely from cache: "
        + ("yes" if snapshot["warm_served_entirely_from_cache"] else "NO")
    )
    lines.append(
        "payloads identical cold vs warm: "
        + ("yes" if snapshot["payloads_identical_cold_vs_warm"] else "NO")
    )
    return "\n".join(lines)
