"""The serving-layer loopback benchmark (``repro-sync bench --serve``).

Boots a real server on a loopback socket (ephemeral port, throwaway
cache directory), then drives the deterministic load generator
through two passes of the same seeded plan:

* **cold** — the cache is empty, so every distinct job simulates once
  (repeat requests within the pass coalesce or hit the cache), and
* **warm** — the identical plan replayed, which must be answered
  entirely from cache: ``jobs_executed == 0`` is asserted into the
  snapshot, and the payload hashes must match the cold pass exactly
  (restart-warmth and byte-identity in one number).

PR-7 adds a **prefork fleet sweep**: the same plan driven through
:class:`~repro.serve.supervisor.SupervisedServer` at ``workers`` ∈
{1, 2, 4} (cold + warm per width), plus a **restart-overhead row** —
a 2-worker fleet with one worker SIGKILLed mid-load, reporting the
throughput paid for the crash, the respawn count, and the drain exit
code.  Per-worker ``/metrics`` deltas are meaningless across a fleet
(each scrape may land on a different worker), so fleet rows assert
byte-identity via payload hashes and the claim ledger instead.

The snapshot is written as ``BENCH_serve.json`` in the shared
``repro.benchio`` envelope, next to ``BENCH_parallel.json`` and
``BENCH_obs.json``.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

from ..benchio import bench_envelope, write_bench_json
from .config import ServeConfig
from .lifecycle import BackgroundServer
from .loadgen import LoadPlan, default_specs, run_load

__all__ = ["format_serve_table", "run_serve_benchmark"]

#: Default bench cache directory (cleared before the cold pass so the
#: cold numbers really are cold).
DEFAULT_BENCH_CACHE = Path("results") / "cache" / "serve-bench"


def run_serve_benchmark(
    clients: int = 8,
    duration: float = 30.0,
    seed: int = 1,
    jobs: int | None = None,
    cache_root: str | os.PathLike | None = None,
    output: str | os.PathLike | None = None,
    workers_sweep: tuple[int, ...] = (1, 2, 4),
) -> dict:
    """Run the loopback load test; return (optionally write) the snapshot.

    Parameters
    ----------
    clients, duration, seed:
        Load plan shape: ``clients`` periodic clients over
        ``duration`` virtual seconds (virtual mode — the pass replays
        the schedule as fast as the server answers).
    jobs:
        Server-side pool width; defaults to the CPU count.
    cache_root:
        Cache directory; defaults to a throwaway under
        ``results/cache/serve-bench`` (cleared first).
    output:
        If given, the enveloped snapshot JSON is written there.
    workers_sweep:
        Prefork fleet widths to sweep (empty disables the fleet
        section and the restart-overhead row).
    """
    jobs = jobs or os.cpu_count() or 1
    cache = Path(cache_root) if cache_root is not None else DEFAULT_BENCH_CACHE
    shutil.rmtree(cache, ignore_errors=True)

    config = ServeConfig(
        host="127.0.0.1",
        port=0,
        jobs=jobs,
        queue_depth=max(64, clients * 4),
        cache_root=str(cache),
    )
    plan = LoadPlan(
        clients=clients,
        period=1.0,
        jitter=0.5,
        duration=duration,
        seed=seed,
        specs=default_specs(),
    )
    with BackgroundServer(config) as bg:
        cold = run_load(plan, bg.host, bg.port)
        warm = run_load(plan, bg.host, bg.port)

    fleet = (
        _run_fleet_sweep(plan, jobs, cache, workers_sweep)
        if workers_sweep
        else None
    )

    payload = {
        "workload": {
            "clients": clients,
            "duration_virtual_seconds": duration,
            "seed": seed,
            "distinct_jobs": len(plan.specs),
            "jobs": jobs,
        },
        "cold": cold,
        "warm": warm,
        "warm_served_entirely_from_cache": warm["server"]["jobs_executed"] == 0,
        "payloads_identical_cold_vs_warm": (
            cold["payload_sha256"] == warm["payload_sha256"]
            and cold["identical_payloads_per_key"]
            and warm["identical_payloads_per_key"]
        ),
    }
    if fleet is not None:
        payload["fleet"] = fleet
    snapshot = bench_envelope("serve_loopback_load", payload)
    if output is not None:
        write_bench_json(output, snapshot)
    return snapshot


def _row(report: dict) -> dict:
    """Trim a run_load report to the numbers a sweep row needs."""
    latency = report["latency_seconds"]
    return {
        "requests": report["requests"],
        "throughput_rps": report["throughput_rps"],
        "mean_latency_ms": round(latency.get("mean", 0.0) * 1000, 3),
        "by_status": report["by_status"],
        "identical_payloads_per_key": report["identical_payloads_per_key"],
        "payload_sha256": report["payload_sha256"],
    }


def _run_fleet_sweep(
    plan: LoadPlan, jobs: int, cache: Path, widths: tuple[int, ...]
) -> dict:
    """Sweep prefork widths, then measure one crash's overhead.

    Every width gets a fresh cache (cold pass really cold) and its own
    :class:`SupervisedServer`; the restart row repeats the 2-worker
    run (or the largest width available) with one SIGKILL mid-load via
    :func:`~repro.serve.loadgen.run_chaos_load`, so the overhead is
    the throughput delta against that width's own clean run.
    """
    from .loadgen import run_chaos_load, run_load as _run_load
    from .supervisor import SupervisedServer

    def fleet_config(workers: int, tag: str) -> ServeConfig:
        root = cache.parent / f"{cache.name}-fleet-{tag}"
        shutil.rmtree(root, ignore_errors=True)
        return ServeConfig(
            host="127.0.0.1",
            port=0,
            jobs=jobs,
            queue_depth=max(64, plan.clients * 4),
            cache_root=str(root),
            workers=workers,
            claim_ttl=2.0,
            restart_backoff=0.05,
        )

    sweep = []
    for workers in widths:
        config = fleet_config(workers, f"w{workers}")
        with SupervisedServer(config) as fleet:
            _await_fleet(fleet)
            cold = _run_load(plan, fleet.host, fleet.port)
            warm = _run_load(plan, fleet.host, fleet.port)
        sweep.append(
            {
                "workers": workers,
                "cold": _row(cold),
                "warm": _row(warm),
                "payloads_identical_cold_vs_warm": (
                    cold["payload_sha256"] == warm["payload_sha256"]
                ),
            }
        )

    # The restart row runs in *real* time (workers must be killable
    # mid-load), so its baseline must too — a clean real-time pass of
    # the identical plan, not the virtual sweep numbers above.
    restart_workers = 2 if 2 in widths else max(widths)
    chaos_plan = LoadPlan(
        clients=plan.clients,
        period=plan.period,
        jitter=plan.jitter,
        duration=plan.duration,
        seed=plan.seed,
        specs=plan.specs,
        real_time=True,
        retries=3,
    )
    clean_config = fleet_config(restart_workers, "restart-clean")
    with SupervisedServer(clean_config) as fleet:
        _await_fleet(fleet)
        clean = _run_load(chaos_plan, fleet.host, fleet.port)
    chaos = run_chaos_load(
        chaos_plan,
        fleet_config(restart_workers, "restart"),
        kills=1,
        kill_after=0.3,
    )
    clean_rps = clean["throughput_rps"]
    chaos_rps = chaos["throughput_rps"]
    return {
        "sweep": sweep,
        "restart": {
            "workers": restart_workers,
            "kills": chaos["chaos"]["kills"],
            "restarts": chaos["chaos"]["restarts"],
            "drain_exit_code": chaos["chaos"]["drain_exit_code"],
            "exactly_once_per_key": chaos["chaos"]["exactly_once_per_key"],
            "load": _row(chaos),
            "clean": _row(clean),
            "clean_throughput_rps": clean_rps,
            "throughput_overhead_pct": (
                round(100.0 * (1.0 - chaos_rps / clean_rps), 1)
                if clean_rps > 0
                else 0.0
            ),
        },
    }


def _await_fleet(fleet, timeout: float = 30.0) -> None:
    from time import monotonic as _monotonic
    from time import sleep as _sleep

    from .client import ServeClient

    deadline = _monotonic() + timeout
    while True:
        try:
            with ServeClient(fleet.host, fleet.port, timeout=5.0) as probe:
                if probe.healthz().status == 200:
                    return
        except OSError:
            pass  # lint: allow-swallow — workers still booting
        if _monotonic() >= deadline:
            raise TimeoutError("bench fleet never became healthy")
        _sleep(0.05)


def format_serve_table(snapshot: dict) -> str:
    """Render the snapshot as the CLI's serving table."""
    rows = [("pass", "req/s", "mean latency (ms)", "executed", "cache hits", "shed")]
    for name in ("cold", "warm"):
        report = snapshot[name]
        latency = report["latency_seconds"]
        rows.append(
            (
                name,
                f"{report['throughput_rps']:.1f}",
                f"{latency.get('mean', 0.0) * 1000:.2f}",
                f"{report['server']['jobs_executed']:g}",
                f"{report['server']['cache_hits']:g}",
                f"{report['server']['shed']:g}",
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    workload = snapshot["workload"]
    lines = [
        f"serve loopback load: {workload['clients']} client(s), "
        f"{workload['duration_virtual_seconds']:g} virtual s, "
        f"{workload['distinct_jobs']} distinct job(s), "
        f"server jobs={workload['jobs']}"
    ]
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    lines.append(
        "warm pass served entirely from cache: "
        + ("yes" if snapshot["warm_served_entirely_from_cache"] else "NO")
    )
    lines.append(
        "payloads identical cold vs warm: "
        + ("yes" if snapshot["payloads_identical_cold_vs_warm"] else "NO")
    )
    fleet = snapshot.get("fleet")
    if fleet:
        lines.append("")
        lines.append("prefork fleet sweep (real worker processes):")
        frows = [("workers", "cold req/s", "warm req/s", "warm mean (ms)", "identical")]
        for row in fleet["sweep"]:
            frows.append(
                (
                    str(row["workers"]),
                    f"{row['cold']['throughput_rps']:.1f}",
                    f"{row['warm']['throughput_rps']:.1f}",
                    f"{row['warm']['mean_latency_ms']:.2f}",
                    "yes" if row["payloads_identical_cold_vs_warm"] else "NO",
                )
            )
        fwidths = [
            max(len(row[col]) for row in frows) for col in range(len(frows[0]))
        ]
        for i, row in enumerate(frows):
            lines.append(
                "  ".join(cell.ljust(fwidths[col]) for col, cell in enumerate(row))
            )
            if i == 0:
                lines.append("  ".join("-" * w for w in fwidths))
        restart = fleet["restart"]
        lines.append(
            f"restart overhead ({restart['workers']} workers, "
            f"{restart['kills']} kill): "
            f"{restart['load']['throughput_rps']:.1f} req/s vs "
            f"{restart['clean_throughput_rps']:.1f} clean "
            f"({restart['throughput_overhead_pct']:+.1f}% overhead), "
            f"{restart['restarts']} respawn(s), "
            "exactly-once "
            + ("held" if restart["exactly_once_per_key"] else "VIOLATED")
            + f", drain exit {restart['drain_exit_code']}"
        )
    return "\n".join(lines)
