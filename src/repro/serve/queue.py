"""Bounded admission with explicit backpressure.

The server never queues unboundedly: every compute request must pass
through the :class:`AdmissionQueue` before any work is scheduled, and
when the depth limit is hit the request is *shed* — a
:class:`QueueFullError` the handler turns into ``429`` with a
``Retry-After`` header.

The retry hint practices what the paper preaches.  A fleet of clients
shed at the same instant must not retry in lockstep (that is exactly
the synchronization failure Floyd & Jacobson analyze), so the hint is
jittered — but with the *deterministic*, job-keyed jitter from the
parallel layer's backoff helper rather than ``random.random()``:
different jobs spread out, identical runs reproduce identically.
"""

from __future__ import annotations

from ..parallel.runner import deterministic_jitter

__all__ = ["AdmissionQueue", "QueueFullError"]


class QueueFullError(Exception):
    """The admission queue is at its depth limit; shed with 429.

    ``retry_after`` is the jittered hint in seconds the handler
    forwards as the ``Retry-After`` header.
    """

    def __init__(self, retry_after: float, depth: int, limit: int) -> None:
        super().__init__(
            f"admission queue full ({depth}/{limit}); retry after "
            f"{retry_after:.3f}s"
        )
        self.retry_after = retry_after
        self.depth = depth
        self.limit = limit


class _Admission:
    """Context manager releasing one admitted slot on exit."""

    __slots__ = ("_queue", "_released")

    def __init__(self, queue: "AdmissionQueue") -> None:
        self._queue = queue
        self._released = False

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._queue._release()


class AdmissionQueue:
    """Depth-limited admission of compute requests.

    Single-threaded by construction: ``admit``/release run on the
    server's event loop, so a plain counter is race-free.  ``metrics``
    is an optional :class:`~repro.obs.metrics.MetricsRegistry` that
    receives the live depth gauge and the shed counter.
    """

    def __init__(
        self,
        limit: int,
        retry_after_base: float = 1.0,
        metrics=None,
    ) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        if retry_after_base <= 0:
            raise ValueError("retry_after_base must be positive")
        self.limit = limit
        self.retry_after_base = retry_after_base
        self.metrics = metrics
        self.depth = 0
        self.shed = 0
        self.admitted = 0

    def retry_after(self, key: str) -> float:
        """The jittered, job-keyed backoff hint for a shed request."""
        return self.retry_after_base * deterministic_jitter(key, 0)

    def admit(self, key: str) -> _Admission:
        """Claim a slot, or raise :class:`QueueFullError` with the hint.

        ``key`` is the request's job hash (or another stable route
        key); it seeds the ``Retry-After`` jitter so simultaneously
        shed clients do not come back in lockstep.
        """
        if self.depth >= self.limit:
            self.shed += 1
            if self.metrics is not None:
                self.metrics.counter("serve.shed").inc()
            raise QueueFullError(self.retry_after(key), self.depth, self.limit)
        self.depth += 1
        self.admitted += 1
        if self.metrics is not None:
            self.metrics.gauge("serve.queue.depth").set(self.depth)
        return _Admission(self)

    def _release(self) -> None:
        self.depth -= 1
        if self.metrics is not None:
            self.metrics.gauge("serve.queue.depth").set(self.depth)

    @property
    def idle(self) -> bool:
        """True when nothing is admitted (drain uses this)."""
        return self.depth == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionQueue(depth={self.depth}/{self.limit}, "
            f"admitted={self.admitted}, shed={self.shed})"
        )
