"""A deterministic load generator: the paper's client fleet, aimed at us.

The generator is literally the system the paper studies: N clients on
periodic timers whose inter-request interval is drawn uniformly from
``[period - jitter, period + jitter]`` — the simulator's
``[Tp - Tr, Tp + Tr]`` machinery pointed at our own server.  The
schedule derives from a :class:`~repro.rng.RandomSource` seeded by
the plan, so two runs of the same :class:`LoadPlan` issue the same
requests in the same order (and, against a warm cache, receive
byte-identical payloads — the determinism acceptance test).

Two execution modes:

* **virtual** (default) — ticks are replayed in schedule order as
  fast as the server answers; wall-clock-free and fully
  deterministic, the mode tests and the bench use.
* **real** — one thread per client sleeps its jittered intervals and
  fires on time; this exercises genuine concurrency (coalescing,
  backpressure) at the cost of timing-dependent interleaving.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from time import monotonic as _monotonic
from time import sleep as _sleep

from ..obs.metrics import Histogram
from ..parallel.job import SimulationJob
from ..rng import RandomSource
from .client import ServeClient

__all__ = [
    "LATENCY_BUCKETS",
    "LoadPlan",
    "Tick",
    "build_schedule",
    "default_specs",
    "format_report",
    "run_chaos_load",
    "run_load",
]

#: Latency buckets for the report histogram (seconds) — finer at the
#: low end than the obs default, loopback requests are fast.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


def default_specs(count: int = 4, horizon: float = 5e3) -> tuple[dict, ...]:
    """Small, fast, cache-friendly job specs for smoke loads.

    Strongly jittered (``Tr`` well above critical), so the cascade
    run stays cheap whatever the horizon outcome.
    """
    return tuple(
        SimulationJob(
            n_nodes=10,
            tp=121.0,
            tc=0.11,
            tr=2.0,
            seed=seed,
            horizon=horizon,
            direction="up",
            engine="cascade",
        ).to_dict()
        for seed in range(1, count + 1)
    )


@dataclass(frozen=True)
class LoadPlan:
    """A seeded description of one load run.

    ``clients`` periodic clients fire for ``duration`` virtual
    seconds; each waits ``uniform(period - jitter, period + jitter)``
    between its requests (per-client streams spawn from ``seed``).
    Clients cycle through ``specs`` starting at their own offset, so
    neighbouring clients request the same jobs at different times —
    cache hits — and occasionally the same job at the same time —
    coalescing.

    ``retries`` is forwarded to each :class:`ServeClient`: with
    ``retries > 0`` the fleet honors 429/503 ``Retry-After`` hints
    (sleeping the server's own deterministic jitter) instead of
    booking backpressure as terminal errors.
    """

    clients: int = 4
    period: float = 1.0
    jitter: float = 0.5
    duration: float = 10.0
    seed: int = 1
    specs: tuple[dict, ...] = field(default_factory=default_specs)
    real_time: bool = False
    retries: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0 <= self.jitter <= self.period:
            raise ValueError("jitter must be in [0, period]")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not self.specs:
            raise ValueError("specs must not be empty")
        # Validate every spec up front (and freeze dict specs into a
        # tuple if a caller handed us a list).
        object.__setattr__(
            self, "specs", tuple(dict(spec) for spec in self.specs)
        )
        for spec in self.specs:
            SimulationJob.from_dict(spec)


@dataclass(frozen=True)
class Tick:
    """One scheduled request: when, by whom, of what."""

    time: float
    client: int
    seq: int
    spec_index: int


def build_schedule(plan: LoadPlan) -> list[Tick]:
    """All ticks of a plan, in firing order — a pure function of it.

    Client ``i`` draws from stream ``spawn(i)`` of the plan's seed:
    an initial offset uniform on ``[0, period)`` (unsynchronized
    start, exactly like the simulator's), then jittered intervals.
    """
    base = RandomSource(plan.seed)
    ticks: list[Tick] = []
    for client in range(plan.clients):
        stream = base.spawn(client)
        t = stream.uniform(0.0, plan.period)
        seq = 0
        while t <= plan.duration:
            ticks.append(
                Tick(
                    time=t,
                    client=client,
                    seq=seq,
                    spec_index=(client + seq) % len(plan.specs),
                )
            )
            t += stream.uniform(
                plan.period - plan.jitter, plan.period + plan.jitter
            )
            seq += 1
    ticks.sort(key=lambda tick: (tick.time, tick.client))
    return ticks


def _counter(snapshot: dict, name: str) -> float:
    return float(snapshot.get("serve", {}).get(name, {}).get("value", 0.0))


def _issue(client: ServeClient, plan: LoadPlan, tick: Tick):
    """Fire one tick; returns (status, latency, key, body_sha, bytes)."""
    spec = plan.specs[tick.spec_index]
    key = SimulationJob.from_dict(spec).cache_key()
    t0 = _monotonic()
    try:
        response = client.simulate(spec)
    except OSError:
        return ("error", _monotonic() - t0, key, None, 0)
    latency = _monotonic() - t0
    sha = (
        hashlib.sha256(response.body).hexdigest()
        if response.status == 200
        else None
    )
    return (response.status, latency, key, sha, len(response.body))


def _run_virtual(plan: LoadPlan, host: str, port: int, schedule):
    records = []
    retried = 0
    with ServeClient(host, port, retries=plan.retries) as client:
        for tick in schedule:
            records.append(_issue(client, plan, tick))
        retried = client.retried
    return records, retried


def _run_real(plan: LoadPlan, host: str, port: int, schedule):
    per_client: dict[int, list[Tick]] = {}
    for tick in schedule:
        per_client.setdefault(tick.client, []).append(tick)
    results: dict[int, list] = {}
    retried_by_client: dict[int, int] = {}

    def worker(client_id: int, ticks: list[Tick]) -> None:
        mine: list = []
        start = _monotonic()
        with ServeClient(host, port, retries=plan.retries) as client:
            for tick in ticks:
                delay = tick.time - (_monotonic() - start)
                if delay > 0:
                    _sleep(delay)
                mine.append(_issue(client, plan, tick))
            retried_by_client[client_id] = client.retried
        results[client_id] = mine

    threads = [
        threading.Thread(target=worker, args=(cid, ticks), daemon=True)
        for cid, ticks in per_client.items()
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    records = [record for cid in sorted(results) for record in results[cid]]
    return records, sum(retried_by_client.values())


def run_load(plan: LoadPlan, host: str, port: int) -> dict:
    """Execute a plan against a live server; returns the load report.

    The report carries throughput, a latency histogram, per-status
    counts, the SHA-256 of each job's payload bytes (equal-for-equal
    asserted), and the server-side coalesce / cache / shed deltas
    scraped from ``/metrics`` around the run.
    """
    schedule = build_schedule(plan)
    with ServeClient(host, port) as probe:
        before = probe.metrics()
    t0 = _monotonic()
    if plan.real_time:
        records, retried = _run_real(plan, host, port, schedule)
    else:
        records, retried = _run_virtual(plan, host, port, schedule)
    elapsed = _monotonic() - t0
    with ServeClient(host, port) as probe:
        after = probe.metrics()

    histogram = Histogram("loadgen.latency_seconds", buckets=LATENCY_BUCKETS)
    by_status: dict[str, int] = {}
    payload_sha: dict[str, str] = {}
    identical = True
    bytes_received = 0
    for status, latency, key, sha, size in records:
        by_status[str(status)] = by_status.get(str(status), 0) + 1
        histogram.observe(latency)
        bytes_received += size
        if sha is not None:
            if key in payload_sha and payload_sha[key] != sha:
                identical = False
            payload_sha.setdefault(key, sha)

    server_delta = {
        name: _counter(after, metric) - _counter(before, metric)
        for name, metric in (
            ("shed", "serve.shed"),
            ("coalesce_leaders", "serve.coalesce.leaders"),
            ("coalesce_followers", "serve.coalesce.followers"),
            ("jobs_executed", "serve.jobs.executed"),
            ("cache_hits", "serve.jobs.cache_hits"),
            ("timeouts", "serve.timeouts"),
        )
    }
    return {
        "plan": {
            "clients": plan.clients,
            "period": plan.period,
            "jitter": plan.jitter,
            "duration": plan.duration,
            "seed": plan.seed,
            "specs": len(plan.specs),
            "mode": "real" if plan.real_time else "virtual",
            "retries": plan.retries,
        },
        "requests": len(records),
        "retried": retried,
        "by_status": dict(sorted(by_status.items())),
        "elapsed_seconds": round(elapsed, 4),
        "throughput_rps": round(len(records) / elapsed, 2) if elapsed > 0 else 0.0,
        "latency_seconds": histogram.as_dict(),
        "bytes_received": bytes_received,
        "payload_sha256": dict(sorted(payload_sha.items())),
        "identical_payloads_per_key": identical,
        "server": server_delta,
    }


def run_chaos_load(
    plan: LoadPlan,
    config,
    kills: int = 1,
    kill_after: float = 0.5,
) -> dict:
    """Run a load plan against a self-hosted prefork fleet under chaos.

    Starts a :class:`~repro.serve.supervisor.SupervisedServer` from
    ``config`` (``workers >= 2``; any serving-path
    :class:`~repro.parallel.FaultPlan` rides along in
    ``config.faults``), runs the plan against it while SIGKILLing
    ``kills`` worker(s) mid-run (round-robin over slots, the first
    after ``kill_after`` seconds), waits for each respawn, drains the
    fleet, and audits the claim ledger.

    The returned report is :func:`run_load`'s, extended with a
    ``chaos`` section: supervisor restarts, publish-log accounting
    (``exactly_once_per_key`` — the cross-worker single-flight
    invariant), whether any request was lost outright
    (``no_request_lost``: every record carries an HTTP status, none
    died as a transport error), and the drain exit code.
    """
    from pathlib import Path

    from ..parallel import ClaimRegistry
    from .supervisor import SupervisedServer

    if config.workers < 2:
        raise ValueError("chaos load needs workers >= 2")
    report_box: dict = {}
    with SupervisedServer(config) as fleet:
        _await_ready(fleet.host, fleet.port)

        def body() -> None:
            report_box["report"] = run_load(plan, fleet.host, fleet.port)

        load_thread = threading.Thread(target=body, daemon=True)
        load_thread.start()
        for kill in range(kills):
            _sleep(kill_after if kill == 0 else 0.2)
            if not load_thread.is_alive():
                break  # the load outran the chaos; stop killing
            fleet.kill_worker(kill % config.workers)
            fleet.wait_respawn(kill + 1, timeout=30.0)
        load_thread.join(timeout=600.0)
        restarts = fleet.supervisor.restarts
    report = report_box.get("report")
    if report is None:
        raise RuntimeError("chaos load produced no report")
    registry = ClaimRegistry(
        Path(config.cache_root) / "claims", ttl=config.claim_ttl
    )
    publishes = registry.publishes()
    keys = [key for key, _pid in publishes]
    report["chaos"] = {
        "workers": config.workers,
        "kills": kills,
        "restarts": restarts,
        "publishes": len(publishes),
        "distinct_published_keys": len(set(keys)),
        "exactly_once_per_key": len(keys) == len(set(keys)),
        "publisher_pids": sorted({pid for _key, pid in publishes}),
        "no_request_lost": "error" not in report["by_status"],
        "drain_exit_code": fleet.exit_code,
    }
    return report


def _await_ready(host: str, port: int, timeout: float = 30.0) -> None:
    """Poll ``/healthz`` until a worker answers (fleet startup)."""
    deadline = _monotonic() + timeout
    while True:
        try:
            with ServeClient(host, port, timeout=5.0) as probe:
                if probe.healthz().status == 200:
                    return
        except OSError:
            pass  # lint: allow-swallow — workers still booting
        if _monotonic() >= deadline:
            raise TimeoutError(f"no worker ready on {host}:{port}")
        _sleep(0.05)


def format_report(report: dict) -> str:
    """Render a load report for the terminal."""
    latency = report["latency_seconds"]
    lines = [
        f"loadgen: {report['plan']['clients']} client(s), "
        f"{report['requests']} request(s) over "
        f"{report['elapsed_seconds']:.3f}s "
        f"({report['plan']['mode']} time) -> "
        f"{report['throughput_rps']:.1f} req/s",
        f"  status counts: "
        + ", ".join(f"{k}: {v}" for k, v in report["by_status"].items()),
        f"  latency: mean {latency.get('mean', 0.0) * 1000:.2f} ms over "
        f"{latency.get('count', 0)} request(s)",
        f"  server: executed {report['server']['jobs_executed']:g} job(s), "
        f"{report['server']['cache_hits']:g} cache hit(s), "
        f"coalesced {report['server']['coalesce_followers']:g} follower(s), "
        f"shed {report['server']['shed']:g}",
        "  payloads identical per job: "
        + ("yes" if report["identical_payloads_per_key"] else "NO"),
    ]
    if report.get("retried"):
        lines.append(
            f"  client retries honoring Retry-After: {report['retried']}"
        )
    chaos = report.get("chaos")
    if chaos is not None:
        lines.append(
            f"  chaos: {chaos['workers']} worker(s), {chaos['kills']} "
            f"kill(s), {chaos['restarts']} respawn(s); "
            f"{chaos['publishes']} publish(es) over "
            f"{chaos['distinct_published_keys']} key(s) -> exactly-once "
            + ("held" if chaos["exactly_once_per_key"] else "VIOLATED")
            + f"; drain exit {chaos['drain_exit_code']}"
        )
    return "\n".join(lines)
