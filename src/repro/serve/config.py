"""Configuration for the simulation server.

One frozen dataclass, validated up front, shared by the CLI, the
lifecycle runner, tests, and the loopback benchmark.  Everything here
controls *how* requests are served, never *what* a simulation
computes — the byte-identity guarantee does not depend on any of it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Settings for one :class:`~repro.serve.server.SimulationServer`.

    Parameters
    ----------
    host, port:
        Listen address.  ``port=0`` asks the OS for a free port (the
        bound port is reported by ``server.port`` once started) —
        tests and the loopback bench rely on this.
    jobs:
        Worker processes for the underlying
        :class:`~repro.parallel.ParallelRunner` (``1`` = in-process).
    queue_depth:
        Admission limit: requests in flight (queued + computing)
        beyond this are shed with ``429 Retry-After``.
    deadline:
        Per-request deadline in seconds, or None for no deadline.  A
        request whose computation outlives it gets ``504``; the
        deadline is also passed to the runner as its per-job timeout
        (the PR-2 watchdog), so a genuinely hung job cannot wedge a
        worker forever either.
    retry_after_base:
        Base of the jittered ``Retry-After`` value sent with a 429;
        the actual value is ``base * deterministic_jitter(job_key)``
        in ``[0.5, 1.5) * base`` seconds.
    drain_grace:
        Upper bound in seconds a SIGTERM-initiated drain waits for
        in-flight requests before giving up and exiting anyway.
    cache_root:
        Directory for the result cache, or None to disable caching.
    checkpoint:
        When True, every compute batch is journaled through the PR-2
        :class:`~repro.parallel.CheckpointJournal`: a batch cut short
        (SIGKILL, drain-grace expiry) leaves its completed jobs on
        record, and the next identical request resumes instead of
        recomputing.  Off by default — the write-through cache already
        makes completed *jobs* durable; journals additionally make
        partial *batches* resumable.
    engine:
        Simulation engine used for figure requests
        (``des``/``cascade``/``batch``; see
        :func:`repro.core.engines.resolve_engine`).  Job specs posted
        to ``/v1/simulate``/``/v1/sweep`` carry their own per-spec
        engine and ignore this.  Engines are bit-identical, so served
        payloads do not depend on it.
    """

    host: str = "127.0.0.1"
    port: int = 8793
    jobs: int = 1
    queue_depth: int = 64
    deadline: float | None = None
    retry_after_base: float = 1.0
    drain_grace: float = 30.0
    cache_root: str | None = "results/cache"
    checkpoint: bool = False
    engine: str = "cascade"

    def __post_init__(self) -> None:
        from ..core.engines import resolve_engine

        resolve_engine(self.engine)
        if not 0 <= self.port <= 65535:
            raise ValueError("port must be in [0, 65535]")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.retry_after_base <= 0:
            raise ValueError("retry_after_base must be positive")
        if self.drain_grace <= 0:
            raise ValueError("drain_grace must be positive")
