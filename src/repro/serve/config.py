"""Configuration for the simulation server.

One frozen dataclass, validated up front, shared by the CLI, the
lifecycle runner, tests, and the loopback benchmark.  Everything here
controls *how* requests are served, never *what* a simulation
computes — the byte-identity guarantee does not depend on any of it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Settings for one :class:`~repro.serve.server.SimulationServer`.

    Parameters
    ----------
    host, port:
        Listen address.  ``port=0`` asks the OS for a free port (the
        bound port is reported by ``server.port`` once started) —
        tests and the loopback bench rely on this.
    jobs:
        Worker processes for the underlying
        :class:`~repro.parallel.ParallelRunner` (``1`` = in-process).
    queue_depth:
        Admission limit: requests in flight (queued + computing)
        beyond this are shed with ``429 Retry-After``.
    deadline:
        Per-request deadline in seconds, or None for no deadline.  A
        request whose computation outlives it gets ``504``; the
        deadline is also passed to the runner as its per-job timeout
        (the PR-2 watchdog), so a genuinely hung job cannot wedge a
        worker forever either.
    retry_after_base:
        Base of the jittered ``Retry-After`` value sent with a 429;
        the actual value is ``base * deterministic_jitter(job_key)``
        in ``[0.5, 1.5) * base`` seconds.
    drain_grace:
        Upper bound in seconds a SIGTERM-initiated drain waits for
        in-flight requests before giving up and exiting anyway.
    cache_root:
        Directory for the result cache, or None to disable caching.
    checkpoint:
        When True, every compute batch is journaled through the PR-2
        :class:`~repro.parallel.CheckpointJournal`: a batch cut short
        (SIGKILL, drain-grace expiry) leaves its completed jobs on
        record, and the next identical request resumes instead of
        recomputing.  Off by default — the write-through cache already
        makes completed *jobs* durable; journals additionally make
        partial *batches* resumable.
    engine:
        Simulation engine used for figure requests
        (``des``/``cascade``/``batch``; see
        :func:`repro.core.engines.resolve_engine`).  Job specs posted
        to ``/v1/simulate``/``/v1/sweep`` carry their own per-spec
        engine and ignore this.  Engines are bit-identical, so served
        payloads do not depend on it.
    workers:
        Serve processes.  ``1`` (default) runs the single asyncio
        process exactly as before; ``>= 2`` selects the prefork
        supervisor (:mod:`repro.serve.supervisor`): the parent binds
        the socket once, workers inherit the fd, crashed workers are
        respawned with deterministic backoff.
    claims:
        Cross-process single-flight.  ``None`` (default) enables claim
        records automatically when ``workers >= 2`` and a cache is
        configured; True/False force it.  Claims require a cache —
        they coordinate *who publishes to it*.
    claim_ttl:
        Lease length for claim records: a claim whose heartbeat is
        older than this is stale and takeable.
    claim_poll:
        Interval at which a waiter re-polls cache + claim state while
        another process computes its job.
    restart_limit:
        Consecutive respawns of one worker slot before the supervisor
        gives up on it (guards against crash loops).
    restart_backoff:
        Base of the deterministic key-seeded backoff between respawns
        of the same worker slot: respawn ``n`` waits
        ``base * 2^n * deterministic_jitter(slot, n)`` seconds.
    faults:
        Optional :class:`~repro.parallel.FaultPlan` threaded into the
        serving path (chaos testing); ``None`` in production.
    predict_table:
        Prediction table for ``POST /v1/predict`` — a table file path
        or a bare 16-hex table id resolved under ``cache_root`` (see
        :func:`repro.predict.resolve_table`).  ``None`` (default)
        serves every predict request through the simulation fallback.
        Loading is lazy and a bad reference degrades to fallback with
        a warning, never a dead server — the surrogate is an
        optimization, not a dependency.
    """

    host: str = "127.0.0.1"
    port: int = 8793
    jobs: int = 1
    queue_depth: int = 64
    deadline: float | None = None
    retry_after_base: float = 1.0
    drain_grace: float = 30.0
    cache_root: str | None = "results/cache"
    checkpoint: bool = False
    engine: str = "cascade"
    workers: int = 1
    claims: bool | None = None
    claim_ttl: float = 10.0
    claim_poll: float = 0.05
    restart_limit: int = 5
    restart_backoff: float = 0.1
    faults: object | None = None
    predict_table: str | None = None

    def __post_init__(self) -> None:
        from ..core.engines import resolve_engine

        resolve_engine(self.engine)
        if not 0 <= self.port <= 65535:
            raise ValueError("port must be in [0, 65535]")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.retry_after_base <= 0:
            raise ValueError("retry_after_base must be positive")
        if self.drain_grace <= 0:
            raise ValueError("drain_grace must be positive")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.claims and self.cache_root is None:
            raise ValueError("claims require a cache_root")
        if self.claim_ttl <= 0:
            raise ValueError("claim_ttl must be positive")
        if self.claim_poll <= 0:
            raise ValueError("claim_poll must be positive")
        if self.restart_limit < 0:
            raise ValueError("restart_limit must be >= 0")
        if self.restart_backoff <= 0:
            raise ValueError("restart_backoff must be positive")

    @property
    def claims_enabled(self) -> bool:
        """Whether this config runs the cross-process claim protocol."""
        if self.claims is not None:
            return bool(self.claims) and self.cache_root is not None
        return self.workers >= 2 and self.cache_root is not None

    def to_dict(self) -> dict:
        """JSON-safe form the supervisor ships to each worker's env."""
        data = {
            "host": self.host,
            "port": self.port,
            "jobs": self.jobs,
            "queue_depth": self.queue_depth,
            "deadline": self.deadline,
            "retry_after_base": self.retry_after_base,
            "drain_grace": self.drain_grace,
            "cache_root": self.cache_root,
            "checkpoint": self.checkpoint,
            "engine": self.engine,
            "workers": self.workers,
            "claims": self.claims,
            "claim_ttl": self.claim_ttl,
            "claim_poll": self.claim_poll,
            "restart_limit": self.restart_limit,
            "restart_backoff": self.restart_backoff,
            "faults": None if self.faults is None else self.faults.to_dict(),
            "predict_table": self.predict_table,
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServeConfig":
        from ..parallel import FaultPlan

        data = dict(data)
        faults = data.pop("faults", None)
        return cls(
            **data,
            faults=None if faults is None else FaultPlan.from_dict(faults),
        )
