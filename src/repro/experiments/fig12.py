"""Figure 12: f(N) and g(1) as a function of the random component Tr.

For Tr from 0 to 4.5 Tc the chain predicts the expected seconds to
synchronize (f(N), growing roughly exponentially with Tr) and to break
up (g(1), falling steeply).  The crossing region between "moves
easily to state N" and "moves easily to state 1" is the paper's
moderate-randomization band; simulation spot checks ('x' = break-up
runs, '+' = synchronization runs) ride along the analytic curves.
"""

from __future__ import annotations

import math

from ..core import RouterTimingParameters, sweep_tr
from ..markov import synchronization_times
from .result import FigureResult

__all__ = ["run", "PAPER_PARAMS"]

PAPER_PARAMS = RouterTimingParameters(n_nodes=20, tp=121.0, tc=0.11, tr=0.1)


def run(
    tr_over_tc_max: float = 4.5,
    steps: int = 45,
    f2: float = 19.0,
    sim_checks: bool = True,
    sim_horizon: float = 2e6,
    seeds: tuple[int, ...] = (1, 2),
    jobs: int = 1,
    cache=None,
    checkpoint=None,
    engine: str = "cascade",
) -> FigureResult:
    """Reproduce Figure 12.

    The simulation spot checks run through the parallel layer:
    ``jobs``/``cache``/``engine`` speed them up without changing the
    marks.
    """
    from ..obs import obs

    with obs().span(
        "figure.run", figure="fig12", steps=steps, sim_checks=sim_checks, jobs=jobs
    ):
        return _run(
            tr_over_tc_max, steps, f2, sim_checks, sim_horizon, seeds,
            jobs, cache, checkpoint, engine,
        )


def _run(
    tr_over_tc_max, steps, f2, sim_checks, sim_horizon, seeds, jobs,
    cache, checkpoint, engine,
) -> FigureResult:
    tc = PAPER_PARAMS.tc
    f_curve = []
    g_curve = []
    for step in range(1, steps + 1):
        multiple = tr_over_tc_max * step / steps
        times = synchronization_times(PAPER_PARAMS.with_tr(multiple * tc), f2=f2)
        f_curve.append((multiple, times.seconds_to_synchronize))
        g_curve.append((multiple, times.seconds_to_break_up))
    result = FigureResult(
        figure_id="fig12",
        title="Expected time to move between cluster size 1 and N, vs Tr",
    )
    result.add_series("f_n_seconds_by_tr_over_tc", f_curve)
    result.add_series("g_1_seconds_by_tr_over_tc", g_curve)

    finite_f = [(m, v) for m, v in f_curve if math.isfinite(v)]
    finite_g = [(m, v) for m, v in g_curve if math.isfinite(v)]
    crossing = [
        m for (m, fv), (_, gv) in zip(f_curve, g_curve)
        if math.isfinite(fv) and math.isfinite(gv) and fv >= gv
    ]
    if crossing:
        result.metrics["crossover_tr_over_tc"] = min(crossing)
    if len(finite_f) >= 2:
        low_m, low_v = finite_f[0]
        hi_m, hi_v = finite_f[-1]
        if low_v > 0 and hi_v > low_v:
            result.metrics["f_growth_orders_of_magnitude"] = math.log10(hi_v / low_v)
    result.metrics["g_range_seconds"] = (
        f"{finite_g[-1][1]:.3g} .. {finite_g[0][1]:.3g}" if finite_g else "empty"
    )
    if sim_checks:
        sync_runs = sweep_tr(
            PAPER_PARAMS, [0.9 * tc], sim_horizon, direction="synchronize",
            seeds=seeds, engine=engine, jobs=jobs, cache=cache,
            checkpoint=checkpoint,
        )
        sync_mark = [r.time for r in sync_runs if r.occurred]
        break_runs = sweep_tr(
            PAPER_PARAMS, [3.0 * tc], sim_horizon, direction="break_up",
            seeds=seeds, engine=engine, jobs=jobs, cache=cache,
            checkpoint=checkpoint,
        )
        break_mark = [r.time for r in break_runs if r.occurred]
        if sync_mark:
            result.add_series(
                "simulation_sync_marks",
                [(0.9, sum(sync_mark) / len(sync_mark))],
            )
        if break_mark:
            result.add_series(
                "simulation_break_marks",
                [(3.0, sum(break_mark) / len(break_mark))],
            )
    result.notes.append(
        "paper anchor: y-axis spans <1e4 s to >1e12 s; f(N) grows "
        "exponentially through the low and moderate regions; low/"
        "moderate/high randomization regions are separated by the curve "
        "crossing"
    )
    return result
