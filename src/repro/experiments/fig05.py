"""Figure 5: enlargement — two routers forming and breaking a cluster.

The paper zooms into Figure 4 to show the mechanism: each "x" is a
timer expiration, each "o" a timer reset.  For five rounds the two
nodes are independent (reset exactly Tc after their expiry); then node
B's timer expires during node A's busy period, both spend 2 Tc, and
they reset together — a cluster of two, which the random component
later breaks apart.

This driver runs a two-router system whose timers start within Tc of
each other and reports the full expire/reset journal, plus the round
indices where the cluster exists.
"""

from __future__ import annotations

from ..core import ModelConfig, PeriodicMessagesModel, UniformJitterTimer
from .result import FigureResult

__all__ = ["run"]


def run(
    tp: float = 121.0,
    tc: float = 0.11,
    tr: float = 0.1,
    rounds: int = 40,
    seed: int = 2,
    initial_gap: float = 0.05,
) -> FigureResult:
    """Reproduce the Figure 5 mechanism on a two-router system."""
    config = ModelConfig(
        n_nodes=2,
        tc=tc,
        timer=UniformJitterTimer(tp, tr),
        seed=seed,
        record_journal=True,
    )
    model = PeriodicMessagesModel(config, initial_phases=[0.0, initial_gap])
    model.run(until=rounds * (tp + tc))

    result = FigureResult(
        figure_id="fig05",
        title="An enlargement of the simulation above (cluster formation detail)",
    )
    result.add_series(
        "expirations_x",
        [(t, node) for t, kind, node in model.journal if kind == "expire"],
    )
    result.add_series(
        "resets_o",
        [(t, node) for t, kind, node in model.journal if kind == "reset"],
    )
    # Classify each round: clustered (both reset simultaneously) or not.
    clustered_rounds = sum(1 for g in model.tracker.groups if g.size == 2)
    lone_groups = sum(1 for g in model.tracker.groups if g.size == 1)
    result.metrics["rounds_simulated"] = rounds
    result.metrics["clustered_rounds"] = clustered_rounds
    result.metrics["lone_reset_groups"] = lone_groups
    formation = model.tracker.time_to_cluster_size(2)
    result.metrics["first_cluster_at"] = formation
    if formation is not None:
        later_lone = [
            g.time for g in model.tracker.groups if g.size == 1 and g.time > formation
        ]
        result.metrics["first_breakup_at"] = later_lone[0] if later_lone else None
    result.notes.append(
        "paper anchor: clustered nodes reset 2*Tc after the first expiry; "
        "the cluster survives while the two timers expire within Tc and "
        "breaks up when the random component separates them"
    )
    return result
