"""Figure 1: periodic packet losses from synchronized IGRP updates.

1000 pings at 1.01-second intervals across a transit path whose core
routers process synchronized 90-second IGRP updates; the update
processing blocks forwarding, so a burst of consecutive pings is lost
every ~90 seconds.  The series is (ping number, RTT) with losses
plotted as a negative RTT, exactly as in the paper.
"""

from __future__ import annotations

from ..protocols import IGRP
from ..traffic import PingClient, PingResponder
from .result import FigureResult
from .scenarios import build_transit_path

__all__ = ["run", "run_client"]


def run_client(
    count: int = 1000,
    n_routers: int = 5,
    synthetic_routes: int = 300,
    blocking_updates: bool = True,
    seed: int = 1,
) -> PingClient:
    """Run the ping study and return the raw client (shared with fig02)."""
    path = build_transit_path(
        IGRP,
        n_routers=n_routers,
        synthetic_routes=synthetic_routes,
        synchronized_start=True,
        blocking_updates=blocking_updates,
        seed=seed,
    )
    PingResponder(path.dst)
    client = PingClient(
        path.src, path.dst.name, count=count, interval=1.01, timeout=2.0,
        start_time=0.5,
    )
    horizon = 0.5 + count * 1.01 + 5.0
    path.network.run(until=horizon)
    return client


def run(count: int = 1000, seed: int = 1) -> FigureResult:
    """Reproduce Figure 1."""
    client = run_client(count=count, seed=seed)
    result = FigureResult(
        figure_id="fig01",
        title="Periodic packet losses from synchronized IGRP routing messages",
    )
    result.add_series(
        "rtt_by_ping_number",
        [(i, rtt) for i, rtt in enumerate(client.rtts)],
    )
    bursts = client.loss_burst_lengths()
    result.metrics["pings"] = len(client.rtts)
    result.metrics["losses"] = client.losses
    result.metrics["loss_rate"] = client.loss_rate
    result.metrics["loss_bursts"] = len(bursts)
    result.metrics["max_burst_length"] = max(bursts) if bursts else 0
    loss_numbers = [i for i, rtt in enumerate(client.rtts) if rtt < 0]
    gaps = [b - a for a, b in zip(loss_numbers, loss_numbers[1:]) if b - a > 10]
    if gaps:
        result.metrics["median_burst_gap_pings"] = sorted(gaps)[len(gaps) // 2]
    result.notes.append(
        "paper anchor: >=3% of pings dropped, several successive losses "
        "every ~90 s (~89 pings at 1.01 s spacing)"
    )
    result.notes.append(
        "simulated transit path stands in for the Berkeley->MIT measurement "
        "(see DESIGN.md substitutions)"
    )
    return result
