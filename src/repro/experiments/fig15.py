"""Figure 15: fraction of time unsynchronized, as a function of N.

The same estimator swept over the number of routers with Tr fixed at
0.3 s: as routers are added the network snaps from predominately-
unsynchronized to predominately-synchronized within one or two routers
— "a network that moves from an unsynchronized to a fully synchronized
state when one additional router is added to the system".
"""

from __future__ import annotations

from ..core import RouterTimingParameters
from ..markov import fraction_unsynchronized_vs_nodes
from .result import FigureResult

__all__ = ["run", "PAPER_PARAMS"]

PAPER_PARAMS = RouterTimingParameters(n_nodes=20, tp=121.0, tc=0.11, tr=0.3)


def run(n_min: int = 5, n_max: int = 30) -> FigureResult:
    """Reproduce Figure 15 (extended past 25 to show the full fall)."""
    curve = fraction_unsynchronized_vs_nodes(PAPER_PARAMS, range(n_min, n_max + 1))
    result = FigureResult(
        figure_id="fig15",
        title="The fraction of time unsynchronized, vs the number of nodes",
    )
    result.add_series("fraction_unsynchronized_by_n", curve)
    fractions = dict(curve)
    result.metrics["fraction_at_n_min"] = fractions[n_min]
    result.metrics["fraction_at_n_max"] = fractions[n_max]
    steps = [
        (n, fractions[n] - fractions[n + 1])
        for n in range(n_min, n_max)
    ]
    biggest_n, biggest_drop = max(steps, key=lambda item: item[1])
    result.metrics["critical_n"] = biggest_n + 1
    result.metrics["largest_single_router_drop"] = biggest_drop
    in_transition = [n for n, f in curve if 0.1 < f < 0.9]
    result.metrics["routers_spanning_transition"] = len(in_transition)
    result.notes.append(
        "paper anchor: the transition from predominately-unsynchronized to "
        "predominately-synchronized happens within one or two added routers"
    )
    return result
