"""Figure 7: time to synchronize versus the random component Tr.

Three simulations start unsynchronized with Tr = 0.6 Tc, 1.0 Tc, and
1.4 Tc; as Tr grows, synchronization takes longer and longer (the
paper's runs synchronize after 498 rounds, 7,796 rounds, and later
still within a 10^7-second horizon).

The driver reports the time-to-full-synchronization per Tr (None when
the horizon was not enough — itself the Figure 7 message at large Tr).
"""

from __future__ import annotations

from ..core import RouterTimingParameters, sweep_tr
from .result import FigureResult

__all__ = ["run", "PAPER_PARAMS"]

PAPER_PARAMS = RouterTimingParameters(n_nodes=20, tp=121.0, tc=0.11, tr=0.1)


def run(
    tr_multiples: tuple[float, ...] = (0.6, 1.0, 1.4),
    horizon: float = 1e7,
    seeds: tuple[int, ...] = (1,),
    jobs: int = 1,
    cache=None,
    checkpoint=None,
    engine: str = "cascade",
) -> FigureResult:
    """Reproduce Figure 7 (pass a smaller horizon for a fast run).

    The (Tr, seed) grid runs through the parallel layer; ``jobs``,
    ``cache``, ``checkpoint`` (resume support), and ``engine``
    (``cascade``/``batch``/``des``, all bit-identical) change
    wall-clock only.
    """
    tc = PAPER_PARAMS.tc
    result = FigureResult(
        figure_id="fig07",
        title="Simulations starting with unsynchronized updates, varying Tr",
    )
    runs = sweep_tr(
        PAPER_PARAMS, [m * tc for m in tr_multiples], horizon,
        direction="synchronize", seeds=seeds, engine=engine, jobs=jobs,
        cache=cache, checkpoint=checkpoint,
    )
    points = []
    for multiple in tr_multiples:
        params = PAPER_PARAMS.with_tr(multiple * tc)
        finished = [
            r.time for r in runs if r.parameter == multiple * tc and r.occurred
        ]
        mean = sum(finished) / len(finished) if finished else None
        points.append((multiple, mean))
        result.metrics[f"sync_time_tr_{multiple}tc"] = (
            mean if mean is not None else f"not within {horizon:g}s"
        )
        if mean is not None:
            result.metrics[f"sync_rounds_tr_{multiple}tc"] = round(
                mean / params.round_length
            )
    result.add_series("mean_sync_time_by_tr_over_tc", points)
    result.notes.append(
        "paper anchor: time to synchronize grows rapidly with Tr "
        "(498 rounds at 0.6 Tc, 7,796 at 1.0 Tc); runs that report None "
        "did not synchronize within the horizon, the expected behaviour at "
        "larger Tr"
    )
    return result
