"""Figure 6: the cluster graph — largest cluster per round over time.

The same run as Figure 4, summarized: for each round of N routing
messages, the size of the largest cluster.  Small clusters form and
break up for most of the run; once a sufficiently large cluster forms
it sweeps up every remaining node and the graph jumps to N.
"""

from __future__ import annotations

from .fig04 import PAPER_PARAMS, run_model
from .result import FigureResult

__all__ = ["run"]


def run(horizon: float = 1e5, seed: int = 1) -> FigureResult:
    """Reproduce Figure 6."""
    model = run_model(horizon=horizon, seed=seed, record_transmissions=False)
    tracker = model.tracker
    result = FigureResult(
        figure_id="fig06",
        title="The cluster graph, showing the largest cluster for each round",
    )
    result.add_series(
        "largest_cluster_by_time",
        list(zip(tracker.round_times, tracker.round_largest)),
    )
    result.metrics["rounds"] = len(tracker.round_largest)
    result.metrics["max_cluster_seen"] = max(tracker.round_largest, default=0)
    result.metrics["synchronized"] = tracker.synchronization_time is not None
    if tracker.synchronization_time is not None:
        result.metrics["synchronization_time_seconds"] = tracker.synchronization_time
    # How long did the system spend in small-cluster states before the jump?
    n = PAPER_PARAMS.n_nodes
    small = sum(1 for size in tracker.round_largest if size <= max(2, n // 4))
    if tracker.round_largest:
        result.metrics["fraction_rounds_small_clusters"] = small / len(tracker.round_largest)
    result.notes.append(
        "paper anchor: clusters of 2-4 form and dissolve for most of the "
        "run; the final ascent to 20 is abrupt"
    )
    return result
