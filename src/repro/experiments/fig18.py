"""Figure 18: live distance-vector traffic versus the abstract model.

The paper abstracts a routing process to three numbers (Tp, Tc, Tr).
This figure closes the loop: it runs a *real* RIP-style
distance-vector protocol — full periodic table broadcasts on a shared
LAN, per-route processing cost, busy-coupled timer resets — and
checks that the time to synchronize matches the abstract cascade
model at the same (n, Tc/Tp, Tr/Tp) point.

The mapping: n routers on one LAN each hold an n-entry table (self
plus n-1 neighbours), so ``per_route_cost = Tc / n`` makes every
update cost ~Tc of busy time to its sender and to each receiver —
exactly the abstract model's per-message cost.  Timer resets are
extracted from the agents' ``timer_reset_times`` and clustered with a
tolerance of Tc (busy-period ends of a synchronizing group differ by
fractions of one message cost, not the exact-zero of the abstract
model).

A churn variant re-runs one point with triggered updates enabled and
a point-to-point link flapping every few periods, confirming the
synchronization survives real protocol dynamics the abstract model
leaves out.
"""

from __future__ import annotations

from ..core import RouterTimingParameters
from ..core.clusters import ClusterTracker
from ..core.sweeps import sweep_nodes
from ..net import Network
from ..protocols import DistanceVectorAgent, ProtocolSpec
from .result import FigureResult

__all__ = ["run", "dv_lan_sync_time", "BASE_PARAMS"]

#: The fig16/fig17 reduced-scale timing point.
BASE_PARAMS = RouterTimingParameters(n_nodes=10, tp=20.0, tc=2.0, tr=1.0)


def dv_lan_sync_time(
    n: int,
    tp: float,
    tc: float,
    tr: float,
    horizon: float,
    seed_base: int = 100,
    churn: bool = False,
    churn_period: float | None = None,
) -> float | None:
    """Synchronization time of n live DV routers on one shared LAN.

    Builds the network, runs the protocol to ``horizon``, merges the
    agents' timer-reset streams, and returns the first time all n
    routers reset within one Tc of each other (None if censored).

    With ``churn`` a spur router hangs off the LAN's first router on a
    point-to-point link that flaps every ``churn_period`` seconds
    (default 3.5 Tp), and triggered updates are enabled — the LAN
    routers then synchronize amid genuine topology-change traffic.
    The spur is excluded from the cluster statistic.
    """
    net = Network()
    routers = [net.add_router(f"r{i:02d}") for i in range(n)]
    net.add_lan("lan0", stations=routers)
    spec = ProtocolSpec(
        name="rip-fig18",
        period=tp,
        jitter=tr,
        per_route_cost=tc / n,
        triggered_updates=churn,
    )
    agents = [
        DistanceVectorAgent(router, spec, seed=seed_base + i)
        for i, router in enumerate(routers)
    ]
    if churn:
        spur = net.add_router("spur")
        link = net.connect(routers[0], spur, delay_s=0.001)
        DistanceVectorAgent(spur, spec, seed=seed_base + n)
        period = churn_period if churn_period is not None else 3.5 * tp
        flap_at = period
        state = [False]
        while flap_at < horizon:
            def flap(when=flap_at) -> None:
                state[0] = not state[0]
                link.set_up(state[0])

            net.sim.schedule_at(flap_at, flap, label="fig18-churn")
            flap_at += period
    net.run(until=horizon)
    tracker = ClusterTracker(n, keep_history=False, tolerance=tc)
    events = sorted(
        (time, i)
        for i, agent in enumerate(agents)
        for time in agent.timer_reset_times
    )
    for time, i in events:
        tracker.record_reset(time, i)
    tracker.finish()
    return tracker.synchronization_time


def run(
    n_values: tuple[int, ...] = (5, 10, 15, 20),
    horizon: float = 3e4,
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    jobs: int = 1,
    cache=None,
    checkpoint=None,
    engine: str = "cascade",
) -> FigureResult:
    """Live-protocol round trip against the abstract model.

    The abstract side runs ``seeds`` per n through the parallel layer
    (cacheable jobs); the DV side is one deterministic live-protocol
    run per n.  ``jobs``/``cache``/``checkpoint``/``engine`` apply to
    the abstract side only.
    """
    from ..obs import obs

    with obs().span(
        "figure.run", figure="fig18", points=len(n_values),
        seeds=len(seeds), jobs=jobs,
    ):
        return _run(n_values, horizon, seeds, jobs, cache, checkpoint, engine)


def _run(n_values, horizon, seeds, jobs, cache, checkpoint, engine) -> FigureResult:
    result = FigureResult(
        figure_id="fig18",
        title="Live DV protocol vs abstract model: time to synchronize",
    )
    params = BASE_PARAMS
    round_seconds = params.tp + params.tc
    outcomes = sweep_nodes(
        params,
        list(n_values),
        horizon=horizon,
        direction="synchronize",
        seeds=seeds,
        engine=engine,
        jobs=jobs,
        cache=cache,
        checkpoint=checkpoint,
    )
    abstract: dict[int, list[float]] = {n: [] for n in n_values}
    for outcome in outcomes:
        if outcome.time is not None:
            abstract[int(outcome.parameter)].append(outcome.time)
    dv_points = []
    abstract_points = []
    agree = 0
    compared = 0
    for n in n_values:
        dv_time = dv_lan_sync_time(n, params.tp, params.tc, params.tr, horizon)
        times = abstract[n]
        if dv_time is not None:
            dv_points.append((n, dv_time / round_seconds))
        if times:
            abstract_points.append(
                (n, sum(times) / len(times) / round_seconds)
            )
        if dv_time is not None and times:
            compared += 1
            # Agreement: the live run lands within the abstract seed
            # spread, widened by one round for the protocol's extra
            # mechanics (convergence traffic before the steady state).
            low = min(times) - round_seconds
            high = max(times) + round_seconds
            result.metrics[f"dv_over_abstract_mean[n={n}]"] = dv_time * len(
                times
            ) / sum(times)
            if low <= dv_time <= high:
                agree += 1
    result.add_series("dv_sync_rounds_by_n", dv_points)
    result.add_series("abstract_mean_sync_rounds_by_n", abstract_points)
    result.metrics["points_compared"] = compared
    result.metrics["points_in_abstract_spread"] = agree
    churn_n = n_values[len(n_values) // 2]
    churn_time = dv_lan_sync_time(
        churn_n, params.tp, params.tc, params.tr, horizon, churn=True
    )
    result.metrics["churn_n"] = churn_n
    result.metrics["churn_sync_rounds"] = (
        None if churn_time is None else churn_time / round_seconds
    )
    result.notes.append(
        "topology extension (not in the paper): a live RIP-style protocol "
        "on one LAN synchronizes on the abstract model's schedule once "
        "per_route_cost x routes ~= Tc, and still synchronizes under "
        "periodic link churn with triggered updates enabled"
    )
    return result
