"""Shared measurement scenarios for the figure reproductions.

Two canonical topologies stand in for the paper's measurement
infrastructure (see DESIGN.md's substitution table):

* :func:`build_transit_path` — a host, a chain of core routers running
  a synchronized periodic routing protocol, and a far host: the
  Berkeley -> NEARnet -> MIT path of Figures 1-2.
* :func:`build_audiocast_path` — the same shape tuned for the MBone
  audiocast of Figure 3 (RIP at 30 s, partial blocking, a lossier
  lower-speed path).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..net import Host, Network, Router
from ..protocols import DistanceVectorAgent, ProtocolSpec

__all__ = ["TransitPath", "build_transit_path"]


@dataclass
class TransitPath:
    """A built measurement topology."""

    network: Network
    src: Host
    dst: Host
    routers: list[Router]
    agents: list[DistanceVectorAgent] = field(default_factory=list)

    def settle(self, duration: float) -> None:
        """Run the network forward (e.g. to let routing converge)."""
        self.network.run(until=self.network.sim.now + duration)


def build_transit_path(
    spec: ProtocolSpec,
    n_routers: int = 5,
    synthetic_routes: int = 300,
    synchronized_start: bool = True,
    start_time: float = 5.0,
    blocking_updates: bool = True,
    busy_drop_probability: float = 1.0,
    host_link_delay: float = 0.01,
    core_link_delay: float = 0.005,
    bandwidth_bps: float = 1.5e6,
    seed: int = 1,
) -> TransitPath:
    """Host -- router chain -- host, with a periodic routing protocol.

    Parameters
    ----------
    spec:
        Routing protocol constants (period, jitter, per-route cost).
    n_routers:
        Length of the core chain.
    synthetic_routes:
        Extra routes each router originates, sizing updates to the
        PARC measurement (300 routes -> ~0.3 s of processing each).
    synchronized_start:
        Start every router's update timer at the same instant — the
        state NEARnet was observed in.  Otherwise timers start at
        random phases.
    blocking_updates / busy_drop_probability:
        The router behaviour knobs (pre-fix vs post-fix NEARnet).
    """
    if n_routers < 1:
        raise ValueError("need at least one core router")
    if synchronized_start:
        # These scenarios reproduce a network *observed* in the
        # synchronized state; disable triggered updates so the startup
        # convergence wave (whose randomized coalescing delays would
        # stagger the timers by a second or so) cannot perturb it.
        spec = replace(spec, triggered_updates=False)
    net = Network()
    src = net.add_host("src")
    dst = net.add_host("dst")
    routers = [
        net.add_router(
            f"core{i}",
            blocking_updates=blocking_updates,
            busy_drop_probability=busy_drop_probability,
        )
        for i in range(n_routers)
    ]
    net.connect(src, routers[0], bandwidth_bps=bandwidth_bps, delay_s=host_link_delay)
    for a, b in zip(routers, routers[1:]):
        net.connect(a, b, bandwidth_bps=bandwidth_bps, delay_s=core_link_delay)
    net.connect(routers[-1], dst, bandwidth_bps=bandwidth_bps, delay_s=host_link_delay)
    net.install_static_routes()
    agents = []
    for index, router in enumerate(routers):
        offset = start_time if synchronized_start else None
        agents.append(
            DistanceVectorAgent(
                router,
                spec,
                seed=seed * 1000 + index,
                synthetic_routes=synthetic_routes,
                start_offset=offset,
            )
        )
    return TransitPath(network=net, src=src, dst=dst, routers=routers, agents=agents)
