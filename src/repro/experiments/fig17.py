"""Figure 17: synchronization onset versus mean degree on random graphs.

Erdős–Rényi coupling graphs sweep the whole range between the
disconnected limit (no global cascade can form, so the network never
fully synchronizes) and the clique (the paper's model).  Sweeping the
edge probability ``p`` at fixed n traces the onset: the fraction of
runs that synchronize within the horizon rises from 0 to 1 as the
mean degree crosses the connectivity threshold, and the time to
synchronize falls toward the clique value as the graph densifies.

Every (p, graph seed, run seed) simulation is a cache-keyed
:class:`~repro.parallel.job.SimulationJob` executed through the
parallel layer.
"""

from __future__ import annotations

from ..core import RouterTimingParameters
from ..core.sweeps import sweep_nodes
from ..topo import adjacency, components, ensure_spec, mean_degree
from .result import FigureResult

__all__ = ["run", "BASE_PARAMS"]

#: Same reduced-scale timing point as fig16, at a fixed network size.
BASE_PARAMS = RouterTimingParameters(n_nodes=10, tp=20.0, tc=2.0, tr=1.0)


def run(
    p_values: tuple[float, ...] = (0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0),
    n_nodes: int = 10,
    horizon: float = 1e5,
    seeds: tuple[int, ...] = (1, 2, 3),
    graph_seeds: tuple[int, ...] = (1, 2, 3),
    jobs: int = 1,
    cache=None,
    checkpoint=None,
    engine: str = "cascade",
) -> FigureResult:
    """Synchronization onset vs mean degree on Erdős–Rényi graphs.

    For each edge probability ``p`` and each ``graph_seeds`` entry a
    distinct deterministic graph is generated; ``seeds`` are the
    simulation seeds run on every graph.  The runner knobs
    (``jobs``/``cache``/``checkpoint``/``engine``) never change the
    numbers.
    """
    from ..obs import obs

    with obs().span(
        "figure.run", figure="fig17", points=len(p_values),
        graphs=len(graph_seeds), seeds=len(seeds), jobs=jobs,
    ):
        return _run(
            p_values, n_nodes, horizon, seeds, graph_seeds,
            jobs, cache, checkpoint, engine,
        )


def _run(
    p_values, n_nodes, horizon, seeds, graph_seeds, jobs, cache, checkpoint, engine
) -> FigureResult:
    result = FigureResult(
        figure_id="fig17",
        title="Synchronization onset vs mean degree (Erdos-Renyi coupling)",
    )
    base = BASE_PARAMS.with_nodes(n_nodes)
    round_seconds = base.tp + base.tc
    onset_points = []
    time_points = []
    connected_points = []
    for p in p_values:
        synced = 0
        runs = 0
        times: list[float] = []
        degrees: list[float] = []
        connected = 0
        for graph_seed in graph_seeds:
            spec = ensure_spec(f"erdos_renyi(p={float(p)},seed={graph_seed})")
            adj = adjacency(spec, n_nodes)
            degrees.append(mean_degree(adj))
            if len(components(adj)) == 1:
                connected += 1
            outcomes = sweep_nodes(
                base,
                [n_nodes],
                horizon=horizon,
                direction="synchronize",
                seeds=seeds,
                engine=engine,
                jobs=jobs,
                cache=cache,
                checkpoint=checkpoint,
                topology=spec.canonical(),
            )
            for outcome in outcomes:
                runs += 1
                if outcome.time is not None:
                    synced += 1
                    times.append(outcome.time)
        degree = sum(degrees) / len(degrees)
        onset_points.append((degree, synced / runs))
        connected_points.append((degree, connected / len(graph_seeds)))
        if times:
            time_points.append((degree, sum(times) / len(times) / round_seconds))
    result.add_series("synced_fraction_by_mean_degree", onset_points)
    result.add_series("sync_rounds_by_mean_degree", time_points)
    result.add_series("connected_fraction_by_mean_degree", connected_points)
    result.metrics["runs_per_point"] = len(seeds) * len(graph_seeds)
    result.metrics["n_nodes"] = n_nodes
    fractions = [f for _d, f in onset_points]
    result.metrics["onset_fraction_low_p"] = fractions[0]
    result.metrics["onset_fraction_high_p"] = fractions[-1]
    # Mean degree where the synced fraction first reaches 1/2 — the
    # onset location this figure is named for.
    result.metrics["onset_mean_degree"] = next(
        (d for d, f in onset_points if f >= 0.5), None
    )
    result.notes.append(
        "topology extension (not in the paper): full synchronization "
        "requires a connected coupling graph, and the onset tracks the "
        "Erdos-Renyi connectivity threshold as mean degree grows"
    )
    return result
