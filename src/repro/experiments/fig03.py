"""Figure 3: audio outages from (conjectured) synchronized RIP updates.

A CBR audio stream (50 packets/s) crosses a path whose routers run
synchronized 30-second RIP updates; update processing blocks
forwarding for the ~1.2 s it takes each router to digest the burst of
updates, and a low random per-packet loss adds the scattered
single-packet "blips".  Event loss rates are measured over 2-second
windows around each spike, matching the paper's 50-95% observation
(the outage is shorter than the window).  The series is (outage start time, outage
duration) — the paper's axes.
"""

from __future__ import annotations

from ..analysis import extract_outages, loss_rate_in_windows, periodic_spike_lags
from ..protocols import RIP
from ..traffic import AudioSession
from .result import FigureResult
from .scenarios import build_transit_path

__all__ = ["run"]


def run(
    duration: float = 600.0,
    n_routers: int = 4,
    synthetic_routes: int = 160,
    busy_drop_probability: float = 1.0,
    random_loss_probability: float = 0.002,
    seed: int = 1,
) -> FigureResult:
    """Reproduce Figure 3."""
    path = build_transit_path(
        RIP,
        n_routers=n_routers,
        synthetic_routes=synthetic_routes,
        synchronized_start=True,
        blocking_updates=True,
        busy_drop_probability=busy_drop_probability,
        seed=seed,
    )
    session = AudioSession(
        path.src,
        path.dst,
        packet_interval=0.02,
        duration=duration,
        random_loss_probability=random_loss_probability,
        seed=seed + 7,
        start_time=0.5,
    )
    path.network.run(until=duration + 5.0)
    send_times, delivered = session.delivery_record()
    outages = extract_outages(send_times, delivered)

    result = FigureResult(
        figure_id="fig03",
        title="Periodic packet losses from synchronized RIP routing messages",
    )
    result.add_series(
        "outage_duration_by_time",
        [(o.start_time, o.duration) for o in outages],
    )
    spikes = [o for o in outages if o.duration >= 0.5]
    blips = [o for o in outages if o.duration < 0.5]
    lags = periodic_spike_lags(outages, min_duration=0.5)
    result.metrics["total_packets"] = session.packets_sent
    result.metrics["overall_loss_rate"] = session.loss_rate
    result.metrics["large_outages"] = len(spikes)
    result.metrics["single_packet_blips"] = len(blips)
    if lags:
        result.metrics["median_spike_gap_seconds"] = sorted(lags)[len(lags) // 2]
    if spikes:
        rates = loss_rate_in_windows(
            send_times, delivered,
            [o.start_time for o in spikes], window_length=2.0,
        )
        usable = [r for r in rates if r == r]  # drop NaNs
        if usable:
            result.metrics["min_event_loss_rate"] = min(usable)
            result.metrics["max_event_loss_rate"] = max(usable)
    result.notes.append(
        "paper anchor: loss spikes every 30 s lasting seconds, 50-95% loss "
        "during events, random single-packet blips elsewhere"
    )
    return result
