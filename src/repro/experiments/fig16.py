"""Figure 16: synchronization onset versus graph diameter.

The paper's model couples every router to every other (one shared
Ethernet).  On a sparser graph a cascade can only recruit routers
adjacent to its current members, so the effective coupling weakens
with distance.  This figure runs the same (Tp, Tc, Tr) point over
rings and binary trees of growing size and plots time-to-synchronize
against the graph diameter: cliques get *faster* with more routers
(the paper's transition), while rings slow roughly with diameter and
trees sit in between — topology, not router count, is what carries
the onset.

All simulations go through the parallel layer (runner + cache +
checkpoint), one sweep per family, so repeated runs are free and an
interrupted run resumes.
"""

from __future__ import annotations

from ..core import RouterTimingParameters
from ..core.sweeps import sweep_nodes
from ..topo import adjacency, diameter, ensure_spec
from .result import FigureResult

__all__ = ["run", "FAMILIES", "BASE_PARAMS"]

#: Graph families compared, in increasing-diameter order at fixed n.
FAMILIES = ("clique", "tree(b=2)", "ring")

#: A reduced-scale point where all three families synchronize within
#: a short horizon (the paper's Tp=121 s point needs ~1e6 s horizons
#: on rings; the claim here is about *relative* onset, which survives
#: the rescale).
BASE_PARAMS = RouterTimingParameters(n_nodes=4, tp=20.0, tc=2.0, tr=1.0)

def run(
    n_values: tuple[int, ...] = (4, 6, 8, 10, 12),
    horizon: float = 2e5,
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    families: tuple[str, ...] = FAMILIES,
    jobs: int = 1,
    cache=None,
    checkpoint=None,
    engine: str = "cascade",
) -> FigureResult:
    """Time-to-synchronize vs diameter across graph families.

    For every family a :func:`~repro.core.sweeps.sweep_nodes` runs the
    ``n`` grid x ``seeds`` through the parallel layer with that
    family's coupling graph.  ``jobs``/``cache``/``checkpoint``/
    ``engine`` are the usual runner knobs and never change the
    numbers (the DES engine is rejected on non-complete couplings).
    """
    from ..obs import obs

    with obs().span(
        "figure.run", figure="fig16", families=len(families),
        points=len(n_values), seeds=len(seeds), jobs=jobs,
    ):
        return _run(
            n_values, horizon, seeds, families, jobs, cache, checkpoint, engine
        )


def _run(
    n_values, horizon, seeds, families, jobs, cache, checkpoint, engine
) -> FigureResult:
    result = FigureResult(
        figure_id="fig16",
        title="Time to synchronize vs graph diameter (rings, trees, clique)",
    )
    round_seconds = BASE_PARAMS.tp + BASE_PARAMS.tc
    family_means: dict[str, dict[int, float | None]] = {}
    for family in families:
        spec = ensure_spec(family)
        outcomes = sweep_nodes(
            BASE_PARAMS,
            list(n_values),
            horizon=horizon,
            direction="synchronize",
            seeds=seeds,
            engine=engine,
            jobs=jobs,
            cache=cache,
            checkpoint=checkpoint,
            topology=family,
        )
        by_n: dict[int, list[float]] = {n: [] for n in n_values}
        synced: dict[int, int] = {n: 0 for n in n_values}
        for outcome in outcomes:
            n = int(outcome.parameter)
            if outcome.time is not None:
                by_n[n].append(outcome.time)
                synced[n] += 1
        means = {
            n: (sum(times) / len(times) if times else None)
            for n, times in by_n.items()
        }
        family_means[spec.canonical()] = means
        result.add_series(
            f"sync_seconds_by_n[{spec.canonical()}]",
            [(n, means[n]) for n in n_values if means[n] is not None],
        )
        result.add_series(
            f"sync_rounds_by_diameter[{spec.canonical()}]",
            [
                (diameter(adjacency(spec, n)), means[n] / round_seconds)
                for n in n_values
                if means[n] is not None
            ],
        )
        # The family's transition n: smallest scanned size where every
        # seed synchronized within the horizon (a linear scan, not a
        # bisection — ring onset is not monotone in n).
        full = [n for n in n_values if synced[n] == len(seeds)]
        result.metrics[f"transition_n[{spec.canonical()}]"] = (
            min(full) if full else None
        )
        result.metrics[f"synced_fraction[{spec.canonical()}]"] = sum(
            synced.values()
        ) / (len(n_values) * len(seeds))
    clique_key = ensure_spec("clique").canonical()
    n_max = max(n_values)
    if clique_key in family_means and family_means[clique_key].get(n_max):
        base = family_means[clique_key][n_max]
        for family, means in family_means.items():
            if family == clique_key or not means.get(n_max):
                continue
            result.metrics[f"slowdown_vs_clique_at_n_max[{family}]"] = (
                means[n_max] / base
            )
    result.metrics["seeds"] = len(seeds)
    result.notes.append(
        "topology extension (not in the paper): on a clique adding routers "
        "speeds synchronization, on a ring the onset time grows with the "
        "diameter — coupling range, not router count, drives the transition"
    )
    return result
