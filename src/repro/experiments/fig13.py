"""Figure 13: the Figure 12 sweep across N and Tc.

The paper repeats the randomization sweep for N in {10, 20, 30} and
for Tc in {0.01, 0.11} seconds to show the analysis scales: for a wide
range of parameters, Tr >= ~10 Tc breaks clusters quickly, and larger
networks need more randomness.
"""

from __future__ import annotations

import math

from ..core import RouterTimingParameters
from ..markov import synchronization_times
from .result import FigureResult

__all__ = ["run"]


def run(
    n_values: tuple[int, ...] = (10, 20, 30),
    tc_values: tuple[float, ...] = (0.01, 0.11),
    tr_over_tc_max: float = 8.0,
    steps: int = 32,
    tp: float = 121.0,
) -> FigureResult:
    """Reproduce Figure 13."""
    result = FigureResult(
        figure_id="fig13",
        title="Expected transition times vs Tr, for N in {10,20,30} and two Tc",
    )
    for tc in tc_values:
        for n in n_values:
            f_curve = []
            g_curve = []
            for step in range(1, steps + 1):
                multiple = tr_over_tc_max * step / steps
                params = RouterTimingParameters(
                    n_nodes=n, tp=tp, tc=tc, tr=multiple * tc
                )
                times = synchronization_times(params)
                f_curve.append((multiple, times.seconds_to_synchronize))
                g_curve.append((multiple, times.seconds_to_break_up))
            label = f"tc{tc}_n{n}"
            result.add_series(f"f_{label}", f_curve)
            result.add_series(f"g_{label}", g_curve)
            # Where does break-up become fast (< 1000 rounds)?
            round_seconds = tp + tc
            fast = [
                m for m, v in g_curve
                if math.isfinite(v) and v / round_seconds < 1000
            ]
            result.metrics[f"tr_for_fast_breakup_{label}"] = (
                f"{min(fast):.2f} Tc" if fast else f"> {tr_over_tc_max} Tc"
            )
    result.notes.append(
        "paper anchor: for a wide range of parameters, Tr at least ten "
        "times Tc ensures clusters are quickly broken up; larger N shifts "
        "the required Tr upward"
    )
    return result
