"""Figure 9: the Markov chain itself.

The paper's Figure 9 is a diagram of the N-state birth--death chain
whose state is the largest cluster size, annotated with the transition
probabilities p(i, i-1) and p(i, i+1).  The reproduction emits those
probabilities for the canonical parameters — the chain every later
figure is computed from.
"""

from __future__ import annotations

from ..core import RouterTimingParameters
from ..markov import build_chain
from .result import FigureResult

__all__ = ["run"]


def run(
    n_nodes: int = 20,
    tp: float = 121.0,
    tc: float = 0.11,
    tr: float = 0.1,
    p12: float = 1.0 / 19.0,
) -> FigureResult:
    """Emit the chain structure for the given parameters."""
    params = RouterTimingParameters(n_nodes=n_nodes, tp=tp, tc=tc, tr=tr)
    chain = build_chain(params, p12=p12)
    result = FigureResult(
        figure_id="fig09",
        title="The Markov chain (states = largest cluster size)",
    )
    result.add_series("p_up_by_state", [(i, chain.p(i)) for i in range(1, n_nodes + 1)])
    result.add_series("p_down_by_state", [(i, chain.q(i)) for i in range(1, n_nodes + 1)])
    result.metrics["states"] = chain.n
    result.metrics["p12"] = p12
    result.metrics["row_sums_valid"] = all(
        0.0 <= chain.p(i) + chain.q(i) <= 1.0 + 1e-12 for i in range(1, n_nodes + 1)
    )
    result.metrics["boundary_ok"] = chain.q(1) == 0.0 and chain.p(n_nodes) == 0.0
    result.notes.append(
        "structural figure: the birth-death chain with Equation 1 down-"
        "probabilities and Equation 2 up-probabilities"
    )
    return result
