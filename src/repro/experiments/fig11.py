"""Figure 11: expected time to reach cluster size i, from size N.

The mirror of Figure 10: simulations start fully synchronized with
Tr = 0.3 s, and we record the first time the per-round largest cluster
falls to each size i; the solid line is ``(Tp + Tc) * g(i)``.
"""

from __future__ import annotations

from ..core import CascadeModel, FirstPassageEnsemble, RouterTimingParameters
from ..markov import synchronization_times
from .result import FigureResult

__all__ = ["run", "simulate_first_passage_down"]

PAPER_PARAMS = RouterTimingParameters(n_nodes=20, tp=121.0, tc=0.11, tr=0.3)


def simulate_first_passage_down(
    params: RouterTimingParameters,
    horizon: float,
    seed: int,
) -> dict[int, float]:
    """First time the largest per-round cluster drops to each size."""
    model = CascadeModel(params, seed=seed, initial_phases="synchronized")
    model.run(until=horizon, stop_on_full_unsync=True)
    return dict(model.tracker.first_time_at_most)


def run(
    horizon: float = 7e5,
    seeds: tuple[int, ...] = tuple(range(1, 21)),
    jobs: int = 1,
    cache=None,
    checkpoint=None,
    engine: str = "cascade",
    topology: str = "clique",
) -> FigureResult:
    """Reproduce Figure 11 (paper scale: 20 seeds, ~300,000 s axis).

    ``jobs``/``cache``/``checkpoint``/``engine`` parallelize, memoize,
    make resumable, and re-backend the seed runs without changing the
    numbers (see :mod:`repro.parallel`).  ``topology`` swaps in a
    non-clique coupling graph (an off-paper what-if, CLI
    ``--topology``); the analysis series still assumes the clique.
    """
    analysis = synchronization_times(PAPER_PARAMS, f2=19.0)
    round_seconds = analysis.seconds_per_round
    result = FigureResult(
        figure_id="fig11",
        title="Expected time to reach cluster size i, from size N (Tr = 0.3 s)",
    )
    result.add_series(
        "analysis_seconds_by_size",
        [(i + 1, g * round_seconds) for i, g in enumerate(analysis.g)],
    )
    ensemble = FirstPassageEnsemble(
        params=PAPER_PARAMS, horizon=horizon, seeds=seeds, direction="down",
        engine=engine, jobs=jobs, cache=cache, checkpoint=checkpoint,
        topology=topology,
    ).run()
    if topology != "clique":
        result.notes.append(
            f"simulation coupled over topology={topology!r}; the analysis "
            "curve still assumes the paper's fully-coupled model"
        )
    mean_points = [
        (size, aggregate.mean)
        for size, aggregate in ensemble.curve()
        if aggregate.times
    ]
    result.add_series("simulation_mean_seconds_by_size", mean_points)
    result.metrics["analysis_g_1_seconds"] = analysis.seconds_to_break_up
    terminal = ensemble.terminal_result()
    result.metrics["seeds"] = len(seeds)
    result.metrics["runs_broken_up"] = len(terminal.times)
    if terminal.times:
        result.metrics["simulation_mean_breakup_seconds"] = terminal.mean
        result.metrics["analysis_over_simulation_ratio"] = (
            analysis.seconds_to_break_up / terminal.mean
        )
    result.notes.append(
        "paper anchor: the Markov-chain prediction is 2-3x the simulation "
        "average; g does not depend on the fitted f(2)"
    )
    return result
