"""Figure 11: expected time to reach cluster size i, from size N.

The mirror of Figure 10: simulations start fully synchronized with
Tr = 0.3 s, and we record the first time the per-round largest cluster
falls to each size i; the solid line is ``(Tp + Tc) * g(i)``.
"""

from __future__ import annotations

from ..core import CascadeModel, RouterTimingParameters
from ..markov import synchronization_times
from .result import FigureResult

__all__ = ["run", "simulate_first_passage_down"]

PAPER_PARAMS = RouterTimingParameters(n_nodes=20, tp=121.0, tc=0.11, tr=0.3)


def simulate_first_passage_down(
    params: RouterTimingParameters,
    horizon: float,
    seed: int,
) -> dict[int, float]:
    """First time the largest per-round cluster drops to each size."""
    model = CascadeModel(params, seed=seed, initial_phases="synchronized")
    model.run(until=horizon, stop_on_full_unsync=True)
    return dict(model.tracker.first_time_at_most)


def run(
    horizon: float = 7e5,
    seeds: tuple[int, ...] = tuple(range(1, 21)),
) -> FigureResult:
    """Reproduce Figure 11 (paper scale: 20 seeds, ~300,000 s axis)."""
    analysis = synchronization_times(PAPER_PARAMS, f2=19.0)
    round_seconds = analysis.seconds_per_round
    result = FigureResult(
        figure_id="fig11",
        title="Expected time to reach cluster size i, from size N (Tr = 0.3 s)",
    )
    result.add_series(
        "analysis_seconds_by_size",
        [(i + 1, g * round_seconds) for i, g in enumerate(analysis.g)],
    )
    per_seed = [simulate_first_passage_down(PAPER_PARAMS, horizon, s) for s in seeds]
    mean_points = []
    for size in range(1, PAPER_PARAMS.n_nodes + 1):
        reached = [fp[size] for fp in per_seed if size in fp]
        if reached:
            mean_points.append((size, sum(reached) / len(reached)))
    result.add_series("simulation_mean_seconds_by_size", mean_points)
    result.metrics["analysis_g_1_seconds"] = analysis.seconds_to_break_up
    broke = [fp.get(1) for fp in per_seed if 1 in fp]
    result.metrics["seeds"] = len(seeds)
    result.metrics["runs_broken_up"] = len(broke)
    if broke:
        result.metrics["simulation_mean_breakup_seconds"] = sum(broke) / len(broke)
        result.metrics["analysis_over_simulation_ratio"] = (
            analysis.seconds_to_break_up / (sum(broke) / len(broke))
        )
    result.notes.append(
        "paper anchor: the Markov-chain prediction is 2-3x the simulation "
        "average; g does not depend on the fitted f(2)"
    )
    return result
