"""Figure 2: autocorrelation of the Figure 1 round-trip times.

Dropped packets are assigned a 2-second RTT ("higher than the largest
roundtrip time in the experiment") and the sample autocorrelation is
computed; the routing period appears as a strong peak near lag 89-92
(the ~91-second effective update period divided by the 1.01-second
ping spacing).
"""

from __future__ import annotations

from ..analysis import autocorrelation, dominant_lag, fill_losses
from .fig01 import run_client
from .result import FigureResult

__all__ = ["run"]


def run(count: int = 1000, seed: int = 1, max_lag: int = 200) -> FigureResult:
    """Reproduce Figure 2."""
    client = run_client(count=count, seed=seed)
    filled = fill_losses(client.rtts, loss_value=2.0)
    acf = autocorrelation(filled, max_lag=max_lag)
    result = FigureResult(
        figure_id="fig02",
        title="The autocorrelation of roundtrip times",
    )
    result.add_series("autocorrelation", [(lag, float(v)) for lag, v in enumerate(acf)])
    peak = dominant_lag(acf, min_lag=40, max_lag=max_lag)
    result.metrics["dominant_lag_pings"] = peak
    result.metrics["dominant_lag_seconds"] = peak * 1.01
    result.metrics["acf_at_peak"] = float(acf[peak])
    result.notes.append(
        "paper anchor: high autocorrelation at lag 89 (~90 s); the "
        "simulated update period is 90 s plus the routers' busy time, so "
        "the peak lands at lag ~90-92"
    )
    return result
