"""Per-figure experiment drivers, registry, and CLI."""

from .registry import FAST_KWARGS, FIGURES, figure_ids, run_figure
from .result import FigureResult
from .scenarios import TransitPath, build_transit_path

__all__ = [
    "FAST_KWARGS",
    "FIGURES",
    "figure_ids",
    "run_figure",
    "FigureResult",
    "TransitPath",
    "build_transit_path",
]
