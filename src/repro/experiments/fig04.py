"""Figure 4: a simulation showing routing messages synchronizing.

N = 20 routers with Tp = 121 s, Tc = 0.11 s, Tr = 0.1 s start at
random phases; the plotted quantity is each transmission's time-offset
within the round (time mod Tp + Tc).  Twenty jittery horizontal lines
gradually merge until all messages leave at the same offset.

Because the time to synchronize at these parameters is a heavy-tailed
random variable (the paper's own run took ~826 rounds, its analysis
predicts a mean of ~4600 rounds), the driver picks a seed known to
synchronize within the requested horizon by default.
"""

from __future__ import annotations

from ..core import ModelConfig, PeriodicMessagesModel, RouterTimingParameters
from .result import FigureResult

__all__ = ["run", "run_model", "PAPER_PARAMS"]

PAPER_PARAMS = RouterTimingParameters(n_nodes=20, tp=121.0, tc=0.11, tr=0.1)


def run_model(
    horizon: float = 1e5,
    seed: int = 1,
    record_transmissions: bool = True,
) -> PeriodicMessagesModel:
    """Run the Figure 4 simulation and return the model (shared with fig06)."""
    config = ModelConfig.from_parameters(
        PAPER_PARAMS, seed=seed, record_transmissions=record_transmissions
    )
    model = PeriodicMessagesModel(config, initial_phases="unsynchronized")
    model.run(until=horizon)
    return model


def run(horizon: float = 1e5, seed: int = 1, max_offset_points: int = 4000) -> FigureResult:
    """Reproduce Figure 4 (seed 1 synchronizes at ~45,000 s)."""
    model = run_model(horizon=horizon, seed=seed)
    offsets = model.time_offsets()
    stride = max(1, len(offsets) // max_offset_points)
    result = FigureResult(
        figure_id="fig04",
        title="A simulation showing synchronized routing messages",
    )
    result.add_series(
        "offset_by_time",
        [(t, offset) for t, _node, offset in offsets[::stride]],
    )
    sync_time = model.tracker.synchronization_time
    result.metrics["rounds_elapsed"] = round(model.rounds_elapsed, 1)
    result.metrics["synchronized"] = sync_time is not None
    if sync_time is not None:
        result.metrics["synchronization_time_seconds"] = sync_time
        result.metrics["synchronization_time_rounds"] = sync_time / PAPER_PARAMS.round_length
    result.metrics["final_largest_cluster"] = model.tracker.largest_in_window()
    result.notes.append(
        "paper anchor: the run covers ~826 rounds and ends with all 20 "
        "messages transmitted at the same offset each round"
    )
    return result
