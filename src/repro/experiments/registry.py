"""Registry mapping figure ids to their drivers.

Every driver is a callable returning a
:class:`~repro.experiments.result.FigureResult`.  ``fast_kwargs``
holds per-figure argument overrides that shrink horizons/seed counts
to bench-friendly sizes while preserving the paper's shape claims.
"""

from __future__ import annotations

from typing import Callable

from . import (
    fig01,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
)
from .result import FigureResult

__all__ = [
    "FIGURES",
    "FAST_KWARGS",
    "PARALLEL_FIGURES",
    "TOPOLOGY_FIGURES",
    "run_figure",
    "figure_ids",
]

FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig01": fig01.run,
    "fig02": fig02.run,
    "fig03": fig03.run,
    "fig04": fig04.run,
    "fig05": fig05.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig08": fig08.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
}

#: Reduced-scale arguments for quick runs (benchmarks, smoke tests).
#: EXPERIMENTS.md records how each reduction preserves the figure's
#: qualitative claim.
FAST_KWARGS: dict[str, dict] = {
    "fig01": {"count": 400},
    "fig02": {"count": 400, "max_lag": 150},
    "fig03": {"duration": 180.0},
    "fig04": {"horizon": 6e4},
    "fig05": {"rounds": 30},
    "fig06": {"horizon": 6e4},
    "fig07": {"tr_multiples": (0.6, 1.0, 1.4), "horizon": 1e7, "seeds": (1,)},
    "fig08": {"tr_multiples": (2.3, 2.5, 2.8), "horizon": 2e6, "seeds": (1,)},
    "fig09": {},
    "fig10": {"horizon": 4e5, "seeds": (1, 4, 5)},
    "fig11": {"horizon": 4e5, "seeds": (1, 2, 3)},
    "fig12": {"sim_checks": False},
    "fig13": {"steps": 16},
    "fig14": {},
    "fig15": {},
    "fig16": {"n_values": (4, 6, 8), "seeds": (1, 2), "horizon": 2e4},
    "fig17": {
        "p_values": (0.15, 0.45, 1.0),
        "n_nodes": 8,
        "seeds": (1, 2),
        "graph_seeds": (1, 2),
        "horizon": 4e4,
    },
    "fig18": {"n_values": (5, 10), "seeds": (1, 2), "horizon": 1.5e4},
}


#: Figures whose drivers run simulations through the parallel layer
#: and therefore accept ``jobs=``/``cache=`` (see repro.parallel); the
#: rest are analytic or single-trajectory and ignore those settings.
PARALLEL_FIGURES = frozenset(
    {"fig07", "fig08", "fig10", "fig11", "fig12", "fig16", "fig17", "fig18"}
)

#: Figures accepting a single ``topology=`` coupling override (CLI
#: ``--topology``).  fig16-fig18 sweep their own topology grids and
#: are deliberately absent.
TOPOLOGY_FIGURES = frozenset({"fig10", "fig11"})


def figure_ids() -> list[str]:
    """All registered figure ids, in paper order."""
    return sorted(FIGURES)


def run_figure(
    figure_id: str,
    fast: bool = False,
    jobs: int | None = None,
    cache=None,
    checkpoint=None,
    engine: str | None = None,
    topology: str | None = None,
    **overrides,
) -> FigureResult:
    """Run one figure's reproduction.

    Parameters
    ----------
    figure_id:
        "fig01" .. "fig18" (fig16-fig18 are the topology extension,
        not figures of the paper).
    fast:
        Apply the registry's reduced-scale arguments.
    jobs:
        Worker processes for drivers in :data:`PARALLEL_FIGURES`
        (silently ignored elsewhere — the CLI passes it for every
        target).
    cache:
        Optional :class:`~repro.parallel.ResultCache`, same scoping.
    checkpoint:
        Resume support for :data:`PARALLEL_FIGURES` (``True``, a
        journal, or a journal path — see
        :func:`repro.parallel.resolve_checkpoint`); an interrupted
        figure run picks up where it stopped.  Same scoping as
        ``jobs``/``cache``.
    engine:
        Simulation engine for :data:`PARALLEL_FIGURES`
        (``des``/``cascade``/``batch``; validated by
        :func:`repro.core.engines.resolve_engine`).  Same scoping as
        ``jobs``/``cache``: analytic figures ignore it.
    topology:
        Coupling-graph override for :data:`TOPOLOGY_FIGURES`
        (validated by :func:`repro.topo.parse_topology`; CLI
        ``--topology``).  Figures with their own topology grids
        (fig16-fig18) and analytic figures ignore it.
    overrides:
        Explicit keyword arguments for the driver (take precedence
        over the fast defaults).
    """
    if figure_id not in FIGURES:
        raise ValueError(f"unknown figure {figure_id!r}; known: {figure_ids()}")
    if engine is not None:
        from ..core.engines import resolve_engine

        resolve_engine(engine)
    if topology is not None:
        from ..topo import ensure_spec

        topology = ensure_spec(topology).canonical()
    kwargs = dict(FAST_KWARGS.get(figure_id, {})) if fast else {}
    if figure_id in PARALLEL_FIGURES:
        if jobs is not None:
            kwargs["jobs"] = jobs
        if cache is not None:
            kwargs["cache"] = cache
        if checkpoint is not None:
            kwargs["checkpoint"] = checkpoint
        if engine is not None:
            kwargs["engine"] = engine
    if topology is not None and figure_id in TOPOLOGY_FIGURES:
        kwargs["topology"] = topology
    kwargs.update(overrides)
    result = FIGURES[figure_id](**kwargs)
    if fast:
        result.notes.append("reduced-scale (fast) run; see EXPERIMENTS.md for full scale")
    return result
