"""Figure 14: fraction of time unsynchronized, as a function of Tr.

The estimator ``f(N) / (f(N) + g(1))`` swept over Tr shows the sharp
transition from predominately-synchronized to predominately-
unsynchronized as the random component is increased — the abruptness
is the paper's first main result, seen from the equilibrium side.
"""

from __future__ import annotations

from ..core import RouterTimingParameters
from ..markov import fraction_unsynchronized_sweep, transition_sharpness
from .result import FigureResult

__all__ = ["run", "PAPER_PARAMS"]

PAPER_PARAMS = RouterTimingParameters(n_nodes=20, tp=121.0, tc=0.11, tr=0.1)


def run(
    tr_over_tc_min: float = 1.0,
    tr_over_tc_max: float = 2.5,
    steps: int = 60,
) -> FigureResult:
    """Reproduce Figure 14."""
    tc = PAPER_PARAMS.tc
    tr_values = [
        (tr_over_tc_min + (tr_over_tc_max - tr_over_tc_min) * k / (steps - 1)) * tc
        for k in range(steps)
    ]
    curve = fraction_unsynchronized_sweep(PAPER_PARAMS, tr_values)
    points = [(tr / tc, frac) for tr, frac in curve]
    result = FigureResult(
        figure_id="fig14",
        title="The fraction of time unsynchronized, vs the random component Tr",
    )
    result.add_series("fraction_unsynchronized_by_tr_over_tc", points)
    result.metrics["fraction_at_min_tr"] = points[0][1]
    result.metrics["fraction_at_max_tr"] = points[-1][1]
    try:
        width = transition_sharpness(points)
        result.metrics["transition_width_tr_over_tc"] = width
        midpoints = [m for m, f in points if 0.4 <= f <= 0.6]
        if midpoints:
            result.metrics["transition_center_tr_over_tc"] = midpoints[0]
    except ValueError:
        result.metrics["transition_width_tr_over_tc"] = "curve does not span 0.1..0.9"
    result.notes.append(
        "paper anchor: a sharp transition from predominately-synchronized "
        "to predominately-unsynchronized as Tr crosses ~2 Tc"
    )
    return result
