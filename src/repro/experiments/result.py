"""The common result container for figure reproductions.

Every ``figNN`` driver returns a :class:`FigureResult`: named data
series (what the paper plots), headline metrics (what the text
claims), and free-form notes.  ``format_text()`` renders the same
rows/series the paper reports, for terminal consumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["FigureResult"]


@dataclass
class FigureResult:
    """Output of one figure reproduction.

    Attributes
    ----------
    figure_id:
        "fig01" .. "fig15" (or an ablation id).
    title:
        The paper's caption, abbreviated.
    series:
        Named data series; each is a sequence of (x, y) pairs.
    metrics:
        Headline scalar results (loss rates, transition widths, ...).
    notes:
        Caveats: scale reductions, substitutions, seeds.
    """

    figure_id: str
    title: str
    series: dict[str, Sequence[tuple[Any, Any]]] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_series(self, name: str, points: Sequence[tuple[Any, Any]]) -> None:
        """Attach a named series."""
        if name in self.series:
            raise ValueError(f"duplicate series {name!r}")
        self.series[name] = list(points)

    def format_text(self, max_points: int = 25) -> str:
        """Human-readable rendering: metrics first, then sampled series."""
        lines = [f"== {self.figure_id}: {self.title} =="]
        for key, value in self.metrics.items():
            lines.append(f"  {key}: {_fmt(value)}")
        for name, points in self.series.items():
            lines.append(f"  -- series {name!r} ({len(points)} points) --")
            for x, y in _thin(points, max_points):
                lines.append(f"    {_fmt(x):>14}  {_fmt(y)}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.4g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def _thin(points: Sequence[tuple[Any, Any]], limit: int) -> list[tuple[Any, Any]]:
    if len(points) <= limit:
        return list(points)
    stride = max(1, len(points) // limit)
    thinned = list(points[::stride])
    if thinned[-1] != points[-1]:
        thinned.append(points[-1])
    return thinned
