"""Figure 8: time to break up versus the random component Tr.

Three simulations start fully synchronized (the state a wave of
triggered updates leaves behind) with Tr = 2.3 Tc, 2.5 Tc, and 2.8 Tc.
As Tr grows, break-up accelerates: the paper's runs stay synchronized
at 2.3 Tc, break after 4,791 rounds (7 days) at 2.5 Tc, and after 300
rounds (10 hours) at 2.8 Tc.
"""

from __future__ import annotations

from ..core import RouterTimingParameters, sweep_tr
from .result import FigureResult

__all__ = ["run", "PAPER_PARAMS"]

PAPER_PARAMS = RouterTimingParameters(n_nodes=20, tp=121.0, tc=0.11, tr=0.1)


def run(
    tr_multiples: tuple[float, ...] = (2.3, 2.5, 2.8),
    horizon: float = 1e7,
    seeds: tuple[int, ...] = (1,),
    jobs: int = 1,
    cache=None,
    checkpoint=None,
    engine: str = "cascade",
) -> FigureResult:
    """Reproduce Figure 8 (pass a smaller horizon for a fast run).

    The (Tr, seed) grid runs through the parallel layer; ``jobs``,
    ``cache``, and ``engine`` change wall-clock only.
    """
    tc = PAPER_PARAMS.tc
    result = FigureResult(
        figure_id="fig08",
        title="Simulations starting with synchronized updates, varying Tr",
    )
    runs = sweep_tr(
        PAPER_PARAMS, [m * tc for m in tr_multiples], horizon,
        direction="break_up", seeds=seeds, engine=engine, jobs=jobs,
        cache=cache, checkpoint=checkpoint,
    )
    points = []
    for multiple in tr_multiples:
        params = PAPER_PARAMS.with_tr(multiple * tc)
        finished = [
            r.time for r in runs if r.parameter == multiple * tc and r.occurred
        ]
        mean = sum(finished) / len(finished) if finished else None
        points.append((multiple, mean))
        result.metrics[f"breakup_time_tr_{multiple}tc"] = (
            mean if mean is not None else f"not within {horizon:g}s"
        )
        if mean is not None:
            result.metrics[f"breakup_rounds_tr_{multiple}tc"] = round(
                mean / params.round_length
            )
    result.add_series("mean_breakup_time_by_tr_over_tc", points)
    result.notes.append(
        "paper anchor: synchronization not broken at 2.3 Tc, broken after "
        "4,791 rounds at 2.5 Tc and 300 rounds at 2.8 Tc — break-up time "
        "falls steeply with Tr"
    )
    return result
