"""Figure 10: expected time to reach cluster size i, from size 1.

The solid line is the Markov-chain prediction ``(Tp + Tc) * f(i)``
with the paper's fitted ``f(2) = 19`` rounds; the dashed lines are
simulations (first time the system exhibits a cluster of size >= i).
The paper notes its analysis runs 2-3x above the simulation average —
the comparison here checks that same shape and gap.
"""

from __future__ import annotations

from ..core import CascadeModel, FirstPassageEnsemble, RouterTimingParameters
from ..markov import synchronization_times
from .result import FigureResult

__all__ = ["run", "simulate_first_passage_up"]

PAPER_PARAMS = RouterTimingParameters(n_nodes=20, tp=121.0, tc=0.11, tr=0.1)


def simulate_first_passage_up(
    params: RouterTimingParameters,
    horizon: float,
    seed: int,
) -> dict[int, float]:
    """First time each cluster size is reached, from an unsync start."""
    model = CascadeModel(params, seed=seed, initial_phases="unsynchronized")
    model.run(until=horizon, stop_on_full_sync=True)
    return dict(model.tracker.first_time_at_least)


def run(
    horizon: float = 7e5,
    seeds: tuple[int, ...] = tuple(range(1, 21)),
    f2: float = 19.0,
    jobs: int = 1,
    cache=None,
    checkpoint=None,
    engine: str = "cascade",
    topology: str = "clique",
) -> FigureResult:
    """Reproduce Figure 10 (paper scale: 20 seeds, ~600,000 s axis).

    ``jobs`` fans the seeds out over worker processes; ``cache`` (a
    :class:`~repro.parallel.ResultCache`) makes repeated runs free;
    ``checkpoint`` journals completed seeds so an interrupted run
    resumes (CLI ``--resume``); ``engine`` picks the simulation
    backend (``cascade``/``batch``/``des``).  None of them changes
    the numbers.  ``topology`` (CLI ``--topology``) replaces the
    paper's fully-coupled graph with an arbitrary coupling — an
    off-paper what-if; the Markov analysis series assumes the clique.
    """
    from ..obs import obs

    with obs().span("figure.run", figure="fig10", seeds=len(seeds), jobs=jobs):
        return _run(horizon, seeds, f2, jobs, cache, checkpoint, engine, topology)


def _run(
    horizon, seeds, f2, jobs, cache, checkpoint, engine, topology
) -> FigureResult:
    analysis = synchronization_times(PAPER_PARAMS, f2=f2)
    round_seconds = analysis.seconds_per_round
    result = FigureResult(
        figure_id="fig10",
        title="Expected time to reach cluster size i, from size 1 (Tr = 0.1 s)",
    )
    result.add_series(
        "analysis_seconds_by_size",
        [(i + 1, f * round_seconds) for i, f in enumerate(analysis.f)],
    )
    ensemble = FirstPassageEnsemble(
        params=PAPER_PARAMS, horizon=horizon, seeds=seeds, direction="up",
        engine=engine, jobs=jobs, cache=cache, checkpoint=checkpoint,
        topology=topology,
    ).run()
    if topology != "clique":
        result.notes.append(
            f"simulation coupled over topology={topology!r}; the analysis "
            "curve still assumes the paper's fully-coupled model"
        )
    mean_points = [
        (size, aggregate.mean)
        for size, aggregate in ensemble.curve()
        if aggregate.times
    ]
    result.add_series("simulation_mean_seconds_by_size", mean_points)
    result.metrics["analysis_f_n_seconds"] = analysis.seconds_to_synchronize
    result.metrics["seeds"] = len(seeds)
    terminal = ensemble.terminal_result()
    result.metrics["runs_synchronized"] = len(terminal.times)
    if terminal.times:
        result.metrics["simulation_mean_sync_seconds"] = terminal.mean
        result.metrics["analysis_over_simulation_ratio"] = (
            analysis.seconds_to_synchronize / terminal.mean
        )
    result.notes.append(
        "paper anchor: analysis exceeds the simulation average by 2-3x but "
        "the curves have the same shape"
    )
    return result
