"""Command-line interface for the figure reproductions.

Usage::

    repro-sync list
    repro-sync fig04 [--fast]
    repro-sync all --fast
    repro-sync fig10 --jobs 4          # fan seed runs over 4 processes
    repro-sync fig10 --no-cache        # force recomputation
    repro-sync fig10 --resume          # journal + resume interrupted runs
    repro-sync fig10 --engine batch    # batched SoA kernel (same numbers)
    repro-sync bench                   # parallel-layer perf snapshot
    repro-sync bench --obs             # obs-overhead snapshot (BENCH_obs.json)
    repro-sync bench --serve           # loopback serving snapshot (BENCH_serve.json)
    repro-sync bench --batch           # batched-kernel snapshot (BENCH_batch.json)
    repro-sync serve --port 8793       # run the simulation-serving API
    repro-sync loadgen --clients 8     # seeded load against a running server
    repro-sync cache verify            # audit results/cache/ entries
    repro-sync cache repair            # quarantine corrupt, sweep stale tmp
    repro-sync cache clear             # drop every cached result
    repro-sync claims list             # inventory single-flight claim files
    repro-sync claims gc               # prune stale claims + tombstones
    repro-sync campaign run study.toml           # run a parameter study
    repro-sync campaign run study.toml --shard 0/4   # one shard of it
    repro-sync campaign run study.toml --dispatch serve --endpoints host:8793
    repro-sync campaign status study.toml --shard 0/4    # progress per shard
    repro-sync campaign report study.toml -o report.json # tables from cache
    repro-sync campaign shard study.toml --shard 0/4     # shard manifest
    repro-sync campaign report study.toml --plot         # ASCII curves
    repro-sync bench --campaign        # dispatch-overhead snapshot (BENCH_campaign.json)
    repro-sync predict build table-spec.toml     # campaign -> prediction table
    repro-sync predict eval TABLE --point 10,20,0.3,0.1  # one surrogate answer
    repro-sync predict verify TABLE    # audit bounds on fresh seeds
    repro-sync serve --predict-table TABLE       # enable POST /v1/predict
    repro-sync bench --predict         # surrogate-vs-simulate snapshot (BENCH_predict.json)
    repro-sync fig10 --trace results/trace.jsonl   # record a trace
    repro-sync obs summary results/trace.jsonl     # aggregate it
    repro-sync obs export-trace results/trace.jsonl  # -> Perfetto JSON
    repro-sync fig10 --profile         # merged cProfile top-N

(``python -m repro`` is equivalent.)  Simulation-backed figures cache
completed runs under ``results/cache/`` keyed by job content, so
re-running a figure is nearly free; ``--no-cache`` opts out and
``--jobs`` sets the process-pool width (results are identical either
way).  ``--resume`` additionally journals every completed simulation
to ``results/checkpoints/<run-id>.jsonl`` as it finishes, so a run
killed mid-way (Ctrl-C, OOM, power loss) restarts from where it
stopped — pass it from the start on long runs.

Observability (``repro.obs``) is strictly inert — every figure and
table is byte-identical with it on or off.  ``--trace PATH`` records
spans/events/metrics to a JSONL log (the ``obs`` target reads it);
``--metrics`` prints the metric snapshot to stderr after the run;
``--profile`` merges cProfile across every worker process;
``--verbose``/``--quiet`` raise/lower which structured events reach
the terminal.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .registry import figure_ids, run_figure

__all__ = ["main", "build_parser"]


def _render_plots(result) -> str:
    """ASCII-plot every series of a figure result (metrics first)."""
    from ..analysis.asciiplot import scatter

    lines = [f"== {result.figure_id}: {result.title} =="]
    for key, value in result.metrics.items():
        lines.append(f"  {key}: {value}")
    for name, points in result.series.items():
        numeric = [
            (x, y) for x, y in points
            if isinstance(x, (int, float)) and isinstance(y, (int, float))
        ]
        lines.append("")
        try:
            lines.append(scatter(numeric, title=name))
        except ValueError as error:
            lines.append(f"  [series {name!r} not plottable: {error}]")
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-sync",
        description=(
            "Reproduce figures from Floyd & Jacobson, 'The Synchronization "
            "of Periodic Routing Messages' (SIGCOMM 1993)."
        ),
    )
    parser.add_argument(
        "target",
        help=(
            "a figure id (fig01..fig18), 'all', 'list', 'bench', 'cache', "
            "'claims', 'campaign', 'predict', 'obs', 'serve', or 'loadgen'"
        ),
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help=(
            "for 'cache': verify (default) | repair | clear; "
            "for 'claims': list (default) | gc; "
            "for 'campaign': run (default) | status | report | shard; "
            "for 'predict': build (default) | eval | verify; "
            "for 'obs': summary (default) | export-trace | top"
        ),
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help=(
            "for the 'obs' target: the JSONL trace log to read "
            "(default results/trace.jsonl); for 'campaign': the "
            "campaign spec file (.toml or .json); for 'predict': the "
            "spec file (build) or a table path / 16-hex table id "
            "(eval, verify)"
        ),
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use reduced-scale parameters (seconds instead of minutes)",
    )
    parser.add_argument(
        "--max-points",
        type=int,
        default=25,
        help="series points to print per figure (default 25)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render each series as an ASCII plot instead of a table",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for simulation fan-out (default: 1 for "
            "figures, the CPU count for 'bench'); results do not "
            "depend on this"
        ),
    )
    parser.add_argument(
        "--engine",
        default=None,
        metavar="NAME",
        help=(
            "simulation engine for figures, sweeps, and serving: des, "
            "cascade (default), or batch; every engine produces "
            "bit-identical results for the same seed"
        ),
    )
    parser.add_argument(
        "--topology",
        default=None,
        metavar="SPEC",
        help=(
            "coupling graph for figures that accept one (fig10/fig11): "
            "clique (default), ring, star, tree(b=B), "
            "erdos_renyi(p=P,seed=S), or switching(a|b,period=T); "
            "non-clique couplings are an off-paper what-if"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache (results/cache/)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "journal completed simulations under results/checkpoints/ and "
            "resume any interrupted run of the same figure; pass it from "
            "the start on long runs (results do not depend on this)"
        ),
    )
    parser.add_argument(
        "--cache-root",
        default=None,
        metavar="DIR",
        help="cache directory for the 'cache' target (default results/cache)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "record spans/events/metrics and write a JSONL trace log to "
            "PATH after the run (read it back with the 'obs' target); "
            "results do not depend on this"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect metrics and print the snapshot to stderr after the run",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "profile the run under cProfile (merged across worker "
            "processes) and print the top functions to stderr"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print info-level structured events (resumes, retries) as they happen",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="silence warning-level events (errors still print)",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help=(
            "for the 'bench' target: measure observability on/off overhead "
            "and write BENCH_obs.json instead of the parallel benchmark"
        ),
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help=(
            "for the 'bench' target: run the loopback serving benchmark "
            "and write BENCH_serve.json instead of the parallel benchmark"
        ),
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help=(
            "for the 'bench' target: benchmark the batched kernel "
            "(engine=batch, both backends) against the serial cascade "
            "engine and write BENCH_batch.json"
        ),
    )
    parser.add_argument(
        "--campaign",
        action="store_true",
        help=(
            "for the 'bench' target: benchmark campaign dispatch (local "
            "pool vs loopback serve fleet, warm-cache row) and write "
            "BENCH_campaign.json"
        ),
    )
    parser.add_argument(
        "--predict",
        action="store_true",
        help=(
            "for the 'bench' target: benchmark the prediction tier "
            "(surrogate vs warm-cache /v1/simulate, bound audit, "
            "fallback byte-identity) and write BENCH_predict.json"
        ),
    )
    predict = parser.add_argument_group(
        "prediction options (the 'predict' target)"
    )
    predict.add_argument(
        "--holdout",
        type=int,
        default=None,
        metavar="N",
        help=(
            "predict build: seeds per grid point held out of "
            "calibration to measure each cell's bound (default: a "
            "quarter of the spec's seeds, at least 1)"
        ),
    )
    predict.add_argument(
        "--point",
        default=None,
        metavar="N,TP,TC,TR",
        help="predict eval: the query point, comma-separated",
    )
    predict.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="X",
        help=(
            "predict eval: maximum acceptable relative error bound; "
            "an answer whose bound exceeds it reports fallback"
        ),
    )
    predict.add_argument(
        "--fresh-seeds",
        type=int,
        default=4,
        metavar="N",
        help=(
            "predict verify: fresh seeds per valid cell to audit the "
            "bounds against (default 4)"
        ),
    )
    campaign = parser.add_argument_group(
        "campaign options (the 'campaign' target)"
    )
    campaign.add_argument(
        "--shard",
        default=None,
        metavar="K/M",
        help=(
            "campaign: run/inspect shard K of M (0-based; default 0/1, "
            "the whole campaign); the shard map is a pure function of "
            "the spec, so any host can claim any shard"
        ),
    )
    campaign.add_argument(
        "--dispatch",
        choices=("local", "serve"),
        default="local",
        help=(
            "campaign run: execute on the local process pool (default) "
            "or fan out to serve endpoints (see --endpoints)"
        ),
    )
    campaign.add_argument(
        "--endpoints",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help=(
            "campaign run --dispatch serve: the serve endpoints to fan "
            "out to (default 127.0.0.1:8793)"
        ),
    )
    campaign.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help=(
            "campaign run: jobs per commit chunk — the most compute a "
            "kill can lose (default 256)"
        ),
    )
    campaign.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "claims gc: prune claim files/tombstones older than this "
            "(default: the claim TTL)"
        ),
    )
    serving = parser.add_argument_group(
        "serving options (the 'serve' and 'loadgen' targets)"
    )
    serving.add_argument(
        "--host",
        default="127.0.0.1",
        help="listen/connect address (default 127.0.0.1)",
    )
    serving.add_argument(
        "--port",
        type=int,
        default=8793,
        help="listen/connect port; 0 asks the OS for a free port (default 8793)",
    )
    serving.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help=(
            "serve: admission limit — requests beyond N in flight shed "
            "with 429 Retry-After (default 64)"
        ),
    )
    serving.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "serve: per-request deadline; computations that outlive it "
            "answer 504 (default: none)"
        ),
    )
    serving.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "serve: worker processes; >= 2 runs the prefork supervisor "
            "(bind once, crash-respawn, cross-process single-flight; "
            "default 1)"
        ),
    )
    serving.add_argument(
        "--predict-table",
        default=None,
        metavar="TABLE",
        help=(
            "serve: load a prediction table (file path or 16-hex id "
            "under the cache root) and answer POST /v1/predict from "
            "it; without this every predict request falls back to "
            "simulation"
        ),
    )
    serving.add_argument(
        "--clients",
        type=int,
        default=4,
        metavar="N",
        help="loadgen: concurrent periodic clients (default 4)",
    )
    serving.add_argument(
        "--period",
        type=float,
        default=1.0,
        metavar="TP",
        help="loadgen: mean request period per client in seconds (default 1)",
    )
    serving.add_argument(
        "--load-jitter",
        type=float,
        default=0.5,
        metavar="TR",
        help=(
            "loadgen: timer jitter half-width — intervals are uniform in "
            "[TP-TR, TP+TR], the paper's own randomization (default 0.5)"
        ),
    )
    serving.add_argument(
        "--duration",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="loadgen: length of the generated schedule (default 10)",
    )
    serving.add_argument(
        "--seed",
        type=int,
        default=1,
        help="loadgen: seed for the schedule and spec rotation (default 1)",
    )
    serving.add_argument(
        "--real-time",
        action="store_true",
        help=(
            "loadgen: actually sleep between ticks (threads + wall "
            "clock) instead of replaying the schedule as fast as possible"
        ),
    )
    serving.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "loadgen: honor 429/503 Retry-After hints with up to N "
            "deterministic retries per request (default 0: surface "
            "backpressure)"
        ),
    )
    serving.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "loadgen: self-host a prefork fleet (--workers >= 2), kill and "
            "respawn workers mid-load, inject claim-orphan/crash faults, "
            "and audit the exactly-once claim ledger"
        ),
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help=(
            "for 'obs export-trace': the Chrome/Perfetto JSON destination "
            "(default: the trace path with a .chrome.json suffix)"
        ),
    )
    return parser


def _run_cache(args) -> int:
    """The 'cache' target: verify / repair / clear the result cache."""
    from ..parallel import ResultCache

    cache = ResultCache(args.cache_root)
    action = args.action or "verify"
    if action == "verify":
        report = cache.verify()
        print(
            f"cache {cache.root}: {report['entries']} entries, "
            f"{report['valid']} valid, {len(report['corrupt'])} corrupt, "
            f"{len(report['stale_tmp'])} stale tmp, "
            f"{report['quarantined']} quarantined"
        )
        for name, why in report["corrupt"].items():
            print(f"  corrupt: {name}: {why}")
        for name in report["stale_tmp"]:
            print(f"  stale tmp: {name}")
        claims = report["claims"]
        if any(claims.values()):
            print(
                f"  claims/: {claims['records']} record(s), "
                f"{claims['tombstones']} tombstone(s), "
                f"{claims['beats']} beat temp(s) "
                "(prune with 'claims gc')"
            )
        if report["corrupt"] or report["stale_tmp"]:
            print("run 'cache repair' to quarantine/sweep")
            return 1
        return 0
    if action == "repair":
        done = cache.repair()
        print(
            f"cache {cache.root}: quarantined {len(done['quarantined'])} "
            f"corrupt entr{'y' if len(done['quarantined']) == 1 else 'ies'}, "
            f"removed {len(done['removed_tmp'])} stale tmp file(s)"
        )
        return 0
    if action == "clear":
        removed = cache.clear()
        print(f"cache {cache.root}: removed {removed} entries")
        return 0
    print(
        f"error: unknown cache action {action!r} (use verify, repair, or clear)",
        file=sys.stderr,
    )
    return 2


def _run_claims(args) -> int:
    """The 'claims' target: inventory / gc single-flight claim files."""
    from pathlib import Path

    from ..parallel import ClaimRegistry

    root = Path(args.cache_root or "results/cache") / "claims"
    registry = ClaimRegistry(root)
    action = args.action or "list"
    if action == "list":
        inv = registry.inventory()
        print(
            f"claims {registry.root}: {len(inv['claims'])} record(s), "
            f"{len(inv['tombstones'])} tombstone(s), "
            f"{len(inv['beats'])} beat temp(s), "
            f"{inv['publishes']} publish(es)"
        )
        for record in inv["claims"]:
            age = record["heartbeat_age"]
            age_text = f"{age:.1f}s" if age is not None else "?"
            print(
                f"  {record['status']:>5}: {record['key'][:16]} "
                f"pid={record['pid']} heartbeat_age={age_text}"
            )
        return 0
    if action == "gc":
        done = registry.gc(max_age=args.max_age)
        print(
            f"claims {registry.root}: removed {len(done['removed_claims'])} "
            f"stale claim(s), {len(done['removed_tombstones'])} "
            f"tombstone(s), {len(done['removed_beats'])} beat temp(s)"
        )
        return 0
    print(
        f"error: unknown claims action {action!r} (use list or gc)",
        file=sys.stderr,
    )
    return 2


def _run_campaign(args) -> int:
    """The 'campaign' target: run / status / report / shard a study."""
    from ..campaign import (
        LocalDispatcher,
        ServeDispatcher,
        build_report,
        campaign_status,
        format_report,
        format_status,
        load_spec,
        parse_endpoints,
        parse_shard,
        run_campaign,
        shard_manifest,
        write_report,
    )
    from ..parallel import ResultCache

    action = args.action or "run"
    if action not in ("run", "status", "report", "shard"):
        print(
            f"error: unknown campaign action {action!r} "
            "(use run, status, report, or shard)",
            file=sys.stderr,
        )
        return 2
    if args.path is None:
        print(
            "error: the campaign target needs a spec file path "
            "(e.g. campaign run study.toml)",
            file=sys.stderr,
        )
        return 2
    try:
        spec = load_spec(args.path)
    except (OSError, ValueError) as error:
        print(f"error: cannot load campaign spec {args.path}: {error}", file=sys.stderr)
        return 2
    try:
        shard, num_shards = parse_shard(args.shard or "0/1")
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_root)

    if action == "shard":
        counts = shard_manifest(spec, num_shards)
        print(
            f"campaign {spec.campaign_id()} name={spec.name} "
            f"total={spec.total_jobs} shards={num_shards}"
        )
        for k, count in enumerate(counts):
            marker = " <- selected" if (k == shard and num_shards > 1) else ""
            print(f"  shard {k}/{num_shards}: {count} job(s){marker}")
        return 0

    if action == "status":
        status = campaign_status(spec, num_shards=num_shards, cache=cache)
        print(format_status(status))
        return 0 if status["complete"] else 1

    if action == "report":
        report = build_report(spec, cache)
        if args.output:
            target = write_report(report, args.output)
            print(f"report written to {target}")
        elif args.plot:
            from ..campaign.report import plot_report

            print(plot_report(report))
        else:
            print(format_report(report))
        if not report["complete"]:
            print(
                f"warning: {report['missing']} job(s) missing from the "
                "cache; statistics are provisional (run the campaign to "
                "completion)",
                file=sys.stderr,
            )
            return 1
        return 0

    # action == "run"
    if args.dispatch == "serve":
        try:
            endpoints = parse_endpoints(args.endpoints or "127.0.0.1:8793")
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        dispatcher = ServeDispatcher(endpoints=endpoints)
    else:
        dispatcher = LocalDispatcher(jobs=args.jobs or 1)

    def console(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    kwargs = {}
    if args.chunk_size is not None:
        kwargs["chunk_size"] = args.chunk_size
    try:
        summary = run_campaign(
            spec,
            shard=shard,
            num_shards=num_shards,
            dispatcher=dispatcher,
            cache=cache,
            console=console,
            **kwargs,
        )
    except (OSError, RuntimeError, ValueError) as error:
        print(f"error: campaign run failed: {error}", file=sys.stderr)
        return 1
    print(summary.summary_line())
    return 0 if summary.complete else 1


def _run_serve(args) -> int:
    """The 'serve' target: run the simulation-serving API until SIGTERM."""
    from ..serve import ServeConfig, serve_forever

    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs or 1,
        queue_depth=args.queue_depth,
        deadline=args.deadline,
        cache_root=None if args.no_cache else (args.cache_root or "results/cache"),
        checkpoint=bool(args.resume),
        engine=args.engine or "cascade",
        workers=args.workers,
        predict_table=args.predict_table,
    )

    def announce(line: str) -> None:
        print(line, flush=True)

    return serve_forever(config, announce=announce)


def _run_loadgen(args) -> int:
    """The 'loadgen' target: seeded load against a running server.

    ``--chaos`` self-hosts a prefork fleet instead and runs the load
    while killing/respawning workers and injecting claim-protocol
    faults — the CLI spelling of the chaos-under-load suite.
    """
    from ..serve import LoadPlan, format_report, run_load

    plan = LoadPlan(
        clients=args.clients,
        period=args.period,
        jitter=args.load_jitter,
        duration=args.duration,
        seed=args.seed,
        real_time=args.real_time or args.chaos,
        retries=args.retries if not args.chaos else max(args.retries, 3),
    )
    if args.chaos:
        return _run_chaos_loadgen(args, plan)
    try:
        report = run_load(plan, args.host, args.port)
    except (ConnectionError, OSError) as error:
        print(
            f"error: cannot reach server at {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 2
    print(format_report(report))
    return 0 if report["identical_payloads_per_key"] else 1


def _run_chaos_loadgen(args, plan) -> int:
    from ..parallel import FaultPlan
    from ..serve import ServeConfig, format_report, run_chaos_load

    seeds = tuple(
        spec["seed"] for spec in plan.specs[: max(1, len(plan.specs) // 2)]
    )
    config = ServeConfig(
        host=args.host,
        port=0,  # the fleet is self-hosted; never squat the real port
        jobs=args.jobs or 1,
        queue_depth=args.queue_depth,
        deadline=args.deadline or 60.0,
        cache_root=args.cache_root or "results/chaos_cache",
        engine=args.engine or "cascade",
        workers=max(2, args.workers),
        claim_ttl=2.0,
        faults=FaultPlan.of(
            FaultPlan.serve_crash(seeds=seeds[:1]),
            FaultPlan.claim_orphan(seeds=seeds[-1:]),
        ),
    )
    report = run_chaos_load(plan, config)
    print(format_report(report))
    chaos = report["chaos"]
    healthy = (
        report["identical_payloads_per_key"]
        and chaos["exactly_once_per_key"]
        and chaos["no_request_lost"]
        and chaos["drain_exit_code"] == 0
    )
    return 0 if healthy else 1


def _run_predict(args) -> int:
    """The 'predict' target: build / eval / verify prediction tables."""
    import json as _json

    from ..campaign import load_spec
    from ..parallel import ResultCache
    from ..predict import (
        SurrogateEvaluator,
        build_table,
        resolve_table,
        save_table,
        verify_table,
    )

    action = args.action or "build"
    if action not in ("build", "eval", "verify"):
        print(
            f"error: unknown predict action {action!r} "
            "(use build, eval, or verify)",
            file=sys.stderr,
        )
        return 2
    if args.path is None:
        print(
            "error: the predict target needs a path — a campaign spec "
            "file (build) or a table path / 16-hex id (eval, verify)",
            file=sys.stderr,
        )
        return 2
    cache = ResultCache(args.cache_root)

    if action == "build":
        try:
            spec = load_spec(args.path)
        except (OSError, ValueError) as error:
            print(
                f"error: cannot load campaign spec {args.path}: {error}",
                file=sys.stderr,
            )
            return 2

        def console(line: str) -> None:
            print(line, file=sys.stderr, flush=True)

        try:
            table = build_table(
                spec, cache, holdout_count=args.holdout, console=console
            )
        except (OSError, ValueError) as error:
            print(f"error: predict build failed: {error}", file=sys.stderr)
            return 1
        target = save_table(table, args.cache_root)
        valid = sum(1 for cell in table["cells"] if cell["valid"])
        print(
            f"table {table['table_id']} cells={len(table['cells'])} "
            f"valid={valid} holdout={table['holdout_count']} -> {target}"
        )
        return 0

    try:
        table = resolve_table(args.path, args.cache_root)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if action == "eval":
        if args.point is None:
            print(
                "error: predict eval needs --point N,TP,TC,TR",
                file=sys.stderr,
            )
            return 2
        parts = args.point.split(",")
        if len(parts) != 4:
            print(
                f"error: --point must be N,TP,TC,TR; got {args.point!r}",
                file=sys.stderr,
            )
            return 2
        try:
            n_nodes = int(parts[0])
            tp, tc, tr = (float(part) for part in parts[1:])
        except ValueError as error:
            print(f"error: bad --point value: {error}", file=sys.stderr)
            return 2
        answer = SurrogateEvaluator(table).predict(n_nodes, tp, tc, tr)
        if (
            args.tolerance is not None
            and answer["status"] == "ok"
            and answer["bound_rel"] > args.tolerance
        ):
            answer["status"] = "tolerance_exceeded"
        print(_json.dumps(answer, sort_keys=True, indent=1))
        return 0 if answer["status"] == "ok" else 1

    # action == "verify"
    audit = verify_table(
        table, cache, seed_count=args.fresh_seeds, jobs=args.jobs
    )
    print(
        f"table {audit['table_id']} checked={audit['cells_checked']} "
        f"skipped={audit['cells_skipped']} fresh_seeds="
        f"{audit['seed_start']}..{audit['seed_start'] + audit['seed_count'] - 1} "
        f"all_in_bound={str(audit['all_in_bound']).lower()}"
    )
    for row in audit["rows"]:
        rel = (
            f"{row['rel_error']:.3f}" if row["rel_error"] is not None else "-"
        )
        print(
            f"  n={row['n_nodes']} tp={row['tp']:g} tc={row['tc']:g} "
            f"tr={row['tr']:g}: rel_error={rel} "
            f"bound={row['bound_rel']:.3f} "
            f"in_bound={str(row['in_bound']).lower()}"
        )
    return 0 if audit["all_in_bound"] else 1


def _run_bench(args) -> int:
    """The 'bench' target: emit and print the parallel perf snapshot."""
    if args.predict:
        from ..predict.bench import format_predict_table, run_predict_benchmark

        output = "BENCH_predict.json"
        snapshot = run_predict_benchmark(jobs=args.jobs, output=output)
        print(format_predict_table(snapshot))
        print(f"snapshot written to {output}")
        ok = (
            snapshot["verify"]["all_in_bound"]
            and snapshot["fallback"]["byte_identical"]
            and snapshot["fallback"]["out_of_range_falls_back"]
        )
        return 0 if ok else 1
    if args.campaign:
        from ..campaign.bench import format_campaign_table, run_campaign_benchmark

        output = "BENCH_campaign.json"
        snapshot = run_campaign_benchmark(jobs=args.jobs, output=output)
        print(format_campaign_table(snapshot))
        print(f"snapshot written to {output}")
        ok = (
            snapshot["reports_identical_local_vs_serve"]
            and snapshot["warm_served_entirely_from_cache"]
        )
        return 0 if ok else 1
    if args.batch:
        from ..parallel import format_batch_table, run_batch_benchmark

        output = "BENCH_batch.json"
        snapshot = run_batch_benchmark(jobs=args.jobs, output=output)
        print(format_batch_table(snapshot))
        print(f"snapshot written to {output}")
        return 0 if snapshot["results_identical_across_configs"] else 1
    if args.serve:
        from ..serve.bench import format_serve_table, run_serve_benchmark

        output = "BENCH_serve.json"
        snapshot = run_serve_benchmark(jobs=args.jobs, output=output)
        print(format_serve_table(snapshot))
        print(f"snapshot written to {output}")
        fleet = snapshot.get("fleet") or {}
        ok = (
            snapshot["payloads_identical_cold_vs_warm"]
            and snapshot["warm_served_entirely_from_cache"]
            and all(
                row["payloads_identical_cold_vs_warm"]
                for row in fleet.get("sweep", ())
            )
            and (
                not fleet
                or (
                    fleet["restart"]["exactly_once_per_key"]
                    and fleet["restart"]["drain_exit_code"] == 0
                )
            )
        )
        return 0 if ok else 1
    if args.obs:
        from ..obs.bench import format_obs_table, run_obs_benchmark

        output = "BENCH_obs.json"
        snapshot = run_obs_benchmark(output=output)
        print(format_obs_table(snapshot))
        print(f"snapshot written to {output}")
        ok = snapshot["within_budget"] and snapshot["results_identical_with_obs"]
        return 0 if ok else 1
    from ..parallel import format_table, run_benchmark

    output = "BENCH_parallel.json"
    snapshot = run_benchmark(jobs=args.jobs, output=output)
    print(format_table(snapshot))
    print(f"snapshot written to {output}")
    return 0 if snapshot["results_identical_across_configs"] else 1


def _run_obs(args) -> int:
    """The 'obs' target: read a JSONL trace log back."""
    from ..obs.export import read_trace, summarize_trace, write_chrome_trace

    action = args.action or "summary"
    path = args.path or "results/trace.jsonl"
    if action not in ("summary", "export-trace", "top"):
        print(
            f"error: unknown obs action {action!r} "
            "(use summary, export-trace, or top)",
            file=sys.stderr,
        )
        return 2
    try:
        if action == "export-trace":
            dest = write_chrome_trace(path, args.output)
            print(
                f"chrome trace written to {dest} "
                "(open in chrome://tracing or https://ui.perfetto.dev)"
            )
            return 0
        records = read_trace(path)
    except OSError as error:
        print(f"error: cannot read trace {path}: {error}", file=sys.stderr)
        return 2
    if action == "summary":
        print(summarize_trace(records))
        return 0
    from ..obs.profile import format_top

    print(format_top(records.get("profile", [])))
    return 0


def _configure_obs(args) -> bool:
    """Turn the global obs runtime on per the flags; True if configured."""
    wants = (
        args.trace or args.metrics or args.profile or args.quiet or args.verbose
    )
    if not wants:
        return False
    from ..obs import ERROR, INFO, configure

    console = INFO if args.verbose else (ERROR if args.quiet else None)
    configure(
        enabled=bool(args.trace or args.metrics),
        profile=args.profile,
        console_level=console,
    )
    return True


def _finalize_obs(args) -> None:
    """Write/print the collected observability artifacts, then reset.

    Everything lands on stderr so stdout — the experiment's actual
    output — stays byte-identical with observability off.
    """
    from ..obs import obs, reset

    o = obs()
    try:
        if args.trace:
            from ..obs.export import write_trace

            path = write_trace(
                args.trace,
                spans=o.tracer.records,
                events=o.events.events,
                metrics=o.metrics.snapshot(),
                profile=o.profile_rows,
                meta={"trace_id": o.tracer.trace_id},
            )
            print(f"trace written to {path}", file=sys.stderr)
        if args.metrics:
            print("metrics:", file=sys.stderr)
            for name, state in sorted(o.metrics.snapshot().items()):
                if state.get("kind") == "histogram":
                    print(
                        f"  {name}: n={state['count']} "
                        f"mean={state['mean']:.6f}s sum={state['sum']:.6f}s",
                        file=sys.stderr,
                    )
                else:
                    print(f"  {name}: {state.get('value', 0):g}", file=sys.stderr)
        if args.profile:
            from ..obs.profile import format_top

            print(format_top(o.profile_rows), file=sys.stderr)
    finally:
        reset()


def _dispatch(args) -> int:
    """Route one parsed invocation to its target handler."""
    if args.target == "cache":
        return _run_cache(args)
    if args.target == "claims":
        return _run_claims(args)
    if args.target == "campaign":
        return _run_campaign(args)
    if args.target == "predict":
        return _run_predict(args)
    if args.target == "obs":
        return _run_obs(args)
    if args.target == "list":
        for figure_id in figure_ids():
            print(figure_id)
        return 0
    if args.target == "bench":
        return _run_bench(args)
    if args.target == "serve":
        return _run_serve(args)
    if args.target == "loadgen":
        return _run_loadgen(args)
    cache = None
    if not args.no_cache:
        from ..parallel import ResultCache

        cache = ResultCache()
    checkpoint = True if args.resume else None
    targets = figure_ids() if args.target == "all" else [args.target]
    try:
        for figure_id in targets:
            result = run_figure(
                figure_id,
                fast=args.fast,
                jobs=args.jobs,
                cache=cache,
                checkpoint=checkpoint,
                engine=args.engine,
                topology=args.topology,
            )
            if args.plot:
                print(_render_plots(result))
            else:
                print(result.format_text(max_points=args.max_points))
            print()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.quiet and args.verbose:
        print("error: --quiet and --verbose are mutually exclusive", file=sys.stderr)
        return 2
    if sum((args.obs, args.serve, args.batch, args.campaign, args.predict)) > 1:
        print(
            "error: --obs, --serve, --batch, --campaign, and --predict "
            "are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.engine is not None:
        from ..core.engines import resolve_engine

        try:
            resolve_engine(args.engine)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.topology is not None:
        from ..topo import parse_topology

        try:
            parse_topology(args.topology)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.action is not None and args.target not in (
        "cache", "claims", "campaign", "predict", "obs"
    ):
        print(
            "error: an action argument is only valid with the "
            "'cache', 'claims', 'campaign', 'predict', or 'obs' targets",
            file=sys.stderr,
        )
        return 2
    if args.path is not None and args.target not in (
        "obs", "campaign", "predict"
    ):
        print(
            "error: a path argument is only valid with the 'obs', "
            "'campaign', or 'predict' targets",
            file=sys.stderr,
        )
        return 2
    if not _configure_obs(args):
        return _dispatch(args)
    try:
        if args.profile:
            from ..obs import obs
            from ..obs.profile import profiled

            # Profile the in-process side too (jobs=1 runs, cache and
            # aggregation work); pool workers ship their own rows.
            with profiled(obs().profile_rows):
                return _dispatch(args)
        return _dispatch(args)
    finally:
        _finalize_obs(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
