"""Command-line interface for the figure reproductions.

Usage::

    repro-sync list
    repro-sync fig04 [--fast]
    repro-sync all --fast
    repro-sync fig10 --jobs 4          # fan seed runs over 4 processes
    repro-sync fig10 --no-cache        # force recomputation
    repro-sync fig10 --resume          # journal + resume interrupted runs
    repro-sync bench                   # parallel-layer perf snapshot
    repro-sync cache verify            # audit results/cache/ entries
    repro-sync cache repair            # quarantine corrupt, sweep stale tmp
    repro-sync cache clear             # drop every cached result

(``python -m repro`` is equivalent.)  Simulation-backed figures cache
completed runs under ``results/cache/`` keyed by job content, so
re-running a figure is nearly free; ``--no-cache`` opts out and
``--jobs`` sets the process-pool width (results are identical either
way).  ``--resume`` additionally journals every completed simulation
to ``results/checkpoints/<run-id>.jsonl`` as it finishes, so a run
killed mid-way (Ctrl-C, OOM, power loss) restarts from where it
stopped — pass it from the start on long runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .registry import figure_ids, run_figure

__all__ = ["main", "build_parser"]


def _render_plots(result) -> str:
    """ASCII-plot every series of a figure result (metrics first)."""
    from ..analysis.asciiplot import scatter

    lines = [f"== {result.figure_id}: {result.title} =="]
    for key, value in result.metrics.items():
        lines.append(f"  {key}: {value}")
    for name, points in result.series.items():
        numeric = [
            (x, y) for x, y in points
            if isinstance(x, (int, float)) and isinstance(y, (int, float))
        ]
        lines.append("")
        try:
            lines.append(scatter(numeric, title=name))
        except ValueError as error:
            lines.append(f"  [series {name!r} not plottable: {error}]")
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-sync",
        description=(
            "Reproduce figures from Floyd & Jacobson, 'The Synchronization "
            "of Periodic Routing Messages' (SIGCOMM 1993)."
        ),
    )
    parser.add_argument(
        "target",
        help="a figure id (fig01..fig15), 'all', 'list', 'bench', or 'cache'",
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help="for the 'cache' target: verify (default) | repair | clear",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use reduced-scale parameters (seconds instead of minutes)",
    )
    parser.add_argument(
        "--max-points",
        type=int,
        default=25,
        help="series points to print per figure (default 25)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render each series as an ASCII plot instead of a table",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for simulation fan-out (default: 1 for "
            "figures, the CPU count for 'bench'); results do not "
            "depend on this"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache (results/cache/)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "journal completed simulations under results/checkpoints/ and "
            "resume any interrupted run of the same figure; pass it from "
            "the start on long runs (results do not depend on this)"
        ),
    )
    parser.add_argument(
        "--cache-root",
        default=None,
        metavar="DIR",
        help="cache directory for the 'cache' target (default results/cache)",
    )
    return parser


def _run_cache(args) -> int:
    """The 'cache' target: verify / repair / clear the result cache."""
    from ..parallel import ResultCache

    cache = ResultCache(args.cache_root)
    action = args.action or "verify"
    if action == "verify":
        report = cache.verify()
        print(
            f"cache {cache.root}: {report['entries']} entries, "
            f"{report['valid']} valid, {len(report['corrupt'])} corrupt, "
            f"{len(report['stale_tmp'])} stale tmp, "
            f"{report['quarantined']} quarantined"
        )
        for name, why in report["corrupt"].items():
            print(f"  corrupt: {name}: {why}")
        for name in report["stale_tmp"]:
            print(f"  stale tmp: {name}")
        if report["corrupt"] or report["stale_tmp"]:
            print("run 'cache repair' to quarantine/sweep")
            return 1
        return 0
    if action == "repair":
        done = cache.repair()
        print(
            f"cache {cache.root}: quarantined {len(done['quarantined'])} "
            f"corrupt entr{'y' if len(done['quarantined']) == 1 else 'ies'}, "
            f"removed {len(done['removed_tmp'])} stale tmp file(s)"
        )
        return 0
    if action == "clear":
        removed = cache.clear()
        print(f"cache {cache.root}: removed {removed} entries")
        return 0
    print(
        f"error: unknown cache action {action!r} (use verify, repair, or clear)",
        file=sys.stderr,
    )
    return 2


def _run_bench(args) -> int:
    """The 'bench' target: emit and print the parallel perf snapshot."""
    from ..parallel import format_table, run_benchmark

    output = "BENCH_parallel.json"
    snapshot = run_benchmark(jobs=args.jobs, output=output)
    print(format_table(snapshot))
    print(f"snapshot written to {output}")
    return 0 if snapshot["results_identical_across_configs"] else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.target == "cache":
        return _run_cache(args)
    if args.action is not None:
        print(
            "error: an action argument is only valid with the 'cache' target",
            file=sys.stderr,
        )
        return 2
    if args.target == "list":
        for figure_id in figure_ids():
            print(figure_id)
        return 0
    if args.target == "bench":
        return _run_bench(args)
    cache = None
    if not args.no_cache:
        from ..parallel import ResultCache

        cache = ResultCache()
    checkpoint = True if args.resume else None
    targets = figure_ids() if args.target == "all" else [args.target]
    try:
        for figure_id in targets:
            result = run_figure(
                figure_id,
                fast=args.fast,
                jobs=args.jobs,
                cache=cache,
                checkpoint=checkpoint,
            )
            if args.plot:
                print(_render_plots(result))
            else:
                print(result.format_text(max_points=args.max_points))
            print()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
