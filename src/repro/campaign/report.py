"""Campaign reports: the completed grid as tables and figure arrays.

``campaign report`` never simulates — it assembles the study straight
from the :class:`~repro.parallel.ResultCache` (the memo the
orchestrator filled), one row per grid point with its full seed
family.  Because cache entries are canonical JSON and the report is
serialized with sorted keys, the same completed campaign renders the
same report **byte for byte** no matter which dispatcher (local pool,
serve fleet, or a mix of shards) computed the entries — the
acceptance check the cross-dispatcher tests and the CI smoke job
assert.

Censoring discipline follows the tracker convention: a seed whose run
never reached the terminal cluster size within the horizon appears as
``null`` in the per-seed array and is excluded from the mean/median —
absence is data, not an error.  A seed *missing from the cache* is
counted separately (``missing``): a nonzero count means the campaign
has not finished and the summary statistics are provisional.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from statistics import fmean, median

from ..parallel import ResultCache
from ..parallel.job import MODEL_VERSION
from .spec import CampaignSpec

__all__ = [
    "build_report",
    "format_report",
    "plot_report",
    "report_json",
    "write_report",
]

#: Bump when the report payload shape changes.
REPORT_SCHEMA = 1


def build_report(spec: CampaignSpec, cache: ResultCache | None = None) -> dict:
    """Assemble the study's result table from the cache alone.

    One row per grid point (canonical axis order), carrying the
    per-seed terminal times (``None`` = censored at the horizon) and
    the summary statistics over the observed ones; plus flat
    figure-ready arrays aligned with the rows so a plot is one zip
    away.
    """
    if cache is None:
        cache = ResultCache()
    rows = []
    missing_total = 0
    for params in spec.points():
        terminals: list[float | None] = []
        missing = censored = 0
        for job in spec.jobs_for_point(params):
            result = cache.get(job)
            if result is None:
                missing += 1
                terminals.append(None)
                continue
            t = result.terminal_time(job)
            if t is None:
                censored += 1
            terminals.append(t)
        observed = [t for t in terminals if t is not None]
        missing_total += missing
        rows.append(
            {
                "n_nodes": params.n_nodes,
                "tp": params.tp,
                "tc": params.tc,
                "tr": params.tr,
                "seeds": spec.seed_count,
                "missing": missing,
                "censored": censored,
                "observed": len(observed),
                "terminal_times": terminals,
                "mean": fmean(observed) if observed else None,
                "median": median(observed) if observed else None,
                "min": min(observed) if observed else None,
                "max": max(observed) if observed else None,
            }
        )
    # Figure-ready columns: arrays aligned with ``rows`` so e.g.
    # Fig-12-style curves are plot(arrays["tr"], arrays["mean"]).
    arrays = {
        key: [row[key] for row in rows]
        for key in (
            "n_nodes", "tp", "tc", "tr", "mean", "median", "censored",
        )
    }
    return {
        "schema": REPORT_SCHEMA,
        "campaign_id": spec.campaign_id(),
        "name": spec.name,
        "model_version": MODEL_VERSION,
        "spec": spec.to_dict(),
        "total_jobs": spec.total_jobs,
        "missing": missing_total,
        "complete": missing_total == 0,
        "rows": rows,
        "arrays": arrays,
    }


def report_json(report: dict) -> str:
    """The canonical serialization (sorted keys — the byte-identity
    surface the cross-dispatcher acceptance tests compare)."""
    return json.dumps(report, sort_keys=True, indent=1) + "\n"


def write_report(report: dict, path: str | os.PathLike) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(report_json(report))
    return target


def _fmt(value: float | None) -> str:
    return f"{value:.6g}" if value is not None else "-"


def format_report(report: dict) -> str:
    """Render the report as a console table (one line per grid point)."""
    lines = [
        f"campaign {report['campaign_id']} name={report['name']} "
        f"jobs={report['total_jobs'] - report['missing']}"
        f"/{report['total_jobs']} "
        f"complete={str(report['complete']).lower()}",
        f"{'N':>4} {'Tp':>10} {'Tc':>10} {'Tr':>10} "
        f"{'obs':>5} {'cens':>5} {'miss':>5} "
        f"{'mean':>12} {'median':>12}",
    ]
    for row in report["rows"]:
        lines.append(
            f"{row['n_nodes']:>4} {row['tp']:>10g} {row['tc']:>10g} "
            f"{row['tr']:>10g} {row['observed']:>5} {row['censored']:>5} "
            f"{row['missing']:>5} {_fmt(row['mean']):>12} "
            f"{_fmt(row['median']):>12}"
        )
    return "\n".join(lines)


#: Groups rendered by :func:`plot_report` before it truncates (keeps
#: a many-point study's plot output to a few screens).
_MAX_PLOT_GROUPS = 4


def _plot_series(lines: list[str], title: str, x_label: str, y_label: str,
                 points: list[tuple[float, float]], logy: bool = False) -> None:
    """Append one rendered curve (or a note when it is unplottable)."""
    # Lazy import keeps the campaign package importable without
    # dragging the analysis layer in for non-plot uses.
    from ..analysis.asciiplot import line, log_safe

    data = log_safe(points) if logy else [
        (x, y) for x, y in points if y is not None
    ]
    lines.append("")
    try:
        lines.append(
            line(data, title=title, x_label=x_label, y_label=y_label)
        )
    except ValueError as error:
        lines.append(f"  [{title} not plottable: {error}]")


def plot_report(report: dict) -> str:
    """Render the study's curves in the figures' own coordinates.

    For each ``(n, Tp, Tc)`` group that varies Tr: mean time to the
    terminal event vs Tr on a log10 y-axis (the Figure 12 shape) and
    censored fraction vs Tr (the Figure 14/15 phase-transition shape).
    When the study varies N instead, the same two curves are drawn vs
    N per ``(Tp, Tc, Tr)`` group.  Groups beyond the first
    `` _MAX_PLOT_GROUPS`` are summarized, not drawn.
    """
    rows = report["rows"]
    direction = report["spec"].get("direction", "up")
    event = "sync" if direction == "up" else "break-up"
    lines = [
        f"campaign {report['campaign_id']} name={report['name']} "
        f"complete={str(report['complete']).lower()}"
    ]
    tr_varies = len({row["tr"] for row in rows}) > 1
    if tr_varies:
        group_of = lambda row: (row["n_nodes"], row["tp"], row["tc"])
        x_of = lambda row: row["tr"]
        x_label = "Tr (s)"
        label_of = lambda g: f"N={g[0]} Tp={g[1]:g} Tc={g[2]:g}"
    else:
        group_of = lambda row: (row["tp"], row["tc"], row["tr"])
        x_of = lambda row: row["n_nodes"]
        x_label = "N"
        label_of = lambda g: f"Tp={g[0]:g} Tc={g[1]:g} Tr={g[2]:g}"
    groups: dict[tuple, list] = {}
    for row in rows:
        groups.setdefault(group_of(row), []).append(row)
    for index, (key, members) in enumerate(sorted(groups.items())):
        if index >= _MAX_PLOT_GROUPS:
            lines.append(
                f"\n  [{len(groups) - _MAX_PLOT_GROUPS} more group(s) "
                "not drawn; narrow the spec or use -o report.json]"
            )
            break
        members = sorted(members, key=x_of)
        label = label_of(key)
        _plot_series(
            lines,
            f"mean {event} time vs {x_label}  [{label}]",
            x_label,
            f"log10 mean {event} time (s)",
            [(x_of(row), row["mean"]) for row in members],
            logy=True,
        )
        _plot_series(
            lines,
            f"censored fraction vs {x_label}  [{label}]",
            x_label,
            f"fraction of seeds with no {event} by the horizon",
            [
                (x_of(row), row["censored"] / row["seeds"])
                for row in members
            ],
        )
    return "\n".join(lines)
