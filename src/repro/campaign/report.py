"""Campaign reports: the completed grid as tables and figure arrays.

``campaign report`` never simulates — it assembles the study straight
from the :class:`~repro.parallel.ResultCache` (the memo the
orchestrator filled), one row per grid point with its full seed
family.  Because cache entries are canonical JSON and the report is
serialized with sorted keys, the same completed campaign renders the
same report **byte for byte** no matter which dispatcher (local pool,
serve fleet, or a mix of shards) computed the entries — the
acceptance check the cross-dispatcher tests and the CI smoke job
assert.

Censoring discipline follows the tracker convention: a seed whose run
never reached the terminal cluster size within the horizon appears as
``null`` in the per-seed array and is excluded from the mean/median —
absence is data, not an error.  A seed *missing from the cache* is
counted separately (``missing``): a nonzero count means the campaign
has not finished and the summary statistics are provisional.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from statistics import fmean, median

from ..parallel import ResultCache
from ..parallel.job import MODEL_VERSION
from .spec import CampaignSpec

__all__ = [
    "build_report",
    "format_report",
    "report_json",
    "write_report",
]

#: Bump when the report payload shape changes.
REPORT_SCHEMA = 1


def build_report(spec: CampaignSpec, cache: ResultCache | None = None) -> dict:
    """Assemble the study's result table from the cache alone.

    One row per grid point (canonical axis order), carrying the
    per-seed terminal times (``None`` = censored at the horizon) and
    the summary statistics over the observed ones; plus flat
    figure-ready arrays aligned with the rows so a plot is one zip
    away.
    """
    if cache is None:
        cache = ResultCache()
    rows = []
    missing_total = 0
    for params in spec.points():
        terminals: list[float | None] = []
        missing = censored = 0
        for job in spec.jobs_for_point(params):
            result = cache.get(job)
            if result is None:
                missing += 1
                terminals.append(None)
                continue
            t = result.terminal_time(job)
            if t is None:
                censored += 1
            terminals.append(t)
        observed = [t for t in terminals if t is not None]
        missing_total += missing
        rows.append(
            {
                "n_nodes": params.n_nodes,
                "tp": params.tp,
                "tc": params.tc,
                "tr": params.tr,
                "seeds": spec.seed_count,
                "missing": missing,
                "censored": censored,
                "observed": len(observed),
                "terminal_times": terminals,
                "mean": fmean(observed) if observed else None,
                "median": median(observed) if observed else None,
                "min": min(observed) if observed else None,
                "max": max(observed) if observed else None,
            }
        )
    # Figure-ready columns: arrays aligned with ``rows`` so e.g.
    # Fig-12-style curves are plot(arrays["tr"], arrays["mean"]).
    arrays = {
        key: [row[key] for row in rows]
        for key in (
            "n_nodes", "tp", "tc", "tr", "mean", "median", "censored",
        )
    }
    return {
        "schema": REPORT_SCHEMA,
        "campaign_id": spec.campaign_id(),
        "name": spec.name,
        "model_version": MODEL_VERSION,
        "spec": spec.to_dict(),
        "total_jobs": spec.total_jobs,
        "missing": missing_total,
        "complete": missing_total == 0,
        "rows": rows,
        "arrays": arrays,
    }


def report_json(report: dict) -> str:
    """The canonical serialization (sorted keys — the byte-identity
    surface the cross-dispatcher acceptance tests compare)."""
    return json.dumps(report, sort_keys=True, indent=1) + "\n"


def write_report(report: dict, path: str | os.PathLike) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(report_json(report))
    return target


def _fmt(value: float | None) -> str:
    return f"{value:.6g}" if value is not None else "-"


def format_report(report: dict) -> str:
    """Render the report as a console table (one line per grid point)."""
    lines = [
        f"campaign {report['campaign_id']} name={report['name']} "
        f"jobs={report['total_jobs'] - report['missing']}"
        f"/{report['total_jobs']} "
        f"complete={str(report['complete']).lower()}",
        f"{'N':>4} {'Tp':>10} {'Tc':>10} {'Tr':>10} "
        f"{'obs':>5} {'cens':>5} {'miss':>5} "
        f"{'mean':>12} {'median':>12}",
    ]
    for row in report["rows"]:
        lines.append(
            f"{row['n_nodes']:>4} {row['tp']:>10g} {row['tc']:>10g} "
            f"{row['tr']:>10g} {row['observed']:>5} {row['censored']:>5} "
            f"{row['missing']:>5} {_fmt(row['mean']):>12} "
            f"{_fmt(row['median']):>12}"
        )
    return "\n".join(lines)
