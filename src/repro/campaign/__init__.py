"""Campaign orchestration: a parameter study as one first-class artifact.

The paper's central results (Figures 7-15) are parameter studies —
grids over (N, Tp, Tc, Tr) x seeds.  This package turns "a sweep on
one host" into "a study across a fleet":

* :class:`CampaignSpec` (:mod:`~repro.campaign.spec`) — the study as
  one declarative, serializable value, expanded lazily into
  content-addressed :class:`~repro.parallel.SimulationJob` specs;
* :mod:`~repro.campaign.shard` — ``shard k of M`` as a pure function
  of the job hash, so any host claims any shard with no coordinator;
* :class:`Dispatcher` (:mod:`~repro.campaign.dispatch`) — pluggable
  execution: :class:`LocalDispatcher` (the process pool) or
  :class:`ServeDispatcher` (a PR-7 serve fleet over HTTP);
* :func:`run_campaign` (:mod:`~repro.campaign.run`) — the
  orchestrator: chunked lazy iteration, cache/journal commits per
  chunk, SIGKILL-safe resume that re-executes only missing hashes;
* :class:`CampaignProgress` (:mod:`~repro.campaign.progress`) —
  done/total, decaying rate, monotonic-clock ETA through ``repro.obs``;
* :func:`build_report` (:mod:`~repro.campaign.report`) — the finished
  grid as summary tables and figure-ready arrays, straight from the
  cache, byte-identical regardless of which dispatcher filled it.

CLI: ``python -m repro campaign run|status|report|shard``.
"""

from .dispatch import (
    Dispatcher,
    DispatchError,
    LocalDispatcher,
    ServeDispatcher,
    parse_endpoints,
)
from .progress import CampaignProgress, format_eta
from .report import (
    build_report,
    format_report,
    plot_report,
    report_json,
    write_report,
)
from .run import (
    DEFAULT_CHUNK_SIZE,
    ShardRun,
    campaign_status,
    format_status,
    run_campaign,
    shard_journal,
)
from .shard import iter_shard, parse_shard, shard_index, shard_manifest
from .spec import CampaignSpec, load_spec

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "CampaignProgress",
    "CampaignSpec",
    "DispatchError",
    "Dispatcher",
    "LocalDispatcher",
    "ServeDispatcher",
    "ShardRun",
    "build_report",
    "campaign_status",
    "format_eta",
    "format_report",
    "format_status",
    "iter_shard",
    "load_spec",
    "parse_endpoints",
    "parse_shard",
    "plot_report",
    "report_json",
    "run_campaign",
    "shard_index",
    "shard_journal",
    "shard_manifest",
    "write_report",
]
