"""The campaign-dispatch benchmark (``repro-sync bench --campaign``).

Runs one fixed small grid through both dispatchers and the warm
cache, so ``BENCH_campaign.json`` answers three questions the
campaign layer lives on:

* **local_cold** — what the orchestrator + :class:`LocalDispatcher`
  cost over raw simulation (chunking, cache/journal commits);
* **serve_cold** — the same grid fanned out to a loopback serve
  instance through :class:`ServeDispatcher` (HTTP + JSON framing per
  batch), with report byte-identity against the local run asserted
  into the snapshot;
* **warm** — the identical campaign re-run against the filled cache:
  zero jobs executed, pure memo-read throughput (the resume path's
  fixed cost).

The grid is deliberately tiny and fixed — this benchmark measures the
*orchestration* overhead, not the simulator (``BENCH_parallel.json``
owns that).  The snapshot uses the shared :mod:`repro.benchio`
envelope next to its siblings.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

from ..benchio import bench_envelope, write_bench_json
from ..obs.clock import perf_counter
from ..parallel import ResultCache
from .dispatch import LocalDispatcher, ServeDispatcher
from .report import build_report, report_json
from .run import run_campaign
from .spec import CampaignSpec

__all__ = ["bench_spec", "format_campaign_table", "run_campaign_benchmark"]

#: Default bench cache root (cleared per row so cold rows are cold).
DEFAULT_BENCH_CACHE = Path("results") / "cache" / "campaign-bench"


def bench_spec(seed_count: int = 8, horizon: float = 4000.0) -> CampaignSpec:
    """The fixed small grid every benchmark row runs (paper-flavored:
    a Tr sweep at reduced N so a row costs seconds, not minutes)."""
    return CampaignSpec(
        name="campaign-bench",
        n_nodes=(5,),
        tp=(121.0,),
        tc=(0.11,),
        tr=(0.055, 0.099, 0.165),
        seed_count=seed_count,
        horizon=horizon,
        engine="cascade",
    )


def run_campaign_benchmark(
    seed_count: int = 8,
    horizon: float = 4000.0,
    jobs: int | None = None,
    cache_root: str | os.PathLike | None = None,
    output: str | os.PathLike | None = None,
) -> dict:
    """Run the three rows; return (optionally write) the snapshot."""
    jobs = jobs or os.cpu_count() or 1
    root = Path(cache_root) if cache_root is not None else DEFAULT_BENCH_CACHE
    shutil.rmtree(root, ignore_errors=True)
    spec = bench_spec(seed_count=seed_count, horizon=horizon)
    local_cache = ResultCache(root / "local")
    serve_cache = ResultCache(root / "serve")
    checkpoints = root / "checkpoints"

    def timed(dispatcher, cache) -> dict:
        t0 = perf_counter()
        summary = run_campaign(
            spec,
            dispatcher=dispatcher,
            cache=cache,
            checkpoint_root=checkpoints,
        )
        seconds = perf_counter() - t0
        return {
            "seconds": round(seconds, 4),
            "jobs_per_s": round(summary.total / seconds, 2) if seconds else None,
            "executed": summary.executed,
            "cached": summary.cached,
            "dispatcher": summary.dispatcher,
        }

    local_cold = timed(LocalDispatcher(jobs=jobs), local_cache)

    from ..serve.config import ServeConfig
    from ..serve.lifecycle import BackgroundServer

    server_config = ServeConfig(
        host="127.0.0.1",
        port=0,
        jobs=jobs,
        cache_root=str(root / "server"),
    )
    with BackgroundServer(server_config) as bg:
        serve_cold = timed(
            ServeDispatcher(
                endpoints=((bg.host, bg.port),),
                batch_size=8,
                connect_timeout=5.0,
                retries=3,
            ),
            serve_cache,
        )

    warm = timed(LocalDispatcher(jobs=jobs), local_cache)

    identical = report_json(build_report(spec, local_cache)) == report_json(
        build_report(spec, serve_cache)
    )
    payload = {
        "workload": {
            "grid_points": spec.point_count,
            "seed_count": spec.seed_count,
            "total_jobs": spec.total_jobs,
            "horizon": spec.horizon,
            "engine": spec.engine,
            "jobs": jobs,
        },
        "local_cold": local_cold,
        "serve_cold": serve_cold,
        "warm": warm,
        "warm_served_entirely_from_cache": warm["executed"] == 0,
        "reports_identical_local_vs_serve": identical,
    }
    snapshot = bench_envelope("campaign_dispatch", payload)
    if output is not None:
        write_bench_json(output, snapshot)
    return snapshot


def format_campaign_table(snapshot: dict) -> str:
    """Render the snapshot as the CLI's campaign table."""
    workload = snapshot["workload"]
    rows = [("row", "seconds", "jobs/s", "executed", "cached")]
    for name in ("local_cold", "serve_cold", "warm"):
        row = snapshot[name]
        rows.append(
            (
                name,
                f"{row['seconds']:.3f}",
                f"{row['jobs_per_s']:.1f}" if row["jobs_per_s"] else "-",
                str(row["executed"]),
                str(row["cached"]),
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = [
        f"campaign dispatch: {workload['grid_points']} grid point(s) x "
        f"{workload['seed_count']} seed(s) = {workload['total_jobs']} job(s), "
        f"engine={workload['engine']}, jobs={workload['jobs']}"
    ]
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    lines.append(
        "warm pass served entirely from cache: "
        + ("yes" if snapshot["warm_served_entirely_from_cache"] else "NO")
    )
    lines.append(
        "reports identical local vs serve: "
        + ("yes" if snapshot["reports_identical_local_vs_serve"] else "NO")
    )
    return "\n".join(lines)
