"""Pluggable dispatchers: where a batch of jobs actually executes.

The campaign layer (and the sweep helpers) speak one interface —
:class:`Dispatcher`, ``run(specs) -> list[JobResult]`` in spec order —
and two implementations provide it:

* :class:`LocalDispatcher` wraps the PR-1/2
  :class:`~repro.parallel.ParallelRunner`: a process pool (or
  in-process execution) on this host, with the runner's full
  deadline/retry/cache/checkpoint machinery available.
* :class:`ServeDispatcher` fans batches out to one or more PR-7 serve
  endpoints over HTTP: chunks of specs are posted to ``/v1/sweep``
  through per-endpoint worker threads (bounded in-flight requests per
  endpoint), honoring the server's deterministic ``Retry-After``
  backpressure via the client's retry support, and failing fast on a
  dead endpoint (client-side connect timeout) by re-queueing its
  chunks for the surviving endpoints.

Both return results **in spec order** and byte-identical to each
other — the server computes with the same ``run_job`` the local pool
does, and the response payload embeds the same canonical
:class:`~repro.parallel.JobResult` serialization the cache uses.
Dispatchers execute; they do not own campaign-level caching or
journaling (the orchestrator in :mod:`repro.campaign.run` does), but
:class:`LocalDispatcher` accepts a cache/checkpoint so the pre-campaign
sweep call sites keep their exact behavior behind the new interface.
"""

from __future__ import annotations

import http.client
import queue
import threading
from dataclasses import dataclass, field
from typing import Sequence

from ..obs import obs
from ..parallel import (
    CheckpointJournal,
    FaultPlan,
    JobResult,
    ParallelRunner,
    ResultCache,
    SimulationJob,
)

__all__ = [
    "Dispatcher",
    "DispatchError",
    "LocalDispatcher",
    "ServeDispatcher",
    "parse_endpoints",
]


class DispatchError(RuntimeError):
    """A dispatcher could not obtain results for a batch."""


class Dispatcher:
    """The execution interface campaigns and sweeps run through."""

    def run(self, specs: Sequence[SimulationJob]) -> list[JobResult]:
        """Execute every spec; results come back in spec order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any held connections/pools (idempotent)."""

    def describe(self) -> str:
        """One human-readable word-or-two for progress lines."""
        return type(self).__name__

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


@dataclass
class LocalDispatcher(Dispatcher):
    """Execute on this host through a :class:`ParallelRunner`.

    A fresh runner is built per :meth:`run` call (exactly what the
    serving layer does), so per-batch stats and reports never race;
    the most recent runner stays reachable as :attr:`runner` for
    callers that read ``stats``/``report`` afterwards.
    """

    jobs: int = 1
    cache: ResultCache | None = None
    checkpoint: CheckpointJournal | None = None
    timeout: float | None = None
    retries: int = 1
    on_error: str = "raise"
    transport: str = "pickle"
    chunk_size: int | None = None
    faults: FaultPlan | None = None
    runner: ParallelRunner | None = field(default=None, init=False, repr=False)

    def run(self, specs: Sequence[SimulationJob]) -> list[JobResult]:
        self.runner = ParallelRunner(
            jobs=self.jobs,
            cache=self.cache,
            checkpoint=self.checkpoint,
            timeout=self.timeout,
            retries=self.retries,
            on_error=self.on_error,
            transport=self.transport,
            chunk_size=self.chunk_size,
            faults=self.faults,
        )
        return self.runner.run(specs)

    @property
    def report(self):
        """The most recent run's per-job ledger (None before a run)."""
        return self.runner.report if self.runner is not None else None

    @property
    def stats(self):
        return self.runner.stats if self.runner is not None else None

    def describe(self) -> str:
        return f"local(jobs={self.jobs})"


def parse_endpoints(text: str) -> tuple[tuple[str, int], ...]:
    """Parse ``host:port[,host:port...]`` into endpoint tuples."""
    endpoints = []
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        host, sep, port = piece.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"endpoint must look like host:port; got {piece!r}"
            )
        endpoints.append((host or "127.0.0.1", int(port)))
    if not endpoints:
        raise ValueError("need at least one endpoint (host:port)")
    return tuple(endpoints)


@dataclass
class ServeDispatcher(Dispatcher):
    """Fan batches out to one or more serve endpoints over HTTP.

    Parameters
    ----------
    endpoints:
        ``(host, port)`` tuples of running serve instances (single
        process or prefork fleets — the dispatcher cannot tell and
        does not care).
    max_inflight:
        Concurrent requests *per endpoint* (worker threads each
        holding one keep-alive connection).  Bounds how hard one
        campaign shard leans on one fleet.
    batch_size:
        Specs per ``/v1/sweep`` request.  Stay well under the server's
        ``MAX_SWEEP_JOBS`` guard; smaller batches spread better across
        a fleet's workers.
    timeout:
        Client read timeout per request, seconds.  Must comfortably
        exceed the server's expected compute time for one batch.
    connect_timeout:
        Client connect timeout, seconds — the fail-fast knob: a dead
        endpoint surfaces as a connection error in this many seconds
        instead of hanging a shard for ``timeout``.
    retries:
        Retry-After retries per request (429/503 backpressure is
        absorbed on the server's own deterministic schedule).
    max_chunk_attempts:
        Times one chunk may be re-queued (endpoint death, exhausted
        backpressure retries) before the batch fails.  Defaults to
        ``2 * len(endpoints)``.
    """

    endpoints: tuple[tuple[str, int], ...] = (("127.0.0.1", 8793),)
    max_inflight: int = 2
    batch_size: int = 64
    timeout: float = 300.0
    connect_timeout: float = 5.0
    retries: int = 3
    max_chunk_attempts: int | None = None
    requests: int = field(default=0, init=False)
    requeued: int = field(default=0, init=False)
    retried: int = field(default=0, init=False)
    dead_endpoints: set = field(default_factory=set, init=False)

    def __post_init__(self) -> None:
        self.endpoints = tuple(
            (str(host), int(port)) for host, port in self.endpoints
        )
        if not self.endpoints:
            raise ValueError("need at least one endpoint")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.timeout <= 0 or self.connect_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.max_chunk_attempts is None:
            self.max_chunk_attempts = 2 * len(self.endpoints)
        if self.max_chunk_attempts < 1:
            raise ValueError("max_chunk_attempts must be >= 1")

    def describe(self) -> str:
        hosts = ",".join(f"{h}:{p}" for h, p in self.endpoints)
        return f"serve({hosts})"

    # -- the fan-out ----------------------------------------------------------

    def run(self, specs: Sequence[SimulationJob]) -> list[JobResult]:
        specs = list(specs)
        if not specs:
            return []
        chunks: list[tuple[int, list[SimulationJob]]] = [
            (start, specs[start : start + self.batch_size])
            for start in range(0, len(specs), self.batch_size)
        ]
        results: list[JobResult | None] = [None] * len(specs)
        errors: list[BaseException] = []
        lock = threading.Lock()
        pending: queue.Queue = queue.Queue()
        for start, chunk in chunks:
            pending.put((start, chunk, 0))
        state = {"remaining": len(chunks)}

        def resolve(start: int, chunk, outcomes) -> None:
            with lock:
                for offset, result in enumerate(outcomes):
                    results[start + offset] = result
                state["remaining"] -= 1

        def give_up(error: BaseException) -> None:
            with lock:
                errors.append(error)
                state["remaining"] -= 1

        def requeue(start, chunk, attempts, error) -> bool:
            """Back on the queue for another endpoint; False = spent."""
            if attempts + 1 >= self.max_chunk_attempts:
                give_up(error)
                return False
            with lock:
                self.requeued += 1
            pending.put((start, chunk, attempts + 1))
            return True

        def worker(host: str, port: int) -> None:
            # One client (and keep-alive connection) per worker thread;
            # ServeClient is deliberately not thread-safe.
            from ..serve.client import ServeClient

            client = ServeClient(
                host,
                port,
                timeout=self.timeout,
                connect_timeout=self.connect_timeout,
                retries=self.retries,
            )
            try:
                while True:
                    with lock:
                        if state["remaining"] <= 0 or errors:
                            return
                    try:
                        start, chunk, attempts = pending.get(timeout=0.05)
                    except queue.Empty:
                        continue
                    try:
                        response = client.sweep(
                            [spec.to_dict() for spec in chunk]
                        )
                    except (OSError, http.client.HTTPException) as error:
                        # Connect refused/timed out, read timed out, or
                        # the peer vanished: this endpoint is suspect.
                        # Re-queue the chunk for the survivors and stop
                        # using the endpoint — fail fast, never hang a
                        # shard on a dead host.
                        requeue(start, chunk, attempts, error)
                        with lock:
                            self.dead_endpoints.add((host, port))
                        obs().emit(
                            "campaign.endpoint_down",
                            f"endpoint {host}:{port} failed "
                            f"({type(error).__name__}); re-queueing its chunk",
                            endpoint=f"{host}:{port}",
                            error=repr(error),
                        )
                        return
                    with lock:
                        self.requests += 1
                        self.retried = self.retried + client.retried
                    client.retried = 0
                    if response.status in (429, 503):
                        # Backpressure outlasted the client's
                        # Retry-After budget: the endpoint is alive but
                        # saturated; let another slot try later.
                        requeue(
                            start,
                            chunk,
                            attempts,
                            DispatchError(
                                f"endpoint {host}:{port} still shedding "
                                f"({response.status}) after "
                                f"{self.retries} Retry-After retries"
                            ),
                        )
                        continue
                    try:
                        outcomes = self._parse_sweep(chunk, response)
                    except DispatchError as error:
                        give_up(error)
                        continue
                    resolve(start, chunk, outcomes)
            finally:
                client.close()

        threads = [
            threading.Thread(
                target=worker,
                args=(host, port),
                name=f"campaign-dispatch-{host}:{port}-{slot}",
                daemon=True,
            )
            for host, port in self.endpoints
            for slot in range(self.max_inflight)
        ]
        with obs().span(
            "campaign.dispatch",
            specs=len(specs),
            chunks=len(chunks),
            endpoints=len(self.endpoints),
        ):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]
        missing = sum(1 for r in results if r is None)
        if missing:
            raise DispatchError(
                f"{missing} job(s) were never dispatched — every endpoint "
                f"of {self.describe()} failed"
            )
        return results  # type: ignore[return-value]  # every slot is filled

    def _parse_sweep(self, chunk, response) -> list[JobResult]:
        """Decode and verify one /v1/sweep response for ``chunk``."""
        if response.status != 200:
            raise DispatchError(
                f"sweep request failed with {response.status}: "
                f"{response.body[:200]!r}"
            )
        try:
            payload = response.json()
            items = payload["results"]
        except (ValueError, KeyError, TypeError):
            raise DispatchError("sweep response is not valid result JSON")
        if not isinstance(items, list) or len(items) != len(chunk):
            raise DispatchError(
                f"sweep response carries {len(items) if isinstance(items, list) else '?'} "
                f"result(s) for a {len(chunk)}-spec request"
            )
        outcomes = []
        for spec, item in zip(chunk, items):
            try:
                if item["key"] != spec.cache_key():
                    raise DispatchError(
                        f"sweep response key {item['key'][:12]} does not "
                        f"match spec {spec.cache_key()[:12]} — endpoint is "
                        "running a different model version?"
                    )
                outcomes.append(JobResult.from_dict(item["result"]))
            except (KeyError, TypeError, ValueError):
                raise DispatchError("malformed result entry in sweep response")
        return outcomes
