"""Deterministic job-space sharding keyed on the content hash.

``shard k of M`` must mean the same set of jobs on every host, with no
coordinator handing out work — that is what lets a fleet of processes
(or serve endpoints) each claim a shard of a million-point campaign by
command-line argument alone.  The assignment is a pure function of
the job's existing content hash::

    shard_index(job, M) = int(job.cache_key()[:16], 16) % M

The cache key already folds in the full spec and the model version,
so the shard map survives process restarts, host changes, and spec
re-parsing; and because SHA-256 output is uniform, shards are
balanced to within sampling noise without any knowledge of the grid's
shape.  Two hosts can never disagree about which shard owns a job,
and re-sharding with a different ``M`` is safe mid-study: the cache
and journals are keyed per *job*, not per shard, so completed work is
honored under any sharding.
"""

from __future__ import annotations

from typing import Iterator

from ..parallel.job import SimulationJob
from .spec import CampaignSpec

__all__ = ["iter_shard", "parse_shard", "shard_index", "shard_manifest"]


def shard_index(job: SimulationJob, num_shards: int) -> int:
    """Which shard (0-based) of ``num_shards`` owns this job.

    A pure function of the job's content hash — any host computes the
    same answer for the same job.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return int(job.cache_key()[:16], 16) % num_shards


def iter_shard(
    spec: CampaignSpec, shard: int, num_shards: int
) -> Iterator[SimulationJob]:
    """Lazily yield the jobs of ``shard`` in canonical campaign order."""
    if not 0 <= shard < num_shards:
        raise ValueError(
            f"shard must be in [0, {num_shards}); got {shard}"
        )
    for job in spec.jobs():
        if shard_index(job, num_shards) == shard:
            yield job


def shard_manifest(spec: CampaignSpec, num_shards: int) -> list[int]:
    """Job counts per shard (requires one pass over the grid)."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    counts = [0] * num_shards
    for job in spec.jobs():
        counts[shard_index(job, num_shards)] += 1
    return counts


def parse_shard(text: str) -> tuple[int, int]:
    """Parse the CLI's ``K/M`` spelling into ``(shard, num_shards)``.

    ``"2/8"`` -> shard 2 of 8.  ``"0/1"`` (the default) is the whole
    campaign.  Raises ``ValueError`` on malformed or out-of-range
    input so the CLI can reject it with one consistent message.
    """
    parts = text.split("/")
    if len(parts) != 2:
        raise ValueError(f"shard must look like K/M (e.g. 0/4); got {text!r}")
    try:
        shard, num_shards = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(f"shard must look like K/M (e.g. 0/4); got {text!r}")
    if num_shards < 1 or not 0 <= shard < num_shards:
        raise ValueError(
            f"shard K/M needs M >= 1 and 0 <= K < M; got {text!r}"
        )
    return shard, num_shards
