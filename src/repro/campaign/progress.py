"""Campaign progress: done/total, per-shard rates, and a wall-clock ETA.

A million-job study runs for hours; the orchestrator reports where it
stands through :mod:`repro.obs` (gauges and throttled events) and an
optional console callback.  Two deliberate choices:

* **Monotonic clock only.**  Rates and ETAs are computed from
  :func:`repro.obs.clock.monotonic` — never the wall clock — so a
  suspend/resume or an NTP step can't produce a negative rate or a
  thousand-year ETA.  (The repo's ``lint_clocks`` gate enforces this
  mechanically.)
* **Decaying rate estimate.**  The instantaneous rate is folded into
  an exponential moving average whose smoothing follows the *elapsed
  time* between updates (``alpha = 1 - exp(-dt / tau)``), not the
  update count — so irregular batch sizes don't distort the estimate,
  early noise decays on a fixed ~``tau``-second memory, and the ETA
  tracks the *current* throughput (cache-hit bursts fade out of it in
  seconds rather than skewing the whole run's average).

Cache hits and journal resumes are counted as progress (they retire
jobs) but reported separately, so "how fast is the fleet simulating"
and "how much of the study is done" stay distinct questions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..obs import obs
from ..obs.clock import monotonic

__all__ = ["CampaignProgress", "format_eta"]

#: Memory of the decaying rate estimate, seconds.  Throughput swings
#: (a cache-hit burst, a slow grid corner) fade on this horizon.
RATE_TAU = 30.0

#: Minimum seconds between emitted progress events (gauges update on
#: every advance; the event stream is throttled to stay readable).
EVENT_INTERVAL = 5.0


def format_eta(seconds: float | None) -> str:
    """``1h04m``/``3m20s``/``12s`` — or ``?`` before a rate exists."""
    if seconds is None or not math.isfinite(seconds):
        return "?"
    seconds = max(0.0, seconds)
    if seconds >= 3600:
        return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"
    if seconds >= 60:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{seconds:.0f}s"


@dataclass
class CampaignProgress:
    """Rolling progress accounting for one campaign shard.

    Parameters
    ----------
    total:
        Jobs in this shard (the denominator).
    label:
        Short identity for events and console lines, e.g.
        ``fig12-tr/3 shard 0/2``.
    tau:
        Rate-estimate memory, seconds.
    console:
        Optional sink for rendered one-line updates (the CLI passes a
        stderr writer; tests pass a list appender; ``None`` keeps the
        orchestrator silent apart from obs).
    clock:
        Injectable monotonic source (tests drive it by hand).
    """

    total: int
    label: str = "campaign"
    tau: float = RATE_TAU
    console: Callable[[str], None] | None = None
    clock: Callable[[], float] = monotonic
    done: int = field(default=0, init=False)
    executed: int = field(default=0, init=False)
    cached: int = field(default=0, init=False)
    resumed: int = field(default=0, init=False)
    rate: float | None = field(default=None, init=False)
    _started: float | None = field(default=None, init=False, repr=False)
    _last: float | None = field(default=None, init=False, repr=False)
    _last_event: float | None = field(default=None, init=False, repr=False)

    def start(self) -> None:
        now = self.clock()
        self._started = now
        self._last = now
        obs().metrics.gauge("campaign.jobs_total").set(self.total)
        obs().metrics.gauge("campaign.jobs_done").set(0)

    def advance(
        self, executed: int = 0, cached: int = 0, resumed: int = 0
    ) -> None:
        """Retire jobs: freshly executed, cache hits, journal resumes."""
        if self._started is None:
            self.start()
        retired = executed + cached + resumed
        if retired <= 0:
            return
        self.executed += executed
        self.cached += cached
        self.resumed += resumed
        self.done += retired
        now = self.clock()
        dt = now - (self._last if self._last is not None else now)
        self._last = now
        if dt > 0:
            instantaneous = retired / dt
            if self.rate is None:
                self.rate = instantaneous
            else:
                alpha = 1.0 - math.exp(-dt / self.tau)
                self.rate = (1.0 - alpha) * self.rate + alpha * instantaneous
        metrics = obs().metrics
        metrics.gauge("campaign.jobs_done").set(self.done)
        if self.rate is not None:
            metrics.gauge("campaign.rate_jobs_per_s").set(self.rate)
        metrics.counter("campaign.jobs_executed").inc(executed)
        metrics.counter("campaign.jobs_cached").inc(cached)
        metrics.counter("campaign.jobs_resumed").inc(resumed)
        self._emit(now)

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.done)

    @property
    def eta(self) -> float | None:
        """Seconds until done at the current decayed rate (None early)."""
        if self.rate is None or self.rate <= 0:
            return None if self.remaining else 0.0
        return self.remaining / self.rate

    @property
    def elapsed(self) -> float:
        if self._started is None or self._last is None:
            return 0.0
        return self._last - self._started

    def snapshot(self) -> dict:
        """The progress state as one plain dict (status output, tests)."""
        return {
            "label": self.label,
            "total": self.total,
            "done": self.done,
            "executed": self.executed,
            "cached": self.cached,
            "resumed": self.resumed,
            "rate": self.rate,
            "eta": self.eta,
            "elapsed": self.elapsed,
        }

    def render(self) -> str:
        """One console line: ``label 123/456 (27%) 12.3 jobs/s eta 3m04s``."""
        pct = 100.0 * self.done / self.total if self.total else 100.0
        rate = f"{self.rate:.1f} jobs/s" if self.rate is not None else "- jobs/s"
        return (
            f"{self.label} {self.done}/{self.total} ({pct:.0f}%) "
            f"{rate} eta {format_eta(self.eta)}"
        )

    def _emit(self, now: float, force: bool = False) -> None:
        throttled = (
            self._last_event is not None
            and now - self._last_event < EVENT_INTERVAL
        )
        if throttled and not force:
            return
        self._last_event = now
        obs().emit(
            "campaign.progress",
            self.render(),
            label=self.label,
            done=self.done,
            total=self.total,
            executed=self.executed,
            cached=self.cached,
            resumed=self.resumed,
            rate=self.rate,
            eta=self.eta,
        )
        if self.console is not None:
            self.console(self.render())

    def finish(self) -> None:
        """Force a final event/console line (ignores the throttle)."""
        if self._started is None:
            self.start()
        self._emit(self.clock(), force=True)
