"""The campaign orchestrator: spec -> shard -> dispatcher -> cache.

One :func:`run_campaign` call executes one shard of one campaign:

1. the shard's jobs stream lazily out of the spec (canonical order,
   filtered by the content-hash shard map) in bounded chunks, so a
   million-point campaign never materializes;
2. each chunk is split three ways — already in the
   :class:`~repro.parallel.ResultCache` (skip), journaled by an
   interrupted earlier run (replay into the cache), or missing
   (dispatch);
3. only the missing jobs go to the :class:`~repro.campaign.dispatch.
   Dispatcher` — local pool or serve fleet, the orchestrator cannot
   tell;
4. every fresh result is committed to the cache *and* the shard's
   :class:`~repro.parallel.CheckpointJournal` before the next chunk,
   so a SIGKILL at any moment loses at most one in-flight chunk of
   compute and zero completed results.

Resume is therefore free: re-run the same command and steps 2-3 skip
everything already done — only missing hashes execute, and because
cache entries and journal lines store the same canonical result
serialization, the resumed study is byte-identical to an
uninterrupted one.  The journal is deleted only when the whole shard
is accounted for; a surviving journal *means* an interrupted shard.

The orchestrator owns caching and journaling; dispatchers only
execute.  (Campaign dispatchers are constructed without cache or
checkpoint wiring — double-commit is a bug, not a belt-and-braces.)
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable

from ..obs import obs
from ..parallel import CheckpointJournal, ResultCache
from ..parallel.job import MODEL_VERSION
from .dispatch import Dispatcher, LocalDispatcher
from .progress import CampaignProgress
from .shard import iter_shard, shard_index
from .spec import CampaignSpec

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ShardRun",
    "campaign_status",
    "format_status",
    "run_campaign",
    "shard_journal",
]

#: Jobs per orchestrator chunk: the commit granularity (a kill loses
#: at most one chunk of compute) and the dispatch batch handed to the
#: dispatcher in one call.
DEFAULT_CHUNK_SIZE = 256


def shard_journal(
    spec: CampaignSpec,
    shard: int,
    num_shards: int,
    root: str | os.PathLike | None = None,
) -> CheckpointJournal:
    """The checkpoint journal for one shard of one campaign.

    Keyed on the canonical spec dict + model version + shard
    coordinates, so any host resuming ``shard K/M`` of the same spec
    finds the same journal file — and a different grid, seed range,
    or sharding can never alias into it.
    """
    descriptor = json.dumps(
        {
            "campaign": spec.to_dict(),
            "model_version": MODEL_VERSION,
            "num_shards": num_shards,
            "shard": shard,
        },
        sort_keys=True,
    )
    return CheckpointJournal.for_key(descriptor, root)


@dataclass
class ShardRun:
    """What one :func:`run_campaign` call did, exactly once per job."""

    campaign_id: str
    name: str
    shard: int
    num_shards: int
    total: int
    executed: int = 0
    cached: int = 0
    resumed: int = 0
    complete: bool = False
    dispatcher: str = ""

    def to_dict(self) -> dict:
        return {
            "campaign_id": self.campaign_id,
            "name": self.name,
            "shard": self.shard,
            "num_shards": self.num_shards,
            "total": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "resumed": self.resumed,
            "complete": self.complete,
            "dispatcher": self.dispatcher,
        }

    def summary_line(self) -> str:
        """One grep-able line; the kill-resume test parses this."""
        return (
            f"campaign {self.campaign_id} name={self.name} "
            f"shard={self.shard}/{self.num_shards} total={self.total} "
            f"executed={self.executed} cached={self.cached} "
            f"resumed={self.resumed} complete={str(self.complete).lower()}"
        )


def run_campaign(
    spec: CampaignSpec,
    *,
    shard: int = 0,
    num_shards: int = 1,
    dispatcher: Dispatcher | None = None,
    cache: ResultCache | None = None,
    checkpoint_root: str | os.PathLike | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    console: Callable[[str], None] | None = None,
) -> ShardRun:
    """Execute (or resume) one shard of a campaign; returns the ledger.

    Idempotent by construction: every job is retired exactly once
    across any number of interrupted attempts, and re-running a
    finished shard executes nothing.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if cache is None:
        cache = ResultCache()
    if dispatcher is None:
        dispatcher = LocalDispatcher()
    journal = shard_journal(spec, shard, num_shards, checkpoint_root)
    # One cheap counting pass gives progress an exact denominator
    # (hashing only; nothing is materialized or simulated).
    total = sum(1 for _ in iter_shard(spec, shard, num_shards))
    summary = ShardRun(
        campaign_id=spec.campaign_id(),
        name=spec.name,
        shard=shard,
        num_shards=num_shards,
        total=total,
        dispatcher=dispatcher.describe(),
    )
    progress = CampaignProgress(
        total=total,
        label=f"{spec.name} shard {shard}/{num_shards}",
        console=console,
    )
    progress.start()
    with obs().span(
        "campaign.run",
        campaign=spec.campaign_id(),
        shard=shard,
        num_shards=num_shards,
        total=total,
        dispatcher=dispatcher.describe(),
    ):
        try:
            chunk: list = []
            for job in iter_shard(spec, shard, num_shards):
                chunk.append(job)
                if len(chunk) >= chunk_size:
                    _retire_chunk(
                        chunk, dispatcher, cache, journal, progress, summary
                    )
                    chunk = []
            if chunk:
                _retire_chunk(
                    chunk, dispatcher, cache, journal, progress, summary
                )
        except BaseException:
            # Keep the journal: everything committed so far is safe
            # and the next run resumes from it.
            journal.close()
            raise
    summary.complete = progress.done == total
    if summary.complete:
        # Full success deletes the journal — its survival is the
        # interrupted-shard marker, and every result lives in the
        # cache now.
        journal.complete()
    else:  # pragma: no cover - defensive; retire accounts every job
        journal.close()
    progress.finish()
    return summary


def _retire_chunk(
    chunk: list,
    dispatcher: Dispatcher,
    cache: ResultCache,
    journal: CheckpointJournal,
    progress: CampaignProgress,
    summary: ShardRun,
) -> None:
    """Retire one chunk: cache hits, journal replays, then dispatch."""
    todo = []
    hits = replays = 0
    for job in chunk:
        if cache.get(job) is not None:
            hits += 1
            continue
        journaled = journal.lookup(job)
        if journaled is not None:
            # An interrupted run completed this job but its cache
            # write was lost (best-effort) or the cache moved; replay
            # the journaled result into the cache so reports see it.
            cache.put(job, journaled)
            replays += 1
            continue
        todo.append(job)
    results = dispatcher.run(todo) if todo else []
    executed = 0
    for job, result in zip(todo, results):
        if result is None:
            continue  # censored by an on_error="censor" local run
        cache.put(job, result)
        journal.record(job, result)
        executed += 1
    summary.executed += executed
    summary.cached += hits
    summary.resumed += replays
    progress.advance(executed=executed, cached=hits, resumed=replays)


def campaign_status(
    spec: CampaignSpec,
    *,
    num_shards: int = 1,
    cache: ResultCache | None = None,
    checkpoint_root: str | os.PathLike | None = None,
) -> dict:
    """How far along a campaign is, per shard, without running anything.

    One hashing pass over the grid checks each job against the cache
    (entry on disk = retired) and counts journal-only completions
    (finished by an interrupted run, not yet replayed into the
    cache).
    """
    if cache is None:
        cache = ResultCache()
    journals = [
        shard_journal(spec, k, num_shards, checkpoint_root)
        for k in range(num_shards)
    ]
    shards = [
        {"shard": k, "jobs": 0, "done": 0, "journaled": 0}
        for k in range(num_shards)
    ]
    for job in spec.jobs():
        k = shard_index(job, num_shards)
        row = shards[k]
        row["jobs"] += 1
        if cache.path_for(job).is_file():
            row["done"] += 1
        elif journals[k].lookup(job) is not None:
            row["journaled"] += 1
    for row, journal in zip(shards, journals):
        row["complete"] = row["done"] >= row["jobs"]
        row["interrupted"] = journal.exists() and not row["complete"]
    done = sum(row["done"] for row in shards)
    return {
        "campaign_id": spec.campaign_id(),
        "name": spec.name,
        "model_version": MODEL_VERSION,
        "num_shards": num_shards,
        "total_jobs": spec.total_jobs,
        "done": done,
        "complete": done >= spec.total_jobs,
        "shards": shards,
    }


def format_status(status: dict) -> str:
    """Render :func:`campaign_status` output as a small console table."""
    lines = [
        f"campaign {status['campaign_id']} name={status['name']} "
        f"model={status['model_version']} "
        f"jobs={status['done']}/{status['total_jobs']} "
        f"complete={str(status['complete']).lower()}",
        f"{'shard':>6} {'jobs':>8} {'done':>8} {'journaled':>10} state",
    ]
    for row in status["shards"]:
        if row["complete"]:
            state = "complete"
        elif row["interrupted"] or row["done"] or row["journaled"]:
            state = "partial"
        else:
            state = "pending"
        lines.append(
            f"{row['shard']:>6} {row['jobs']:>8} {row['done']:>8} "
            f"{row['journaled']:>10} {state}"
        )
    return "\n".join(lines)
