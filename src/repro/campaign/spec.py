"""Declarative campaign specs: a parameter study as one artifact.

A :class:`CampaignSpec` names a full parameter study — the grid of
(N, Tp, Tc, Tr) axis values, a contiguous seed range, the horizon,
direction, and engine — as one small, serializable value.  The spec
never *holds* its jobs: :meth:`CampaignSpec.jobs` expands the grid
lazily into content-addressed
:class:`~repro.parallel.job.SimulationJob` specs, so a million-point
study costs a few hundred bytes on disk and streams through the
orchestrator without ever materializing.

Expansion order is part of the contract: axes vary in declaration
order (``n_nodes`` slowest, then ``tp``, ``tc``, ``tr``), seeds
innermost.  Every host expanding the same spec therefore enumerates
the same jobs in the same order, which is what makes the shard map
(:mod:`repro.campaign.shard`) a pure function of the spec.

Specs round-trip through JSON (always) and TOML (read requires
``tomllib``, Python 3.11+; writing is hand-emitted and works
everywhere).  The ``campaign_id`` — a content hash of the canonical
spec dict plus :data:`~repro.parallel.job.MODEL_VERSION` — names the
study in journals, progress reports, and result tables.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

try:  # Python 3.11+; TOML *reading* degrades gracefully without it.
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None  # type: ignore[assignment]

from ..core.engines import resolve_engine
from ..core.parameters import RouterTimingParameters
from ..parallel.job import MODEL_VERSION, SimulationJob

__all__ = ["CampaignSpec", "load_spec"]

_DIRECTIONS = ("up", "down")


def _axis(name: str, values, kind) -> tuple:
    """Normalize one grid axis: scalar -> 1-tuple, sequence -> tuple."""
    if isinstance(values, (int, float)) and not isinstance(values, bool):
        values = (values,)
    if isinstance(values, str) or not isinstance(values, Sequence):
        raise ValueError(f"axis {name!r} must be a number or a sequence")
    out = tuple(kind(v) for v in values)
    if not out:
        raise ValueError(f"axis {name!r} must not be empty")
    if len(set(out)) != len(out):
        raise ValueError(f"axis {name!r} has duplicate values")
    return out


@dataclass(frozen=True)
class CampaignSpec:
    """One parameter study: grid axes x a seed range x run settings.

    Attributes
    ----------
    name:
        Human-readable study name (letters, digits, ``-``/``_``);
        lands in journals, reports, and progress lines.
    n_nodes, tp, tc, tr:
        Grid axes.  Each accepts a scalar or a sequence of values; the
        grid is the full cross product.  Every grid point must be a
        valid :class:`~repro.core.parameters.RouterTimingParameters`.
    seed_start, seed_count:
        The contiguous seed range ``[seed_start, seed_start +
        seed_count)`` run at every grid point.
    horizon:
        Simulation horizon in seconds.
    direction:
        ``"up"`` (time to synchronize) or ``"down"`` (time to break
        up), as in :class:`~repro.parallel.job.SimulationJob`.
    engine:
        Simulation engine for every job (engines are bit-identical,
        so this is a speed knob, never a science knob).
    topology:
        Coupling graph for every job, in
        :func:`repro.topo.parse_topology` grammar; normalized to
        canonical form.  ``"clique"`` (the default) serializes exactly
        as before the field existed, so pre-topology campaign ids —
        and every cached job under them — are unchanged.
    """

    name: str
    n_nodes: tuple[int, ...]
    tp: tuple[float, ...]
    tc: tuple[float, ...]
    tr: tuple[float, ...]
    seed_count: int
    horizon: float
    seed_start: int = 1
    direction: str = "up"
    engine: str = "cascade"
    topology: str = "clique"

    def __post_init__(self) -> None:
        if not self.name or not all(
            ch.isalnum() or ch in "-_." for ch in self.name
        ):
            raise ValueError(
                "campaign name must be non-empty and use only letters, "
                "digits, '-', '_', '.'"
            )
        object.__setattr__(self, "n_nodes", _axis("n_nodes", self.n_nodes, int))
        object.__setattr__(self, "tp", _axis("tp", self.tp, float))
        object.__setattr__(self, "tc", _axis("tc", self.tc, float))
        object.__setattr__(self, "tr", _axis("tr", self.tr, float))
        if self.seed_count < 1:
            raise ValueError("seed_count must be >= 1")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"unknown direction {self.direction!r}; "
                f"known: {', '.join(_DIRECTIONS)}"
            )
        resolve_engine(self.engine)
        from ..topo import ensure_spec

        object.__setattr__(
            self, "topology", ensure_spec(self.topology).canonical()
        )
        # Axis-level validation catches bad values without expanding
        # the grid; cross-axis constraints (Tr <= Tp) are checked on
        # the extreme pairing, which bounds every grid point.
        for n in self.n_nodes:
            if n < 1:
                raise ValueError("n_nodes values must be >= 1")
        for value, label in ((min(self.tp), "tp"),):
            if value <= 0:
                raise ValueError(f"{label} values must be positive")
        if min(self.tc) < 0 or min(self.tr) < 0:
            raise ValueError("tc and tr values must be non-negative")
        RouterTimingParameters(
            max(self.n_nodes), min(self.tp), max(self.tc), max(self.tr)
        )
        if self.engine == "des" and self.topology != "clique":
            from ..topo import Coupling

            for n in self.n_nodes:
                if not Coupling(self.topology, n).is_complete:
                    raise ValueError(
                        "engine 'des' only models the fully-coupled "
                        f"(clique) case; topology {self.topology!r} is "
                        f"not complete at n={n}"
                    )

    # -- size and identity ----------------------------------------------------

    @property
    def point_count(self) -> int:
        """Grid points (seed range excluded)."""
        return len(self.n_nodes) * len(self.tp) * len(self.tc) * len(self.tr)

    @property
    def total_jobs(self) -> int:
        """Every job the campaign expands to, without expanding it."""
        return self.point_count * self.seed_count

    @property
    def seeds(self) -> range:
        return range(self.seed_start, self.seed_start + self.seed_count)

    def campaign_id(self) -> str:
        """Content hash naming this study (folds in the model version).

        Two hosts holding byte-different spec files that parse to the
        same spec agree on the id — it hashes the canonical dict, not
        the file.
        """
        payload = json.dumps(
            {"campaign": self.to_dict(), "model_version": MODEL_VERSION},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]

    # -- lazy expansion -------------------------------------------------------

    def points(self) -> Iterator[RouterTimingParameters]:
        """The grid points, in canonical axis order."""
        for n in self.n_nodes:
            for tp in self.tp:
                for tc in self.tc:
                    for tr in self.tr:
                        yield RouterTimingParameters(n, tp, tc, tr)

    def jobs(self) -> Iterator[SimulationJob]:
        """Every job of the study, lazily, in canonical order.

        Canonical order is grid points in axis order with seeds
        innermost — identical on every host, which the shard map and
        the resumability story both rely on.
        """
        for params in self.points():
            for seed in self.seeds:
                yield SimulationJob.from_params(
                    params,
                    seed=seed,
                    horizon=self.horizon,
                    direction=self.direction,
                    engine=self.engine,
                    topology=self.topology,
                )

    def jobs_for_point(self, params: RouterTimingParameters) -> list[SimulationJob]:
        """The seed family of one grid point (used by the reporter)."""
        return [
            SimulationJob.from_params(
                params,
                seed=seed,
                horizon=self.horizon,
                direction=self.direction,
                engine=self.engine,
                topology=self.topology,
            )
            for seed in self.seeds
        ]

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical plain-dict form (stable across sessions).

        ``topology`` appears only when non-default so pre-topology
        campaign ids are preserved byte for byte.
        """
        data = {
            "name": self.name,
            "n_nodes": list(self.n_nodes),
            "tp": list(self.tp),
            "tc": list(self.tc),
            "tr": list(self.tr),
            "seed_start": self.seed_start,
            "seed_count": self.seed_count,
            "horizon": self.horizon,
            "direction": self.direction,
            "engine": self.engine,
        }
        if self.topology != "clique":
            data["topology"] = self.topology
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        if not isinstance(data, dict):
            raise ValueError("campaign spec must be a mapping")
        known = {
            "name", "n_nodes", "tp", "tc", "tr", "seed_start",
            "seed_count", "horizon", "direction", "engine", "topology",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown campaign spec field(s): {', '.join(unknown)}")
        missing = sorted(
            {"name", "n_nodes", "tp", "tc", "tr", "seed_count", "horizon"}
            - set(data)
        )
        if missing:
            raise ValueError(f"campaign spec missing field(s): {', '.join(missing)}")
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except ValueError as error:
            raise ValueError(f"campaign spec is not valid JSON: {error}")
        return cls.from_dict(data)

    def to_toml(self) -> str:
        """Hand-emitted TOML (writing needs no parser, so no gating)."""
        lines = ["[campaign]"]
        for key, value in self.to_dict().items():
            if isinstance(value, str):
                lines.append(f'{key} = "{value}"')
            elif isinstance(value, list):
                lines.append(f"{key} = [{', '.join(repr(v) for v in value)}]")
            else:
                lines.append(f"{key} = {value!r}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_toml(cls, text: str) -> "CampaignSpec":
        if tomllib is None:
            raise ValueError(
                "reading TOML campaign specs needs Python 3.11+ (tomllib); "
                "use a JSON spec instead"
            )
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise ValueError(f"campaign spec is not valid TOML: {error}")
        table = data.get("campaign", data)
        return cls.from_dict(table)

    def save(self, path: str | os.PathLike) -> Path:
        """Write the spec to ``path`` (format from the suffix)."""
        target = Path(path)
        if target.suffix == ".toml":
            target.write_text(self.to_toml())
        else:
            target.write_text(self.to_json())
        return target


def load_spec(path: str | os.PathLike) -> CampaignSpec:
    """Read a campaign spec file; ``.toml`` parses as TOML, else JSON."""
    source = Path(path)
    text = source.read_text()
    if source.suffix == ".toml":
        return CampaignSpec.from_toml(text)
    return CampaignSpec.from_json(text)
