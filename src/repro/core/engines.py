"""The single registry of simulation engines.

Every layer that lets a caller choose an engine — ensembles, sweeps,
the CLI, the serve layer, :class:`~repro.parallel.job.SimulationJob` —
validates the name here, so an unknown engine raises the *same*
``ValueError`` everywhere instead of each call site growing its own
check.

Engines
-------
``des``
    The discrete-event implementation
    (:class:`~repro.core.model.PeriodicMessagesModel`): every timer
    expiry, message arrival, and busy-period end is an event.  The
    slowest engine and the semantic reference.
``cascade``
    :class:`~repro.core.fastsim.CascadeModel`: one heap of pending
    expiries, the cascade rule applied directly.  Bit-identical to
    the DES, one model per seed.
``batch``
    :class:`~repro.core.batch.BatchCascade`: the cascade rule over a
    struct-of-arrays ensemble — many seeds advanced by one kernel,
    bit-identical to ``cascade`` member by member.  Three backends
    (see :data:`repro.core.batch.BACKENDS`): ``python`` (portable
    reference), ``numpy`` (event-vectorized epochs + RNG bank, the
    default when NumPy imports), and ``compiled`` (numba- or C-built
    scalar kernel, opt-in via ``backend="compiled"`` or
    ``REPRO_BATCH_BACKEND``).  All three are enforced byte-identical
    by ``tests/test_engine_differential.py``.
"""

from __future__ import annotations

__all__ = ["ENGINES", "resolve_engine"]

#: Known engine names, in reference-to-fastest order.
ENGINES = ("des", "cascade", "batch")


def resolve_engine(engine: str) -> str:
    """Return ``engine`` unchanged if known, else raise ``ValueError``.

    This is the one place the error message is worded; every call site
    (ensemble, sweeps, CLI, serve, job specs) funnels through it so the
    failure mode is identical no matter where a bad name enters.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; known engines: {', '.join(ENGINES)}"
        )
    return engine
