"""Canonical parameter values from the paper.

Section 4: "For the simulations in this section, Tp is 121 seconds"
(chosen so the minimum timer value is comparable to the 120-second
DECnet timer on the authors' network) and "Tc = 0.11 seconds" (an
estimated 0.1 s of computation plus 0.01 s of transmission per routing
message).  The simulations use N = 20 nodes; the random component Tr
is the experimental variable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PAPER_N",
    "PAPER_TP",
    "PAPER_TC",
    "FIG4_TR",
    "FIG4_HORIZON",
    "FIG7_HORIZON",
    "FIG10_TR",
    "FIG10_F2_ROUNDS",
    "FIG11_TR",
    "RouterTimingParameters",
]

#: Number of routing nodes in the Section 4 simulations.
PAPER_N = 20

#: Constant component of the routing timer (seconds).
PAPER_TP = 121.0

#: Processing + transmission cost of one routing message (seconds).
PAPER_TC = 0.11

#: Random timer component used for Figure 4.
FIG4_TR = 0.1

#: Simulated horizon of Figures 4 and 6 (seconds; "just over 1 day").
FIG4_HORIZON = 1e5

#: Simulated horizon of Figures 7 and 8 (seconds; "115 days").
FIG7_HORIZON = 1e7

#: Random component for Figure 10 (time to synchronize).
FIG10_TR = 0.1

#: The paper's fitted f(2) = 19 rounds for the Figure 10 parameters.
FIG10_F2_ROUNDS = 19.0

#: Random component for Figure 11 (time to break up).
FIG11_TR = 0.3


@dataclass(frozen=True)
class RouterTimingParameters:
    """The (N, Tp, Tc, Tr) tuple that parameterizes both models.

    Attributes
    ----------
    n_nodes:
        Number of routers N.
    tp:
        Constant timer component Tp (seconds).
    tc:
        Per-message processing cost Tc (seconds).
    tr:
        Half-width of the random timer component Tr (seconds); each
        interval is drawn uniformly from ``[tp - tr, tp + tr]``.
    """

    n_nodes: int = PAPER_N
    tp: float = PAPER_TP
    tc: float = PAPER_TC
    tr: float = FIG4_TR

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if self.tp <= 0:
            raise ValueError("Tp must be positive")
        if self.tc < 0:
            raise ValueError("Tc must be non-negative")
        if self.tr < 0:
            raise ValueError("Tr must be non-negative")
        if self.tr > self.tp:
            raise ValueError("Tr > Tp would allow non-positive timer intervals")

    @property
    def round_length(self) -> float:
        """Average unsynchronized round length, Tp + Tc seconds."""
        return self.tp + self.tc

    @property
    def tr_over_tc(self) -> float:
        """The randomization ratio Tr/Tc the paper's guidance is stated in."""
        if self.tc == 0:
            raise ZeroDivisionError("Tr/Tc undefined for Tc = 0")
        return self.tr / self.tc

    def with_tr(self, tr: float) -> "RouterTimingParameters":
        """A copy with a different random component."""
        return RouterTimingParameters(self.n_nodes, self.tp, self.tc, tr)

    def with_nodes(self, n_nodes: int) -> "RouterTimingParameters":
        """A copy with a different node count."""
        return RouterTimingParameters(n_nodes, self.tp, self.tc, self.tr)
