"""Optional compiled providers for the batch cascade kernel.

:mod:`repro.core.batch`'s ``backend="compiled"`` runs the scalar
cascade kernel as machine code.  Two providers, tried in order:

``numba``
    :func:`advance_member` below is written in the nopython subset —
    packed flat arrays, no objects, no dicts — so when numba is
    importable it is ``njit``-compiled as-is.  A warmup call at
    resolve time forces compilation and demotes any numba failure to
    "unavailable" instead of a crash mid-run.
``c``
    When numba is absent, the line-for-line C translation in
    ``_batch_kernel.c`` (same directory) is built on demand with the
    system compiler and loaded through :mod:`ctypes`.  The build
    forbids FP contraction (``-ffp-contract=off -fno-fast-math``) so
    no fused multiply-adds can perturb the float stream — the kernel
    must stay byte-identical to the interpreted backends.

Both providers expose the same callable signature as
:func:`advance_member`; :func:`resolve_compiled` returns ``(provider
name, callable)`` or None, cached for the process.  NumPy is required
either way (the packed state lives in ndarrays); environments without
it use the pure-Python backend.

State packing
-------------
Per member (see :class:`MemberState`): ``expiry``/``rng`` are the
router timers and Lehmer states; ``fstate = [now, open_time]``
(NaN = no open group) and ``istate`` (indices :data:`I_OPEN_SIZE` …
:data:`I_TOTAL_CASCADES`) carry the fused tracker's scalars; the
sliding window deque becomes a ring buffer of ``[size, count]``
columns with ``win_meta = [head, entries]``; the first-passage dicts
become dense arrays (their keys are contiguous frontiers); round and
group series are growable buffers with one-slot metas.  The kernel is
*resumable*: it reserves buffer headroom at the top of every cascade
(one round slot, two group slots) and returns
:data:`STATUS_ROUNDS_FULL` / :data:`STATUS_GROUPS_FULL` before
touching anything, so the Python driver can grow the buffer and call
again with no state ambiguity.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

try:
    import numpy as _np
except ImportError:  # pragma: no cover - compiled backend needs numpy
    _np = None

__all__ = [
    "MemberState",
    "advance_member",
    "drive_member",
    "resolve_compiled",
]

_MOD = 2**31 - 1
_MUL = 16807
_INF = float("inf")
_NAN = float("nan")

# istate layout.
I_OPEN_SIZE = 0
I_WINDOW_RESETS = 1
I_WMAX = 2
I_FTAL_MAX = 3
I_FTAM_MIN = 4
I_ROUND_FILL = 5
I_ROUND_MAX = 6
I_TOTAL_RESETS = 7
I_TOTAL_CASCADES = 8

STATUS_HORIZON = 0
STATUS_STOPPED = 1
STATUS_ROUNDS_FULL = 2
STATUS_GROUPS_FULL = 3


def advance_member(
    expiry,
    rng,
    n,
    tc,
    low,
    span,
    tol,
    until,
    stop_sync,
    stop_unsync,
    keep_history,
    fstate,
    istate,
    win_sizes,
    win_cnts,
    win_meta,
    ftal,
    ftam,
    round_times,
    round_largest,
    round_meta,
    group_times,
    group_sizes,
    group_meta,
    idx_scratch,
    time_scratch,
):
    """Advance one packed member to ``until`` or a stop condition.

    The exact arithmetic of ``BatchCascade._advance_slice`` over flat
    arrays.  Returns a ``STATUS_*`` code; on ``ROUNDS_FULL`` /
    ``GROUPS_FULL`` no state from the pending cascade has been
    written, so the caller can grow the buffer and simply call again.
    """
    cap = n + 1  # window ring capacity
    rt_cap = round_times.shape[0]
    gt_cap = group_times.shape[0]

    now = fstate[0]
    open_time = fstate[1]
    open_size = istate[I_OPEN_SIZE]
    wres = istate[I_WINDOW_RESETS]
    wmax = istate[I_WMAX]
    ftal_max = istate[I_FTAL_MAX]
    ftam_min = istate[I_FTAM_MIN]
    rfill = istate[I_ROUND_FILL]
    rmax = istate[I_ROUND_MAX]
    head = win_meta[0]
    count = win_meta[1]

    status = -1
    while True:
        # Headroom reservation: one round slot, two group slots (one
        # close during the cascade + one for the trailing finish).
        if round_meta[0] + 1 > rt_cap:
            status = STATUS_ROUNDS_FULL
            break
        if keep_history != 0 and group_meta[0] + 2 > gt_cap:
            status = STATUS_GROUPS_FULL
            break

        # Earliest pending expiry; strict < keeps the first (lowest
        # node id) minimum, matching the heap's (time, node) order.
        e1 = expiry[0]
        i1 = 0
        for i in range(1, n):
            if expiry[i] < e1:
                e1 = expiry[i]
                i1 = i
        if e1 > until:
            if now < until:
                now = until
            status = STATUS_HORIZON
            break

        expiry[i1] = _INF
        idx_scratch[0] = i1
        time_scratch[0] = e1
        g = 1
        window = e1 + tc
        while True:
            e = expiry[0]
            ii = 0
            for i in range(1, n):
                if expiry[i] < e:
                    e = expiry[i]
                    ii = i
            if e > window:
                break
            expiry[ii] = _INF
            idx_scratch[g] = ii
            time_scratch[g] = e
            g += 1
            window += tc
        if window > until:
            # Busy period outlives the horizon: restore and stop.
            for j in range(g):
                expiry[idx_scratch[j]] = time_scratch[j]
            now = until
            status = STATUS_HORIZON
            break

        istate[I_TOTAL_CASCADES] += 1
        now = window
        t = window

        # -- fused tracker: record_reset x g at time t ----------------
        if open_time == open_time and abs(t - open_time) <= tol:
            s = open_size
            li = head + count - 1
            if li >= cap:
                li -= cap
        else:
            if open_time == open_time:
                if keep_history != 0:
                    gi = group_meta[0]
                    group_times[gi] = open_time
                    group_sizes[gi] = open_size
                    group_meta[0] = gi + 1
            li = head + count
            if li >= cap:
                li -= cap
            win_sizes[li] = 0
            win_cnts[li] = 0
            count += 1
            s = 0
        for _ in range(g):
            s += 1
            win_sizes[li] = s
            win_cnts[li] += 1
            wres += 1
            if s > wmax:
                wmax = s
            while wres > n:
                win_cnts[head] -= 1
                wres -= 1
                if win_cnts[head] == 0:
                    esize = win_sizes[head]
                    head += 1
                    if head >= cap:
                        head -= cap
                    count -= 1
                    if esize >= wmax and wmax > 1:
                        wmax = 1
                        q = head
                        for _ in range(count):
                            if win_sizes[q] > wmax:
                                wmax = win_sizes[q]
                            q += 1
                            if q >= cap:
                                q -= cap
            if s > ftal_max:
                ftal[s] = t
                ftal_max = s
            if wres >= n and wmax < ftam_min:
                for v in range(wmax, ftam_min):
                    ftam[v] = t
                ftam_min = wmax
            rfill += 1
            if s > rmax:
                rmax = s
            if rfill >= n:
                ri = round_meta[0]
                round_times[ri] = t
                round_largest[ri] = rmax
                round_meta[0] = ri + 1
                rfill = 0
                rmax = 0
        open_time = t
        open_size = s
        istate[I_TOTAL_RESETS] += g

        # -- redraw, in pop order -------------------------------------
        for j in range(g):
            i = idx_scratch[j]
            state = (_MUL * rng[i]) % _MOD
            rng[i] = state
            expiry[i] = window + (low + span * (state / _MOD))

        if stop_sync != 0 and (s >= n or (wres >= n and wmax >= n)):
            status = STATUS_STOPPED
            break
        if stop_unsync != 0 and wres >= n and wmax <= 1:
            status = STATUS_STOPPED
            break

    if status == STATUS_HORIZON or status == STATUS_STOPPED:
        # ClusterTracker.finish(): close the trailing open group.
        if open_time == open_time:
            if keep_history != 0:
                gi = group_meta[0]
                group_times[gi] = open_time
                group_sizes[gi] = open_size
                group_meta[0] = gi + 1
            open_time = _NAN
            open_size = 0

    fstate[0] = now
    fstate[1] = open_time
    istate[I_OPEN_SIZE] = open_size
    istate[I_WINDOW_RESETS] = wres
    istate[I_WMAX] = wmax
    istate[I_FTAL_MAX] = ftal_max
    istate[I_FTAM_MIN] = ftam_min
    istate[I_ROUND_FILL] = rfill
    istate[I_ROUND_MAX] = rmax
    win_meta[0] = head
    win_meta[1] = count
    return status


class MemberState:
    """One member's packed arrays for the compiled kernel."""

    __slots__ = (
        "n",
        "keep_history",
        "expiry",
        "rng",
        "fstate",
        "istate",
        "win_sizes",
        "win_cnts",
        "win_meta",
        "ftal",
        "ftam",
        "round_times",
        "round_largest",
        "round_meta",
        "group_times",
        "group_sizes",
        "group_meta",
        "idx_scratch",
        "time_scratch",
    )

    def __init__(self, expiry, rng, n, keep_history, rounds_cap=64):
        np = _np
        self.n = n
        self.keep_history = 1 if keep_history else 0
        self.expiry = np.array(expiry, dtype=np.float64)
        self.rng = np.array(rng, dtype=np.int64)
        self.fstate = np.array([0.0, _NAN], dtype=np.float64)
        self.istate = np.zeros(9, dtype=np.int64)
        self.istate[I_FTAM_MIN] = n + 1
        self.win_sizes = np.zeros(n + 1, dtype=np.int64)
        self.win_cnts = np.zeros(n + 1, dtype=np.int64)
        self.win_meta = np.zeros(2, dtype=np.int64)
        self.ftal = np.full(n + 1, _NAN, dtype=np.float64)
        self.ftam = np.full(n + 1, _NAN, dtype=np.float64)
        self.round_times = np.empty(rounds_cap, dtype=np.float64)
        self.round_largest = np.empty(rounds_cap, dtype=np.int64)
        self.round_meta = np.zeros(1, dtype=np.int64)
        gcap = 64 if keep_history else 2
        self.group_times = np.empty(gcap, dtype=np.float64)
        self.group_sizes = np.empty(gcap, dtype=np.int64)
        self.group_meta = np.zeros(1, dtype=np.int64)
        self.idx_scratch = np.empty(n, dtype=np.int64)
        self.time_scratch = np.empty(n, dtype=np.float64)

    def _grow(self, values_attr, sizes_attr, meta):
        for attr in (values_attr, sizes_attr):
            old = getattr(self, attr)
            new = _np.empty(max(2 * old.shape[0], 16), dtype=old.dtype)
            new[: old.shape[0]] = old
            setattr(self, attr, new)

    def grow_rounds(self):
        self._grow("round_times", "round_largest", self.round_meta)

    def grow_groups(self):
        self._grow("group_times", "group_sizes", self.group_meta)

    def kernel_args(self, tc, low, span, tol, until, stop_sync, stop_unsync):
        return (
            self.expiry,
            self.rng,
            self.n,
            tc,
            low,
            span,
            tol,
            until,
            1 if stop_sync else 0,
            1 if stop_unsync else 0,
            self.keep_history,
            self.fstate,
            self.istate,
            self.win_sizes,
            self.win_cnts,
            self.win_meta,
            self.ftal,
            self.ftam,
            self.round_times,
            self.round_largest,
            self.round_meta,
            self.group_times,
            self.group_sizes,
            self.group_meta,
            self.idx_scratch,
            self.time_scratch,
        )

    def sync_member(self, member):
        """Unpack this state into a ``BatchMember``'s public fields."""
        from .clusters import ClusterGroup  # local: avoid cycle at import

        n = self.n
        member.now = float(self.fstate[0])
        open_time = float(self.fstate[1])
        member._open_time = None if open_time != open_time else open_time
        member._open_size = int(self.istate[I_OPEN_SIZE])
        member._window_resets = int(self.istate[I_WINDOW_RESETS])
        member._wmax = int(self.istate[I_WMAX])
        member._ftal_max = int(self.istate[I_FTAL_MAX])
        member._ftam_min = int(self.istate[I_FTAM_MIN])
        member._round_fill = int(self.istate[I_ROUND_FILL])
        member._round_max = int(self.istate[I_ROUND_MAX])
        member.total_resets = int(self.istate[I_TOTAL_RESETS])
        member.total_cascades = int(self.istate[I_TOTAL_CASCADES])
        member.first_time_at_least = {
            s: float(self.ftal[s]) for s in range(1, member._ftal_max + 1)
        }
        member.first_time_at_most = {
            s: float(self.ftam[s]) for s in range(member._ftam_min, n + 1)
        }
        rc = int(self.round_meta[0])
        member.round_times = self.round_times[:rc].tolist()
        member.round_largest = self.round_largest[:rc].tolist()
        if self.keep_history:
            gc = int(self.group_meta[0])
            times = self.group_times[:gc].tolist()
            sizes = self.group_sizes[:gc].tolist()
            member.groups = [
                ClusterGroup(t, s) for t, s in zip(times, sizes)
            ]


def drive_member(kernel, state, tc, low, span, tol, until, stop_sync, stop_unsync):
    """Run the kernel to completion, growing buffers as it asks."""
    while True:
        status = kernel(
            *state.kernel_args(tc, low, span, tol, until, stop_sync, stop_unsync)
        )
        if status == STATUS_ROUNDS_FULL:
            state.grow_rounds()
        elif status == STATUS_GROUPS_FULL:
            state.grow_groups()
        else:
            return status


# -- provider resolution -------------------------------------------------

_RESOLVED: object = "unset"


def resolve_compiled(force: str | None = None):
    """``(provider_name, kernel)`` or None, cached per process.

    ``force`` (or the ``REPRO_COMPILED_PROVIDER`` env var) pins one
    provider ("numba" / "c") instead of trying both — the hook the CI
    compiled-backend job uses to assert which provider it exercised.
    """
    global _RESOLVED
    if _RESOLVED == "unset":
        _RESOLVED = _resolve(
            force or os.environ.get("REPRO_COMPILED_PROVIDER", "").strip() or None
        )
    return _RESOLVED


def _resolve(force):
    if _np is None:
        return None
    if force not in (None, "numba", "c"):
        raise ValueError(f"unknown compiled provider {force!r}")
    if force in (None, "numba"):
        kernel = _try_numba()
        if kernel is not None:
            return ("numba", kernel)
    if force in (None, "c"):
        kernel = _try_cmodule()
        if kernel is not None:
            return ("c", kernel)
    return None


def _warmup(kernel):
    """Force-compile / smoke-test a candidate kernel on a tiny case."""
    state = MemberState([0.25, 0.75], [11, 12], 2, True, rounds_cap=4)
    status = drive_member(kernel, state, 0.1, 0.9, 0.2, 1e-7, 5.0, False, False)
    if status != STATUS_HORIZON:
        raise RuntimeError(f"warmup returned status {status}")


def _try_numba():
    try:
        import numba
    except ImportError:
        return None
    try:
        # fastmath stays off: reassociation/contraction would break
        # bit-identity with the interpreted backends.
        kernel = numba.njit(cache=False, fastmath=False)(advance_member)
        _warmup(kernel)
    except Exception:  # pragma: no cover - depends on numba install health
        return None
    return kernel


def _c_source_path():
    return os.path.join(os.path.dirname(__file__), "_batch_kernel.c")


def _cache_dir():
    override = os.environ.get("REPRO_CKERNEL_CACHE", "").strip()
    if override:
        return override
    return os.path.join(
        os.environ.get("XDG_CACHE_HOME")
        or os.path.join(os.path.expanduser("~"), ".cache"),
        "repro-ckernel",
    )


def _build_clib():
    """Compile ``_batch_kernel.c`` into a cached shared library."""
    src = _c_source_path()
    with open(src, "rb") as fh:
        source = fh.read()
    tag = hashlib.sha256(source).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"batch_kernel_{tag}.so")
    if os.path.exists(lib_path):
        return lib_path
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None:
        raise RuntimeError("no C compiler on PATH")
    os.makedirs(cache, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
    os.close(fd)
    try:
        subprocess.run(
            [
                cc,
                "-O2",
                "-fPIC",
                "-shared",
                # No FMA contraction, no fast-math value changes: the
                # kernel must round exactly like the Python backends.
                "-ffp-contract=off",
                "-fno-fast-math",
                src,
                "-o",
                tmp,
                "-lm",
            ],
            check=True,
            capture_output=True,
        )
        os.replace(tmp, lib_path)  # atomic publish; racers converge
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return lib_path


def _try_cmodule():
    try:
        lib_path = _build_clib()
        lib = ctypes.CDLL(lib_path)
        kernel = _c_adapter(lib)
        _warmup(kernel)
    except Exception:
        return None
    return kernel


def _c_adapter(lib):
    """Wrap the C entry point behind the Python kernel's signature."""
    fn = lib.repro_advance_member
    c_ll = ctypes.c_longlong
    c_d = ctypes.c_double
    p_d = ctypes.POINTER(c_d)
    p_ll = ctypes.POINTER(c_ll)
    fn.restype = c_ll
    fn.argtypes = [
        p_d,  # expiry
        p_ll,  # rng
        c_ll,  # n
        c_d,  # tc
        c_d,  # low
        c_d,  # span
        c_d,  # tol
        c_d,  # until
        c_ll,  # stop_sync
        c_ll,  # stop_unsync
        c_ll,  # keep_history
        p_d,  # fstate
        p_ll,  # istate
        p_ll,  # win_sizes
        p_ll,  # win_cnts
        p_ll,  # win_meta
        p_d,  # ftal
        p_d,  # ftam
        p_d,  # round_times
        p_ll,  # round_largest
        p_ll,  # round_meta
        c_ll,  # round_cap
        p_d,  # group_times
        p_ll,  # group_sizes
        p_ll,  # group_meta
        c_ll,  # group_cap
        p_ll,  # idx_scratch
        p_d,  # time_scratch
    ]

    def dp(a):
        return a.ctypes.data_as(p_d)

    def lp(a):
        return a.ctypes.data_as(p_ll)

    def kernel(
        expiry,
        rng,
        n,
        tc,
        low,
        span,
        tol,
        until,
        stop_sync,
        stop_unsync,
        keep_history,
        fstate,
        istate,
        win_sizes,
        win_cnts,
        win_meta,
        ftal,
        ftam,
        round_times,
        round_largest,
        round_meta,
        group_times,
        group_sizes,
        group_meta,
        idx_scratch,
        time_scratch,
    ):
        return fn(
            dp(expiry),
            lp(rng),
            n,
            tc,
            low,
            span,
            tol,
            until,
            stop_sync,
            stop_unsync,
            keep_history,
            dp(fstate),
            lp(istate),
            lp(win_sizes),
            lp(win_cnts),
            lp(win_meta),
            dp(ftal),
            dp(ftam),
            dp(round_times),
            lp(round_largest),
            lp(round_meta),
            round_times.shape[0],
            dp(group_times),
            lp(group_sizes),
            lp(group_meta),
            group_times.shape[0],
            lp(idx_scratch),
            dp(time_scratch),
        )

    return kernel
