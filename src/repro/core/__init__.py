"""The Periodic Messages model — the paper's primary contribution.

Exposes the discrete-event model (:class:`PeriodicMessagesModel`),
cluster tracking, timer policies, the paper's canonical parameters,
and sweep/transition-finding helpers.
"""

from .batch import BatchCascade, BatchMember
from .clusters import ClusterGroup, ClusterTracker
from .engines import ENGINES, resolve_engine
from .ensemble import EnsembleResult, FirstPassageEnsemble
from .fastsim import CascadeModel
from .model import InitialPhases, ModelConfig, PeriodicMessagesModel, RouterState
from .parameters import (
    FIG4_HORIZON,
    FIG4_TR,
    FIG7_HORIZON,
    FIG10_F2_ROUNDS,
    FIG10_TR,
    FIG11_TR,
    PAPER_N,
    PAPER_TC,
    PAPER_TP,
    RouterTimingParameters,
)
from .sweeps import (
    SweepResult,
    find_transition_n,
    sweep_nodes,
    sweep_tr,
    time_to_break_up,
    time_to_synchronize,
)
from .timers import (
    DistinctPeriodTimer,
    FixedTimer,
    RecommendedJitterTimer,
    TimerPolicy,
    UniformJitterTimer,
    make_paper_timer,
)

__all__ = [
    "BatchCascade",
    "BatchMember",
    "ClusterGroup",
    "ClusterTracker",
    "CascadeModel",
    "ENGINES",
    "resolve_engine",
    "EnsembleResult",
    "FirstPassageEnsemble",
    "InitialPhases",
    "ModelConfig",
    "PeriodicMessagesModel",
    "RouterState",
    "FIG4_HORIZON",
    "FIG4_TR",
    "FIG7_HORIZON",
    "FIG10_F2_ROUNDS",
    "FIG10_TR",
    "FIG11_TR",
    "PAPER_N",
    "PAPER_TC",
    "PAPER_TP",
    "RouterTimingParameters",
    "SweepResult",
    "find_transition_n",
    "sweep_nodes",
    "sweep_tr",
    "time_to_break_up",
    "time_to_synchronize",
    "DistinctPeriodTimer",
    "FixedTimer",
    "RecommendedJitterTimer",
    "TimerPolicy",
    "UniformJitterTimer",
    "make_paper_timer",
]
