"""Cluster bookkeeping for the Periodic Messages model.

A *cluster* is a set of routers that reset their routing timers at the
same instant — in the model, synchronized routers accumulate exactly
the same busy-period extensions, so their reset times are identical.
The :class:`ClusterTracker` groups timer-reset events into clusters
online, maintains the "largest cluster in the current round of N
routing messages" statistic the paper's cluster graphs plot (Figure
6), and records first-passage times to each cluster size (the
simulation curves of Figures 10 and 11).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["ClusterGroup", "ClusterTracker"]

#: Two resets within this many seconds belong to the same cluster.  In
#: the model synchronized resets are *exactly* simultaneous; the
#: tolerance only guards against floating-point drift in long runs.
RESET_TIME_TOLERANCE = 1e-7


@dataclass(frozen=True)
class ClusterGroup:
    """One group of simultaneous timer resets."""

    time: float
    size: int


class ClusterTracker:
    """Online cluster detection over the stream of timer resets.

    Parameters
    ----------
    n_nodes:
        Number of routers N; a round is N consecutive routing messages,
        and a cluster of size N means full synchronization.
    keep_history:
        When True, every closed :class:`ClusterGroup` is retained in
        :attr:`groups` (needed to draw cluster graphs).  When False,
        only the online statistics are kept, so arbitrarily long runs
        use constant memory.
    tolerance:
        Resets within this many seconds of the group's first reset are
        counted as simultaneous.  The default suits the paper's
        immediate-notification model, where clustered resets are
        exactly simultaneous; runs with a positive notification delay
        pass a correspondingly larger value.
    probe:
        Optional :class:`~repro.obs.probes.SimulationProbe` notified
        of every reset (``on_reset``) and every closed group
        (``on_group``).  Purely observational — the tracker never
        reads anything back from it — so an attached probe cannot
        change a trajectory (``tests/test_obs_probes.py``).
    """

    def __init__(
        self,
        n_nodes: int,
        keep_history: bool = True,
        tolerance: float = RESET_TIME_TOLERANCE,
        probe=None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be positive")
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.n_nodes = n_nodes
        self.keep_history = keep_history
        self.tolerance = tolerance
        self.probe = probe
        self.groups: list[ClusterGroup] = []
        self.total_resets = 0
        # The currently-open group of simultaneous resets.
        self._open_time: float | None = None
        self._open_size = 0
        # Sliding window of the last N reset events' group sizes.  Each
        # entry is the (mutable running) size of the group that reset
        # belonged to; storing per-group (size, count-in-window) pairs.
        self._window: deque[list] = deque()  # entries: [group_size, resets_in_window]
        self._window_resets = 0
        # First-passage bookkeeping.
        self.first_time_at_least: dict[int, float] = {}
        self.first_time_at_most: dict[int, float] = {}
        # Non-overlapping per-round largest-cluster series (Figure 6).
        self.round_times: list[float] = []
        self.round_largest: list[int] = []
        self._round_fill = 0
        self._round_max = 0
        self._round_end_time = 0.0

    # -- event intake ------------------------------------------------------

    def record_reset(self, time: float, node_id: int) -> None:
        """Record that ``node_id`` reset its routing timer at ``time``.

        Resets must be fed in non-decreasing time order (the DES
        guarantees this).
        """
        if self._open_time is not None and time < self._open_time - self.tolerance:
            raise ValueError(f"resets out of order: {time} after {self._open_time}")
        self.total_resets += 1
        if self.probe is not None:
            self.probe.on_reset(time, node_id)
        if self._open_time is not None and abs(time - self._open_time) <= self.tolerance:
            self._open_size += 1
            self._window[-1][0] = self._open_size
        else:
            self._close_open_group()
            self._open_time = time
            self._open_size = 1
            self._window.append([1, 0])
        # The newest reset joins the window.
        self._window[-1][1] += 1
        self._window_resets += 1
        while self._window_resets > self.n_nodes:
            oldest = self._window[0]
            oldest[1] -= 1
            self._window_resets -= 1
            if oldest[1] == 0:
                self._window.popleft()
        self._note_first_passages(time)
        self._advance_round(time)

    def _close_open_group(self) -> None:
        if self._open_time is None:
            return
        if self.keep_history:
            self.groups.append(ClusterGroup(self._open_time, self._open_size))
        if self.probe is not None:
            self.probe.on_group(self._open_time, self._open_size)
        self._open_time = None
        self._open_size = 0

    def finish(self) -> None:
        """Close the trailing open group (call once, at end of run)."""
        self._close_open_group()

    # -- derived statistics ---------------------------------------------------

    @property
    def open_group_size(self) -> int:
        """Size of the in-progress simultaneous-reset group."""
        return self._open_size

    def largest_in_window(self) -> int:
        """Largest cluster among the last N routing messages.

        This is the paper's per-round state: the Markov chain is "in
        state i" when the largest cluster from a round of N routing
        messages has size i.
        """
        if not self._window:
            return 0
        return max(entry[0] for entry in self._window)

    def is_fully_synchronized(self) -> bool:
        """True when the last N messages form a single simultaneous cluster."""
        return self._open_size >= self.n_nodes or (
            self._window_resets >= self.n_nodes and self.largest_in_window() >= self.n_nodes
        )

    def is_fully_unsynchronized(self) -> bool:
        """True when a full window of N messages contains only lone resets."""
        return self._window_resets >= self.n_nodes and self.largest_in_window() <= 1

    def _note_first_passages(self, time: float) -> None:
        size = self._open_size
        if size not in self.first_time_at_least:
            # A cluster of this size implies all smaller sizes were reached.
            for smaller in range(size, 0, -1):
                if smaller in self.first_time_at_least:
                    break
                self.first_time_at_least[smaller] = time
        if self._window_resets >= self.n_nodes:
            largest = self.largest_in_window()
            if largest not in self.first_time_at_most:
                for bigger in range(largest, self.n_nodes + 1):
                    if bigger in self.first_time_at_most:
                        break
                    self.first_time_at_most[bigger] = time

    def _advance_round(self, time: float) -> None:
        self._round_fill += 1
        self._round_max = max(self._round_max, self._open_size)
        if self._round_fill >= self.n_nodes:
            self.round_times.append(time)
            self.round_largest.append(self._round_max)
            self._round_fill = 0
            self._round_max = 0

    # -- reporting -----------------------------------------------------------

    def time_to_cluster_size(self, size: int) -> float | None:
        """First time a simultaneous cluster of at least ``size`` was seen."""
        if not 1 <= size <= self.n_nodes:
            raise ValueError(f"size must be in [1, {self.n_nodes}]")
        return self.first_time_at_least.get(size)

    def time_to_break_down_to(self, size: int) -> float | None:
        """First time the per-round largest cluster fell to ``size`` or less."""
        if not 1 <= size <= self.n_nodes:
            raise ValueError(f"size must be in [1, {self.n_nodes}]")
        return self.first_time_at_most.get(size)

    @property
    def synchronization_time(self) -> float | None:
        """First time a full cluster of N simultaneous resets formed."""
        return self.first_time_at_least.get(self.n_nodes)

    @property
    def breakup_time(self) -> float | None:
        """First time the system returned to all-lone-clusters."""
        return self.first_time_at_most.get(1)

    def cluster_size_histogram(self) -> dict[int, int]:
        """Counts of closed groups by size (requires ``keep_history``)."""
        if not self.keep_history:
            raise RuntimeError("history was not kept")
        histogram: dict[int, int] = {}
        for group in self.groups:
            histogram[group.size] = histogram.get(group.size, 0) + 1
        return histogram
