"""Batched struct-of-arrays backend for the cascade rule.

One :class:`~repro.core.fastsim.CascadeModel` per seed pays for a
heap, a :class:`~repro.core.clusters.ClusterTracker`, and an object
per pending expiry — at ensemble scale that bookkeeping, not the
model, is the dominant cost.  :class:`BatchCascade` advances a whole
ensemble of seeds through one kernel instead: every member's pending
timer expiries live in one SoA slab (member ``k``'s routers occupy
row ``k``), the cascade rule is applied per member, and the cluster
statistics are maintained by a fused tracker that keeps an
incremental window maximum instead of rescanning the window on every
reset.

Event vectorization (the ``numpy`` backend)
-------------------------------------------
Between cascades every router's next expiry is an independent draw,
so the dynamics decompose into *inter-cascade epochs* (Lyu's
pulse-coupled-oscillator structure): as long as consecutive expiries
are more than ``Tc`` apart, each expiry is a singleton cascade that
resets exactly one router and cannot interact with any other pending
or redrawn timer.  The vectorized kernel exploits this: each epoch it

1. sorts every member's slice of the slab once (one
   ``argsort``/compare over the whole SoA slab — the *boundary
   scan*),
2. advances each quiescent member through its whole run of singleton
   resets in bulk — tracker statistics are updated with closed-form
   per-run arithmetic, and the consumed interval draws come from
   precomputed per-stream RNG blocks (the exact Lehmer jump), and
3. drops into the scalar per-member path only for the rare members
   actually inside a cascade window (two expiries within ``Tc``),
   which process one cascade and rejoin the bulk path next epoch.

A run of singleton resets is provably non-interacting when (a) each
sorted gap exceeds ``Tc`` (no window capture), and (b) every
processed expiry precedes ``e_min + (Tp - Tr)`` — the earliest time
any redrawn timer could re-enter (redraws land at ``t + Tc + draw``
with ``draw > Tp - Tr``).  Members violating either bound fall back
to the scalar path, so the invariant is structural, not statistical.

Bit-for-bit identity
--------------------
Each member's trajectory is identical to ``CascadeModel(params,
seed=s)`` — not statistically, *byte for byte* — because every
backend replays the exact same arithmetic in the exact same order:

* Stream derivation repeats :meth:`repro.rng.RandomSource.spawn`
  verbatim: one master Lehmer advance per router, the same
  multiplicative mix, the same ``n + 1`` stream id for the phase
  stream.
* Each router's interval draws are ``low + (high - low) * (state /
  m)`` with the same operand order, so every float rounds the same
  way.
* The heap's ``(time, node)`` tie-break is reproduced by taking the
  *first* minimum in node order within the member's slice (a stable
  argsort in the vectorized path).
* The busy window grows by sequential ``window += tc`` additions (no
  closed form), accumulating the identical rounding; the bulk path's
  singleton windows are the same single ``e + tc`` add.
* The fused tracker is an algebraic rewrite of
  :class:`~repro.core.clusters.ClusterTracker` — same window deque,
  same eviction order, same first-passage backfills — and the bulk
  path's closed-form updates reproduce its per-reset arithmetic
  exactly (suffix-maximum over the evicted window prefix).  All of it
  is verified against the DES by
  ``tests/test_engine_differential.py``, including consumed-RNG
  positions.

Backends
--------
``python``
    Pure-Python scalar kernel, no third-party dependencies.  Always
    available; the portable reference.
``numpy``
    The event-vectorized kernel above, with a streaming per-stream
    RNG block bank (:class:`_RngBank`).  Auto-selected when NumPy is
    importable.
``compiled``
    The scalar kernel compiled to machine code — ``numba`` when
    importable, else a small C module built on demand with the system
    compiler (see :mod:`repro.core._batch_kernel`).  Optional: it is
    never auto-selected; request it with ``backend="compiled"`` (or
    the ``REPRO_BATCH_BACKEND`` environment variable) and check
    :func:`compiled_backend_available` first.

:data:`BACKEND` reports which backend new :class:`BatchCascade`
instances use by default; any can be forced with ``backend=...``, and
all produce byte-identical results.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Sequence

from .clusters import RESET_TIME_TOLERANCE, ClusterGroup, ClusterTracker
from .parameters import RouterTimingParameters

try:  # NumPy is optional: the pure-Python path is always available.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

__all__ = [
    "BACKEND",
    "BACKENDS",
    "BatchCascade",
    "BatchMember",
    "compiled_backend_available",
    "default_backend",
]

#: Every backend name :class:`BatchCascade` accepts.
BACKENDS = ("python", "numpy", "compiled")

_MOD = 2**31 - 1  # == repro.rng.lehmer.MODULUS
_MUL = 16807  # == repro.rng.lehmer.MULTIPLIER
_INF = float("inf")

#: Soft cap on the total number of precomputed uniforms held by the
#: RNG block bank (floats across all member×router streams).  Beyond
#: it the bank *streams*: block length is floored at
#: :data:`_MIN_BLOCK` and exhausted streams refill in vectorized
#: groups, so very large ensembles amortize refill cost instead of
#: degenerating toward per-draw refills.
_BLOCK_BUDGET = 4_000_000

#: Blocks never shrink below this many draws per stream, whatever the
#: ensemble size — the streaming-refil floor.
_MIN_BLOCK = 64

#: And never grow beyond this, whatever the horizon.
_MAX_BLOCK = 16384


def default_backend() -> str:
    """The backend new instances use when none is forced.

    ``REPRO_BATCH_BACKEND`` overrides the auto-detection ("numpy" when
    NumPy imported, else "python") — the hook the numpy-free and
    compiled-backend CI jobs use to pin the path under test.
    """
    forced = os.environ.get("REPRO_BATCH_BACKEND", "").strip()
    if forced:
        if forced not in BACKENDS:
            raise ValueError(
                f"REPRO_BATCH_BACKEND={forced!r} is not a known batch "
                f"backend; known backends: {', '.join(BACKENDS)}"
            )
        return forced
    return "numpy" if _np is not None else "python"


#: The backend new instances use when none is forced (resolved once at
#: import; see :func:`default_backend`).
BACKEND = default_backend()


def compiled_backend_available() -> bool:
    """Whether ``backend="compiled"`` would work in this environment.

    True when either numba is importable or the bundled C kernel can
    be (or already has been) built with the system compiler.
    """
    from . import _batch_kernel

    return _batch_kernel.resolve_compiled() is not None


class BatchMember:
    """One ensemble member's trajectory state and statistics.

    Exposes the same outputs as ``CascadeModel`` + its tracker:
    :attr:`first_time_at_least` / :attr:`first_time_at_most` (the
    first-passage dicts), :attr:`round_times` / :attr:`round_largest`
    (the per-round largest-cluster series), :attr:`groups` (closed
    reset groups, when history is kept), :attr:`total_resets`,
    :attr:`total_cascades`, :attr:`now`, and the
    :attr:`synchronization_time` / :attr:`breakup_time` properties.
    """

    __slots__ = (
        "seed",
        "n_nodes",
        "now",
        "total_cascades",
        "total_resets",
        "groups",
        "first_time_at_least",
        "first_time_at_most",
        "round_times",
        "round_largest",
        "_open_time",
        "_open_size",
        "_win",
        "_window_resets",
        "_wmax",
        "_ftal_max",
        "_ftam_min",
        "_round_fill",
        "_round_max",
        "_sing_head",
    )

    def __init__(self, seed: int, n_nodes: int) -> None:
        self.seed = seed
        self.n_nodes = n_nodes
        self.now = 0.0
        self.total_cascades = 0
        self.total_resets = 0
        self.groups: list[ClusterGroup] = []
        self.first_time_at_least: dict[int, float] = {}
        self.first_time_at_most: dict[int, float] = {}
        self.round_times: list[float] = []
        self.round_largest: list[int] = []
        self._open_time: float | None = None
        self._open_size = 0
        # Sliding window of the last N resets' group sizes, exactly as
        # ClusterTracker keeps it: [group_size, resets_in_window] pairs.
        self._win: deque[list] = deque()
        self._window_resets = 0
        # Incremental max over window entry sizes (== largest_in_window).
        self._wmax = 0
        # first_time_at_least keys are contiguous {1..max}; at_most keys
        # contiguous {min..n}.  Tracking the frontiers replaces the
        # per-reset dict membership probes and backfill loops.
        self._ftal_max = 0
        self._ftam_min = n_nodes + 1
        self._round_fill = 0
        self._round_max = 0
        # Proven lower bound on how many of the window's *oldest*
        # resets belong to singleton groups.  The vector kernel's
        # steady-state shortcuts maintain it exactly (making their
        # "may we rotate?" prefix walks O(1)); every slow path just
        # resets it to the trivially-safe 0.
        self._sing_head = 0

    @property
    def synchronization_time(self) -> float | None:
        """First time all N routers reset together."""
        return self.first_time_at_least.get(self.n_nodes)

    @property
    def breakup_time(self) -> float | None:
        """First time a full window of lone resets occurred."""
        return self.first_time_at_most.get(1)


class _RngBank:
    """Streaming per-stream Lehmer block bank (numpy backend).

    Each of the ``members × routers`` streams gets a block of
    precomputed interval draws.  Block states come from jumping the
    recurrence — ``x_j = (a^j * x_0) mod m``, exact in int64 because
    ``a^j mod m < 2**31`` and ``x_0 < 2**31`` keep every product under
    ``2**62`` — and the uniform transform divides by the modulus and
    applies ``low + span * u`` elementwise: the same float64
    operations in the same order as the scalar path, so block values
    are bit-identical to sequential draws.

    Streaming refill: when a stream's block is exhausted it is
    regenerated by jumping its base state one block forward.  Refills
    are *grouped* — all streams that ran dry in the same bulk
    consumption refill through one vectorized jump — so arbitrarily
    large ensembles pay amortized O(1) per draw even when the block
    budget caps the per-stream length (see :data:`_MIN_BLOCK`).
    """

    __slots__ = (
        "low",
        "span",
        "length",
        "powers",
        "jump",
        "base",
        "pos",
        "values",
        "refills",
        "refill_seconds",
    )

    def __init__(
        self, states: Sequence[int], low: float, span: float, length: int
    ) -> None:
        self.low = low
        self.span = span
        self.length = length
        powers = []
        p = 1
        for _ in range(length):
            p = (p * _MUL) % _MOD
            powers.append(p)
        self.powers = _np.array(powers, dtype=_np.int64)
        self.jump = pow(_MUL, length, _MOD)
        self.base = _np.array(states, dtype=_np.int64)
        self.pos = _np.zeros(len(states), dtype=_np.int64)
        self.values = self.low + self.span * (
            (self.base[:, None] * self.powers[None, :]) % _MOD / _MOD
        )
        self.refills = 0
        self.refill_seconds = 0.0

    def _refill(self, streams) -> None:
        """Jump the given streams' banks one block forward (grouped)."""
        start = time.perf_counter()
        self.refills += 1
        fresh = (self.base[streams] * self.jump) % _MOD
        self.base[streams] = fresh
        self.values[streams] = self.low + self.span * (
            (fresh[:, None] * self.powers[None, :]) % _MOD / _MOD
        )
        self.pos[streams] = 0
        self.refill_seconds += time.perf_counter() - start

    def draw_many(self, streams):
        """One draw from each listed stream (streams must be unique)."""
        pos = self.pos
        exhausted = streams[pos[streams] >= self.length]
        if exhausted.size:
            self._refill(exhausted)
        p = pos[streams]
        values = self.values[streams, p]
        pos[streams] = p + 1
        return values

    def draw_one(self, stream: int) -> float:
        """One draw from one stream (the scalar-fallback path)."""
        p = int(self.pos[stream])
        if p >= self.length:
            self._refill(_np.array([stream]))
            p = 0
        value = float(self.values[stream, p])
        self.pos[stream] = p + 1
        return value

    def state(self, stream: int) -> int:
        """The stream's Lehmer state after the draws consumed so far."""
        return (pow(_MUL, int(self.pos[stream]), _MOD) * int(self.base[stream])) % _MOD


class BatchCascade:
    """Cascade-rule simulation of many seeds through one kernel.

    Parameters
    ----------
    params:
        The (N, Tp, Tc, Tr) tuple, shared by every member.
    seeds:
        One master seed per ensemble member; member ``k`` reproduces
        ``CascadeModel(params, seed=seeds[k], ...)`` bit for bit.
    initial_phases:
        As in ``CascadeModel``: "unsynchronized" (uniform on [0, Tp]
        from each member's own phase stream), "synchronized" (all
        zero), or explicit phases applied to every member.
    keep_cluster_history:
        When True, each member retains its closed reset groups.
    backend:
        One of :data:`BACKENDS`, or None to use the module default
        (:data:`BACKEND`).  All backends produce identical bytes;
        "numpy" raises if NumPy is not importable, "compiled" raises
        if neither numba nor a working C toolchain is available.
    topology:
        Optional :class:`~repro.topo.TopologySpec` (or canonical
        string).  ``None`` and complete couplings run the original
        fully-coupled kernels byte for byte.  Non-complete couplings
        run every member through the shared generalized kernel
        (:func:`repro.topo.advance_coupled`) with per-member
        :class:`ClusterTracker` state — the same code path
        ``CascadeModel`` uses, so cascade-vs-batch byte-identity on
        graphs is structural.  Topology runs draw from the scalar
        stream path on every backend (consumed positions unchanged),
        so backends remain trivially identical.
    """

    def __init__(
        self,
        params: RouterTimingParameters,
        seeds: Sequence[int],
        initial_phases="unsynchronized",
        keep_cluster_history: bool = False,
        backend: str | None = None,
        topology=None,
    ) -> None:
        if backend is None:
            backend = BACKEND
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown batch backend {backend!r}; known backends: "
                f"{', '.join(BACKENDS)}"
            )
        if backend == "numpy" and _np is None:
            raise RuntimeError("numpy backend requested but numpy is not importable")
        if backend == "compiled" and not compiled_backend_available():
            raise RuntimeError(
                "compiled backend requested but neither numba nor a "
                "working C toolchain is available"
            )
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise ValueError("seeds must be non-empty")
        self.params = params
        self.backend = backend
        self._keep_history = keep_cluster_history
        n = params.n_nodes
        self.topology = None
        self._coupling = None
        if topology is not None:
            from ..topo import Coupling, ensure_spec

            self.topology = ensure_spec(topology)
            coupling = Coupling(self.topology, n)
            if not coupling.is_complete:
                self._coupling = coupling
        # Per-member generalized-kernel state (lazily built on the
        # first topology run): pending-expiry heaps and real trackers.
        self._topo_heaps: list | None = None
        self._topo_trackers: list | None = None
        self._n = n
        self._m = len(seeds)
        self._tp = params.tp
        self._tc = params.tc
        # The interval draw's operands, fixed once: CascadeModel passes
        # (tp - tr, tp + tr) into uniform(), which multiplies by
        # (high - low).  Same floats, same order, here.
        self._low = params.tp - params.tr
        self._high = params.tp + params.tr
        self._span = self._high - self._low

        explicit = None
        if not isinstance(initial_phases, str):
            explicit = [float(p) for p in initial_phases]
            if len(explicit) != n:
                raise ValueError(f"expected {n} phases, got {len(explicit)}")
            if any(p < 0 for p in explicit):
                raise ValueError("initial phases must be non-negative")

        # -- per-member stream derivation (exact spawn() replay) -------
        # Flat SoA state: expiries and router RNG states are single
        # lists of length m*n; member k's router i sits at k*n + i.
        expiry: list[float] = []
        states: list[int] = []
        phase_states: list[int] = []
        members: list[BatchMember] = []
        tp = params.tp
        for seed in seeds:
            s = int(seed) % _MOD or 1  # _validate_seed
            for i in range(n):
                s = (_MUL * s) % _MOD  # master.next_int() inside spawn(i)
                mixed = (s * 2654435761 + (i + 1) * 40503) % _MOD
                states.append(mixed or 1)
            s = (_MUL * s) % _MOD  # the spawn(n + 1) master advance
            mixed = (s * 2654435761 + (n + 2) * 40503) % _MOD
            ps = mixed or 1
            if explicit is not None:
                expiry.extend(explicit)
            elif initial_phases == "synchronized":
                expiry.extend([0.0] * n)
            else:
                # phase_rng.uniform(0.0, tp): 0.0 + (tp - 0.0) * u.
                q = ps
                for _ in range(n):
                    q = (_MUL * q) % _MOD
                    expiry.append(0.0 + (tp - 0.0) * (q / _MOD))
                ps = q
            phase_states.append(ps)
            members.append(BatchMember(seed, n))
        self._expiry = expiry
        self._rng_state = states
        self._phase_states = phase_states
        self._members = members

        # Event vectorization is sound only when windows are strictly
        # wider than the cluster tolerance and there are >= 2 routers;
        # otherwise the numpy backend runs the scalar kernel (drawing
        # from the block bank, so consumed positions stay identical).
        self._vector_ok = n >= 2 and self._tc > RESET_TIME_TOLERANCE

        # Lazily-built vector state (numpy backend): SoA expiry slab +
        # streaming RNG bank, sized to the first run()'s horizon.
        self._E = None
        self._bank: _RngBank | None = None
        # Lazily-built packed per-member state (compiled backend).
        self._cstate: list | None = None
        self._cimpl = None
        #: Wall-clock spent per kernel phase (numpy backend): RNG block
        #: refills, the vectorized boundary scan, and cascade
        #: resolution (the per-member bulk/scalar updates).
        self.phase_seconds = {
            "rng_refill": 0.0,
            "boundary_scan": 0.0,
            "cascade_resolution": 0.0,
        }

    # -- public views ----------------------------------------------------

    @property
    def members(self) -> tuple[BatchMember, ...]:
        """Per-member trajectory views, in seed order."""
        return tuple(self._members)

    def rng_states(self, k: int) -> list[int]:
        """Member ``k``'s current per-router Lehmer states.

        Equal to ``[m._rngs[i]._gen.state for i in range(n)]`` of the
        equivalent ``CascadeModel`` at the same point — the witness
        that both engines consumed each stream to the same position.
        """
        base = k * self._n
        if self.backend == "compiled" and self._cstate is not None:
            return [int(v) for v in self._cstate[k].rng]
        if self._bank is not None:
            return [self._bank.state(i) for i in range(base, base + self._n)]
        return self._rng_state[base : base + self._n]

    def phase_rng_state(self, k: int) -> int:
        """Member ``k``'s phase-stream state after initialization."""
        return self._phase_states[k]

    # -- the kernel ------------------------------------------------------

    def run(
        self,
        until: float,
        stop_on_full_sync: bool = False,
        stop_on_full_unsync: bool = False,
    ) -> list[float]:
        """Advance every member to the horizon or its stop condition.

        Semantically ``CascadeModel.run(until, ...)`` applied to each
        member independently; returns the per-member ``now`` values.
        Resumable: a later call with a larger horizon picks each member
        up exactly where it stopped (members that met a stop condition
        continue, as the serial engine would).
        """
        until = float(until)
        if self._coupling is not None:
            self._run_topology(until, stop_on_full_sync, stop_on_full_unsync)
        elif self.backend == "numpy":
            self._run_vector(until, stop_on_full_sync, stop_on_full_unsync)
        elif self.backend == "compiled":
            self._run_compiled(until, stop_on_full_sync, stop_on_full_unsync)
        else:
            exp = self._expiry
            draw = self._draw_flat
            n = self._n
            for k, member in enumerate(self._members):
                self._advance_slice(
                    member,
                    exp,
                    k * n,
                    k * n + n,
                    draw,
                    until,
                    stop_on_full_sync,
                    stop_on_full_unsync,
                    None,
                )
        return [member.now for member in self._members]

    # -- generalized graph-coupled kernel (all backends) -----------------

    def _run_topology(
        self, until: float, stop_sync: bool, stop_unsync: bool
    ) -> None:
        """Advance every member through :func:`repro.topo.advance_coupled`.

        Member ``k`` reproduces ``CascadeModel(params, seed=seeds[k],
        topology=...)`` bit for bit: same heap seeding, same
        per-router stream order (``draw`` maps local node ``i`` to
        flat stream ``k*n + i``, the exact scalar path), and a real
        :class:`ClusterTracker` whose output containers *are* the
        member's views.  Runs the scalar stream path on every backend
        so consumed-RNG positions stay backend-independent.
        """
        from ..topo import advance_coupled

        n = self._n
        if self._topo_heaps is None:
            self._topo_heaps = []
            self._topo_trackers = []
            for k, member in enumerate(self._members):
                base = k * n
                heap = sorted(
                    (self._expiry[base + i], i) for i in range(n)
                )
                tracker = ClusterTracker(n, keep_history=self._keep_history)
                # The tracker's containers become the member's views:
                # further mutation on either side is shared.
                member.first_time_at_least = tracker.first_time_at_least
                member.first_time_at_most = tracker.first_time_at_most
                member.round_times = tracker.round_times
                member.round_largest = tracker.round_largest
                member.groups = tracker.groups
                self._topo_heaps.append(heap)
                self._topo_trackers.append(tracker)
        coupling = self._coupling
        tc = self._tc
        for k, member in enumerate(self._members):
            base = k * n
            tracker = self._topo_trackers[k]

            def draw(node: int, _base: int = base) -> float:
                return self._draw_flat(_base + node)

            stop_time, closed, stopped = advance_coupled(
                self._topo_heaps[k],
                coupling,
                tracker,
                draw,
                tc,
                until,
                stop_on_full_sync=stop_sync,
                stop_on_full_unsync=stop_unsync,
            )
            member.total_cascades += closed
            member.total_resets = tracker.total_resets
            member.now = stop_time if stopped else max(member.now, until)

    # -- scalar kernel (python backend + vector fallback) ----------------

    def _advance_slice(
        self,
        member: BatchMember,
        exp: list,
        lo: int,
        hi: int,
        draw,
        until: float,
        stop_sync: bool,
        stop_unsync: bool,
        max_cascades: int | None,
    ) -> bool:
        """Replay of ``CascadeModel.run`` over one member's slice.

        ``exp`` is a mutable flat sequence; the member's routers occupy
        ``[lo, hi)`` and ``draw(i)`` consumes one interval draw from
        flat stream ``i``.  Processes at most ``max_cascades`` cascades
        (None = unbounded); returns True when the member is done for
        this ``run()`` call (horizon reached or stop condition met),
        False when the cascade budget ran out first.
        """
        n = self._n
        tc = self._tc
        tol = RESET_TIME_TOLERANCE
        keep = self._keep_history
        win = member._win
        member._sing_head = 0  # scalar path mutates the window freely
        while True:
            # Earliest pending expiry; first minimum in the slice is
            # the lowest node id, matching the heap's (time, node) order.
            e1 = min(exp[lo:hi])
            if e1 > until:
                member.now = max(member.now, until)
                self._finish(member)
                return True
            i1 = exp.index(e1, lo, hi)
            exp[i1] = _INF
            idxs = [i1]
            times = [e1]
            window = e1 + tc
            while True:
                e = min(exp[lo:hi])
                if e > window:
                    break
                i = exp.index(e, lo, hi)
                exp[i] = _INF
                idxs.append(i)
                times.append(e)
                window += tc
            if window > until:
                # Busy period outlives the horizon: restore the pending
                # expiries and stop here, exactly as the serial engine
                # does (which also closes the trailing open group, as
                # the DES's end-of-run finish() would).
                for i, e in zip(idxs, times):
                    exp[i] = e
                member.now = until
                self._finish(member)
                return True
            member.total_cascades += 1
            member.now = window
            t = window
            g = len(idxs)

            # -- fused ClusterTracker.record_reset × g at time t ------
            open_time = member._open_time
            if open_time is not None and abs(t - open_time) <= tol:
                s = member._open_size
                cur = win[-1]
            else:
                if open_time is not None:
                    if keep:
                        member.groups.append(
                            ClusterGroup(open_time, member._open_size)
                        )
                cur = [0, 0]
                win.append(cur)
                s = 0
            wres = member._window_resets
            wmax = member._wmax
            ftal = member.first_time_at_least
            ftal_max = member._ftal_max
            ftam = member.first_time_at_most
            ftam_min = member._ftam_min
            rfill = member._round_fill
            rmax = member._round_max
            for _ in range(g):
                s += 1
                cur[0] = s
                cur[1] += 1
                wres += 1
                if s > wmax:
                    wmax = s
                while wres > n:
                    oldest = win[0]
                    oldest[1] -= 1
                    wres -= 1
                    if not oldest[1]:
                        win.popleft()
                        if oldest[0] >= wmax and wmax > 1:
                            # Evicted the max holder: rescan (rare).
                            wmax = 1
                            for entry in win:
                                if entry[0] > wmax:
                                    wmax = entry[0]
                # at_least keys stay contiguous {1..max} because the
                # open size grows one reset at a time.
                if s > ftal_max:
                    ftal[s] = t
                    ftal_max = s
                # at_most keys stay contiguous {min..n}; only a new
                # window maximum below the frontier extends them.
                if wres >= n and wmax < ftam_min:
                    for v in range(wmax, ftam_min):
                        ftam[v] = t
                    ftam_min = wmax
                rfill += 1
                if s > rmax:
                    rmax = s
                if rfill >= n:
                    member.round_times.append(t)
                    member.round_largest.append(rmax)
                    rfill = 0
                    rmax = 0
            member._open_time = t
            member._open_size = s
            member._window_resets = wres
            member._wmax = wmax
            member._ftal_max = ftal_max
            member._ftam_min = ftam_min
            member._round_fill = rfill
            member._round_max = rmax
            member.total_resets += g

            # -- redraw, in pop order (the per-router stream order) ---
            for i in idxs:
                exp[i] = window + draw(i)

            if stop_sync and (
                s >= n or (wres >= n and wmax >= n)
            ):
                self._finish(member)
                return True
            if stop_unsync and wres >= n and wmax <= 1:
                self._finish(member)
                return True
            if max_cascades is not None:
                max_cascades -= 1
                if max_cascades <= 0:
                    return False

    def _finish(self, member: BatchMember) -> None:
        """ClusterTracker.finish(): close the trailing open group."""
        if member._open_time is None:
            return
        if self._keep_history:
            member.groups.append(
                ClusterGroup(member._open_time, member._open_size)
            )
        member._open_time = None
        member._open_size = 0

    def _draw_flat(self, idx: int) -> float:
        """One interval draw from flat stream ``idx`` (pure path)."""
        s = (_MUL * self._rng_state[idx]) % _MOD
        self._rng_state[idx] = s
        return self._low + self._span * (s / _MOD)

    # -- event-vectorized kernel (numpy backend) -------------------------

    def _ensure_vector(self, until: float) -> None:
        """Build the SoA slab and the streaming RNG bank (first run)."""
        if self._E is not None:
            return
        m, n = self._m, self._n
        self._E = _np.array(self._expiry, dtype=_np.float64).reshape(m, n)
        streams = m * n
        est = int(until / self._tp) + 32 if self._tp > 0 else 64
        length = min(_MAX_BLOCK, max(_MIN_BLOCK, _BLOCK_BUDGET // streams))
        length = max(16, min(length, max(16, est)))
        self._bank = _RngBank(self._rng_state, self._low, self._span, length)

    def _run_vector(
        self, until: float, stop_sync: bool, stop_unsync: bool
    ) -> None:
        np = _np
        n = self._n
        self._ensure_vector(until)
        bank = self._bank
        if not self._vector_ok:
            # Degenerate parameters (Tc within the cluster tolerance,
            # or a single router): the epoch decomposition does not
            # apply, so run the scalar kernel off the block bank.
            for k, member in enumerate(self._members):
                row = self._E[k].tolist()
                base = k * n
                self._advance_slice(
                    member,
                    row,
                    0,
                    n,
                    lambda i, _b=base: bank.draw_one(_b + i),
                    until,
                    stop_sync,
                    stop_unsync,
                    None,
                )
                self._E[k] = row
            return

        E = self._E
        flat = E.reshape(-1)
        tc = self._tc
        low = self._low
        m = self._m
        members = self._members
        keep = self._keep_history
        phase = self.phase_seconds
        refill_before = bank.refill_seconds
        active = list(range(m))
        cols = np.arange(n)
        cols1 = cols[: n - 1]
        all_idx = np.arange(m, dtype=np.intp)
        while active:
            t0 = time.perf_counter()
            if len(active) == m:
                idx = all_idx
                Ea = E
            else:
                idx = np.array(active, dtype=np.intp)
                Ea = E[idx]
            order = np.argsort(Ea, axis=1, kind="stable")
            ts = np.take_along_axis(Ea, order, axis=1)
            T = ts + tc
            # Singleton-run lengths: (a) every gap in the run must
            # exceed Tc (compared exactly as the scalar kernel does:
            # next expiry vs this window), (b) processed expiries must
            # precede the earliest possible redraw re-entry, (c)
            # windows must not outlive the horizon.
            gaps_ok = ts[:, 1:] > T[:, :-1]
            # nf[i, j]: first sorted position >= j whose gap collides
            # (n when none) — gives the gap-limited run length from
            # *any* starting position, which the loop needs to retire
            # a trailing singleton run after an in-epoch cascade.
            nf = np.minimum.accumulate(
                np.where(gaps_ok, n, cols1)[:, ::-1], axis=1
            )[:, ::-1]
            r_gap = nf[:, 0]
            relim = T[:, :1] + low
            r_re_raw = (T < relim).sum(axis=1)
            r_re = np.maximum(r_re_raw, 1)
            if bool((T[:, -1] > until).any()):
                r_until = (T <= until).sum(axis=1)
                runs = np.minimum(np.minimum(r_gap, r_re), r_until)
                runtil_l = r_until.tolist()
            else:
                # Horizon still beyond every window in the slab (the
                # common case): skip the per-event comparison.
                runs = np.minimum(r_gap, r_re)
                runtil_l = None
            runs_l = runs.tolist()
            # When every window fits the horizon no member can finish
            # this epoch, so the per-visit horizon checks are skipped
            # wholesale (e0 < T[0] <= until).
            e0_l = ts[:, 0].tolist() if runtil_l is not None else None
            relim_l = relim.ravel().tolist()
            rre_l = r_re_raw.tolist()

            # Capture chain for every member whose singleton run is
            # broken by a gap collision at sorted position s = runs:
            # the busy window starts at expiry s and grows by
            # sequential ``+= tc`` adds.  Zero-padding the first s
            # steps keeps np.cumsum's accumulation order identical to
            # the scalar kernel's (adding 0.0 is exact), so W
            # reproduces the scalar windows bit for bit.  g is the
            # number of sorted expiries the chain captures, W[s+g-1]
            # the closing window — together they resolve the whole
            # cascade without any scalar re-scan, and (gated on the
            # horizon and redraw re-entry bounds) let one epoch retire
            # a member's run *and* the cascade that ended it.
            cand = np.nonzero((r_gap == runs) & (runs < n))[0]
            if cand.size:
                s = runs[cand]
                tsz = ts[cand]
                ar = np.arange(cand.size)
                steps = np.full(tsz.shape, tc)
                steps[cols[None, :] < s[:, None]] = 0.0
                steps[ar, s] = tsz[ar, s] + tc
                Wz = np.cumsum(steps, axis=1)
                fail = tsz[:, 1:] > Wz[:, :-1]
                fail[cols[None, : n - 1] < s[:, None]] = False
                has = fail.any(axis=1)
                jf = np.argmax(fail, axis=1)
                gz = np.where(has, jf + 1 - s, n - s)
                wz = Wz[ar, s + gz - 1]
                chain = dict(zip(cand.tolist(), zip(gz.tolist(), wz.tolist())))
            else:
                chain = {}
            phase["boundary_scan"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            proc: list[tuple[int, int, int, int, float]] = []
            proc_append = proc.append
            finished: list[int] = []
            chain_get = chain.get
            for i, k in enumerate(active):
                member = members[k]
                if e0_l is not None and e0_l[i] > until:
                    if member.now < until:
                        member.now = until
                    self._finish(member)
                    finished.append(k)
                    continue
                r = runs_l[i]
                done = False
                rs = 0  # leading singleton-run length
                gc = 0  # cascade size (0: none this epoch)
                w = 0.0  # cascade closing window
                processed = 0
                if r > 0 and not (stop_sync and member._wmax >= n):
                    # A run of non-interacting singleton cascades.
                    # (When a full-sync stop could fire mid-run — wmax
                    # already saturated — divert to the cascade path
                    # below, which checks stops per cascade; the
                    # diverted member's chain length is necessarily 1.)
                    # Steady-state shortcuts, inline because this is
                    # the hottest spot of the whole kernel (their
                    # slow-path twins live in _bulk_update).
                    fast = False
                    if not keep and member._window_resets == n:
                        wmax = member._wmax
                        if wmax <= 1:
                            # Unsynchronized steady state: the window
                            # is n singleton groups and both frontiers
                            # are saturated — the update is O(1).
                            fast = (
                                not stop_unsync
                                and member._ftam_min == 1
                                and len(member._win) == n
                            )
                            if fast:
                                member._sing_head = n
                        elif member._ftam_min <= wmax:
                            # Mixed steady state: every evicted reset
                            # belongs to a singleton group, so the
                            # cluster entry pinning the window maximum
                            # survives and nothing moves — rotate the
                            # window and advance the round series.
                            # The cached singleton-prefix bound makes
                            # the check O(1) once the cycle locks in;
                            # the walk (which recomputes it exactly)
                            # only runs on a cache miss.
                            sh = member._sing_head
                            if sh >= r:
                                fast = True
                                member._win.rotate(-r)
                                member._sing_head = sh - r
                            else:
                                c = 0
                                for entry in member._win:
                                    if entry[0] > 1:
                                        break
                                    c += entry[1]
                                if c >= r:
                                    fast = True
                                    member._win.rotate(-r)
                                    member._sing_head = c - r
                                else:
                                    member._sing_head = c
                    if fast:
                        rfill = member._round_fill
                        jstar = n - rfill
                        if r >= jstar:
                            member.round_times.append(float(T[i, jstar - 1]))
                            rmax = member._round_max
                            member.round_largest.append(rmax if rmax > 1 else 1)
                            left = r - jstar
                            member._round_fill = left
                            member._round_max = 1 if left else 0
                        else:
                            member._round_fill = rfill + r
                            if member._round_max < 1:
                                member._round_max = 1
                        t_last = float(T[i, r - 1])
                        member._open_time = t_last
                        member._open_size = 1
                        member.total_cascades += r
                        member.total_resets += r
                        member.now = t_last
                    else:
                        r, done = self._bulk_update(
                            member, T[i], r, stop_unsync
                        )
                    rs = r
                    processed = r
                    if not done:
                        # If the run was ended by a gap collision,
                        # resolve that cascade in the same epoch —
                        # sound whenever its closing window stays
                        # inside the horizon and below the earliest
                        # possible redraw re-entry (redraws land at or
                        # beyond fl(T[0] + low), so none of this
                        # epoch's redraws can be captured).
                        gw = chain_get(i)
                        if gw is not None:
                            g, wv = gw
                            if wv <= until and wv < relim_l[i]:
                                gc = g
                elif r > 0:
                    # Diverted sync-guard member: process the first
                    # expiry as a one-router cascade so the stop is
                    # checked right after it (T[0] <= until since
                    # runs >= 1).
                    g, wv = 1, float(T[i, 0])
                    gc = 1
                else:
                    gw = chain_get(i)
                    if gw is None:
                        # No collision at the first expiry: a chain of
                        # one whose window T[0] necessarily outlives
                        # the horizon (that is the only way runs can
                        # be 0 without a leading collision).
                        g, wv = 1, float(T[i, 0])
                    else:
                        g, wv = gw
                    if wv > until:
                        # Busy period outlives the horizon; nothing
                        # was mutated, so this is the serial engine's
                        # restore-and-stop, for free.
                        member.now = until
                        self._finish(member)
                        finished.append(k)
                        continue
                    gc = g
                if gc:
                    win = member._win
                    h = win[0] if win else None
                    if (
                        g >= 2
                        and h is not None
                        and h[0] == g
                        and h[1] == g
                        and member._window_resets == n
                        and member._ftal_max >= g
                        and member._ftam_min <= member._wmax
                    ):
                        # Cyclic steady state, inline because this is
                        # the kernel's hottest cascade shape (see
                        # _apply_cascade for the slow-path twin and
                        # the invariant argument).
                        if member._open_time is not None and keep:
                            member.groups.append(
                                ClusterGroup(
                                    member._open_time, member._open_size
                                )
                            )
                        win.popleft()
                        win.append([g, g])
                        # n - g resets over len - 1 non-tail entries:
                        # equal counts mean they are all singletons.
                        member._sing_head = (
                            n - g if len(win) == n - g + 1 else 0
                        )
                        member._open_time = wv
                        member._open_size = g
                        rfill = member._round_fill
                        rmax = member._round_max
                        jstar = n - rfill
                        if g >= jstar:
                            member.round_times.append(wv)
                            member.round_largest.append(
                                rmax if rmax > jstar else jstar
                            )
                            left = g - jstar
                            member._round_fill = left
                            member._round_max = g if left else 0
                        else:
                            member._round_fill = rfill + g
                            if rmax < g:
                                member._round_max = g
                        member.total_cascades += 1
                        member.total_resets += g
                        member.now = wv
                        done = stop_sync and (g >= n or member._wmax >= n)
                    else:
                        done = self._apply_cascade(
                            member, wv, g, stop_sync, stop_unsync
                        )
                    w = wv
                    processed += g
                if not done and gc > 0:
                    # Trailing singleton run after the cascade, under
                    # the same gap / re-entry / horizon caps (nf gives
                    # the gap cap from any starting position).
                    p = processed
                    if p < n and not (stop_sync and member._wmax >= n):
                        cap = rre_l[i]
                        if runtil_l is not None and runtil_l[i] < cap:
                            cap = runtil_l[i]
                        r2 = cap - p
                        if r2 > 0 and p <= n - 2:
                            f = int(nf[i, p]) - p
                            if f < r2:
                                r2 = f
                        if r2 > 0:
                            # Mixed-steady shortcut, inlined once more:
                            # after the cyclic cascade the singleton
                            # prefix is known exactly, so the trailing
                            # run is a rotate plus round bookkeeping
                            # (stops cannot fire while the window
                            # maximum is pinned above 1).
                            sh = member._sing_head
                            wmax = member._wmax
                            if (
                                sh >= r2
                                and not keep
                                and wmax > 1
                                and member._window_resets == n
                                and member._ftam_min <= wmax
                            ):
                                member._win.rotate(-r2)
                                member._sing_head = sh - r2
                                rfill = member._round_fill
                                jstar = n - rfill
                                if r2 >= jstar:
                                    member.round_times.append(
                                        float(T[i, p + jstar - 1])
                                    )
                                    rmax = member._round_max
                                    member.round_largest.append(
                                        rmax if rmax > 1 else 1
                                    )
                                    left = r2 - jstar
                                    member._round_fill = left
                                    member._round_max = 1 if left else 0
                                else:
                                    member._round_fill = rfill + r2
                                    if member._round_max < 1:
                                        member._round_max = 1
                                t_last = float(T[i, p + r2 - 1])
                                member._open_time = t_last
                                member._open_size = 1
                                member.total_cascades += r2
                                member.total_resets += r2
                                member.now = t_last
                            else:
                                r2, done = self._bulk_update(
                                    member, T[i, p:], r2, stop_unsync
                                )
                            processed += r2
                proc_append((i, processed, rs, gc, w))
                if done:
                    self._finish(member)
                    finished.append(k)
            phase["cascade_resolution"] += time.perf_counter() - t0

            if proc:
                t0 = time.perf_counter()
                np_fromiter = np.fromiter
                count = len(proc)
                rows_t, cnt_t, run_t, g_t, val_t = zip(*proc)
                rows = np_fromiter(rows_t, dtype=np.intp, count=count)
                cnt = np_fromiter(cnt_t, dtype=np.int64, count=count)
                runcnt = np_fromiter(run_t, dtype=np.int64, count=count)
                gcnt = np_fromiter(g_t, dtype=np.int64, count=count)
                vals = np_fromiter(val_t, dtype=np.float64, count=count)
                valid = cols[None, :] < cnt[:, None]
                routers = order[rows]
                streams = (idx[rows][:, None] * n + routers)[valid]
                # Singleton-run events (leading and trailing segments)
                # redraw at their own reset time; the cascade captures
                # (sorted positions [proc_run, proc_run + proc_g))
                # redraw at the common closing window.  Stream order
                # within a member is irrelevant: each stream consumes
                # exactly one draw.
                in_casc = (cols[None, :] >= runcnt[:, None]) & (
                    cols[None, :] < (runcnt + gcnt)[:, None]
                )
                tvals = np.where(in_casc, vals[:, None], T[rows])[valid]
                draws = bank.draw_many(streams)
                flat[streams] = tvals + draws
                phase["boundary_scan"] += time.perf_counter() - t0
            if finished:
                gone = set(finished)
                active = [k for k in active if k not in gone]
        phase["rng_refill"] += bank.refill_seconds - refill_before
        phase["boundary_scan"] -= bank.refill_seconds - refill_before

    def _apply_cascade(
        self, member: BatchMember, t: float, g: int, stop_sync: bool,
        stop_unsync: bool,
    ) -> bool:
        """Apply one resolved cascade (``g`` resets at ``t``) to a member.

        Takes the O(1) cyclic-steady-state shortcut when the cascade
        evicts exactly its own previous firing — the head window entry
        is a full group of the same size, so the window maximum never
        moves and both first-passage frontiers stay put (full
        synchronization is the ``g == n`` case) — and falls back to the
        fused per-reset tracker otherwise.  Returns whether a stop
        condition fired.
        """
        n = self._n
        win = member._win
        if (
            g >= 2
            and member._window_resets == n
            and win
            and win[0][0] == g
            and win[0][1] == g
            and member._ftal_max >= g
            and member._ftam_min <= member._wmax
        ):
            if member._open_time is not None and self._keep_history:
                member.groups.append(
                    ClusterGroup(member._open_time, member._open_size)
                )
            win.popleft()
            win.append([g, g])
            member._sing_head = n - g if len(win) == n - g + 1 else 0
            member._open_time = t
            member._open_size = g
            rfill = member._round_fill
            rmax = member._round_max
            jstar = n - rfill
            if g >= jstar:
                member.round_times.append(t)
                member.round_largest.append(rmax if rmax > jstar else jstar)
                left = g - jstar
                member._round_fill = left
                member._round_max = g if left else 0
            else:
                member._round_fill = rfill + g
                if rmax < g:
                    member._round_max = g
            member.total_cascades += 1
            member.total_resets += g
            member.now = t
            return stop_sync and (g >= n or member._wmax >= n)
        return self._cascade_update(member, t, g, stop_sync, stop_unsync)

    def _bulk_update(
        self, member: BatchMember, times_row, r: int, stop_unsync: bool
    ) -> tuple[int, bool]:
        """Apply ``r`` singleton resets' tracker updates in closed form.

        ``times_row`` holds the (already ``+ Tc``) reset times of the
        member's sorted run.  Reproduces exactly what ``r`` iterations
        of the fused per-reset loop would do — group closures, window
        evictions with suffix maxima, first-passage backfills, round
        series — and returns the possibly-truncated run length plus
        whether a stop condition fired at its last event.
        """
        n = self._n
        win = member._win
        wres_pre = member._window_resets
        wmax_pre = member._wmax

        # Mixed steady state, taken by the overwhelming majority of
        # calls once a persistent cluster coexists with stragglers:
        # full window, the evicted prefix all singletons (so the
        # window maximum is pinned by a surviving cluster entry and
        # nothing can trigger an unsync stop or move a frontier), no
        # history kept.  The whole run is a rotate plus round-series
        # bookkeeping.
        if (
            wres_pre == n
            and wmax_pre > 1
            and member._ftam_min <= wmax_pre
            and not self._keep_history
        ):
            c = member._sing_head
            if c < r:
                c = 0
                for size, cnt in win:
                    if size > 1:
                        break
                    c += cnt
            if c >= r:
                win.rotate(-r)
                member._sing_head = c - r
                rfill = member._round_fill
                jstar = n - rfill
                if r >= jstar:
                    member.round_times.append(float(times_row[jstar - 1]))
                    rmax = member._round_max
                    member.round_largest.append(rmax if rmax > 1 else 1)
                    left = r - jstar
                    member._round_fill = left
                    member._round_max = 1 if left else 0
                else:
                    member._round_fill = rfill + r
                    if member._round_max < 1:
                        member._round_max = 1
                member._open_time = float(times_row[r - 1])
                member._open_size = 1
                member.total_cascades += r
                member.total_resets += r
                member.now = member._open_time
                return r, False
            member._sing_head = c

        evict0 = wres_pre - n

        # Suffix maxima over the pre-run window: sm[d] = largest group
        # size still in the window after evicting the d oldest resets.
        # Only needed while old clusters are actually draining: when
        # every reset the run will evict belongs to a singleton group,
        # the entry holding the maximum survives untouched and the
        # window maximum is constant across the whole run (const_max).
        # The all-singleton steady state (wmax <= 1) skips both.
        sm = None
        const_max = False
        if wmax_pre > 1:
            evicted_pre = wres_pre + r - n
            if evicted_pre <= 0:
                const_max = True
            elif member._sing_head >= evicted_pre:
                const_max = True
            else:
                c = 0
                for size, cnt in win:
                    if size > 1:
                        break
                    c += cnt
                    if c >= evicted_pre:
                        const_max = True
                        break
            if not const_max:
                sm = [0] * (wres_pre + 1)
                d = wres_pre
                run_max = 0
                for size, cnt in reversed(win):
                    if size > run_max:
                        run_max = size
                    for _ in range(cnt):
                        d -= 1
                        sm[d] = run_max

        done = False
        if stop_unsync:
            # The run must stop at the first reset where the window
            # holds N resets all in singleton groups.  With a constant
            # window maximum > 1 that can never happen inside the run.
            jmin = n - wres_pre if wres_pre < n else 1
            if jmin <= r:
                trigger = None
                if wmax_pre <= 1:
                    trigger = jmin
                elif sm is not None:
                    for j in range(jmin, r + 1):
                        ev = evict0 + j
                        if ev < 0:
                            ev = 0
                        if (sm[ev] if ev <= wres_pre else 0) <= 1:
                            trigger = j
                            break
                if trigger is not None:
                    r = trigger
                    done = True

        # first_time_at_most: extended whenever the window maximum
        # drops below the recorded frontier with a full window.
        ftam_min = member._ftam_min
        if ftam_min > 1:
            jstart = n - wres_pre if wres_pre < n else 1
            if jstart <= r:
                ftam = member.first_time_at_most
                if wmax_pre <= 1:
                    t = float(times_row[jstart - 1])
                    for v in range(1, ftam_min):
                        ftam[v] = t
                    member._ftam_min = 1
                elif const_max:
                    # wmax_j == wmax_pre for every reset of the run:
                    # a single fill at the first full-window reset.
                    if wmax_pre < ftam_min:
                        t = float(times_row[jstart - 1])
                        for v in range(wmax_pre, ftam_min):
                            ftam[v] = t
                        member._ftam_min = wmax_pre
                else:
                    for j in range(jstart, r + 1):
                        ev = evict0 + j
                        if ev < 0:
                            ev = 0
                        wmax_j = sm[ev] if ev <= wres_pre else 0
                        if wmax_j < 1:
                            wmax_j = 1
                        if wmax_j < ftam_min:
                            t = float(times_row[j - 1])
                            for v in range(wmax_j, ftam_min):
                                ftam[v] = t
                            ftam_min = wmax_j
                            if ftam_min <= 1:
                                break
                    member._ftam_min = ftam_min

        # Window deque: evict the oldest (wres_pre + r - n) resets,
        # append r singleton groups.  In the steady state the window
        # is already n singleton entries and the exchange is a no-op.
        evicted = wres_pre + r - n
        if evicted < 0:
            evicted = 0
        if evicted == r and wmax_pre <= 1 and len(win) == wres_pre:
            # Full singleton window: the exchange is a no-op (and the
            # eviction count pins wres_pre == n, so the prefix is n).
            member._sing_head = n
        elif evicted == r and const_max:
            # The const_max walk proved the r evicted head entries are
            # all [1, 1] — identical to the r appended ones, so recycle
            # them instead of reallocating (rotate runs in C).
            win.rotate(-r)
            sh = member._sing_head
            member._sing_head = sh - r if sh >= r else 0
        else:
            d = evicted
            while d:
                head = win[0]
                if head[1] <= d:
                    d -= head[1]
                    win.popleft()
                else:
                    head[1] -= d
                    d = 0
            for _ in range(r):
                win.append([1, 1])
            member._sing_head = 0
        member._window_resets = wres_pre + r - evicted
        if wmax_pre <= 1:
            member._wmax = 1
        elif const_max:
            member._wmax = wmax_pre
        else:
            ev = evict0 + r
            if ev < 0:
                ev = 0
            wmax_r = sm[ev] if ev <= wres_pre else 0
            member._wmax = wmax_r if wmax_r > 1 else 1

        # Group closures: each reset closes the previously open group.
        open_time = member._open_time
        if self._keep_history:
            groups = member.groups
            if open_time is not None:
                groups.append(ClusterGroup(open_time, member._open_size))
            if r > 1:
                for t in times_row[: r - 1].tolist():
                    groups.append(ClusterGroup(t, 1))
        member._open_time = float(times_row[r - 1])
        member._open_size = 1

        # first_time_at_least: singleton resets only ever establish
        # size 1, at the very first reset of the trajectory.
        if member._ftal_max == 0:
            member.first_time_at_least[1] = float(times_row[0])
            member._ftal_max = 1

        # Round series: at most one round completes per run (r <= n).
        rfill = member._round_fill
        jstar = n - rfill
        if r >= jstar:
            member.round_times.append(float(times_row[jstar - 1]))
            rmax = member._round_max
            member.round_largest.append(rmax if rmax > 1 else 1)
            left = r - jstar
            member._round_fill = left
            member._round_max = 1 if left else 0
        else:
            member._round_fill = rfill + r
            if member._round_max < 1:
                member._round_max = 1

        member.total_cascades += r
        member.total_resets += r
        member.now = float(times_row[r - 1])
        return r, done

    def _cascade_update(
        self, member: BatchMember, t: float, g: int, stop_sync: bool,
        stop_unsync: bool,
    ) -> bool:
        """One cascade of ``g`` resets at time ``t``: the fused tracker.

        Identical arithmetic to the tracker section of
        ``_advance_slice`` (the vectorized boundary scan has already
        established which routers the window captured); returns whether
        a stop condition fired.
        """
        n = self._n
        win = member._win
        member._sing_head = 0  # mutates the window head freely
        member.total_cascades += 1
        member.now = t
        open_time = member._open_time
        if open_time is not None and abs(t - open_time) <= RESET_TIME_TOLERANCE:
            s = member._open_size
            cur = win[-1]
        else:
            if open_time is not None:
                if self._keep_history:
                    member.groups.append(
                        ClusterGroup(open_time, member._open_size)
                    )
            cur = [0, 0]
            win.append(cur)
            s = 0
        wres = member._window_resets
        wmax = member._wmax
        ftal = member.first_time_at_least
        ftal_max = member._ftal_max
        ftam = member.first_time_at_most
        ftam_min = member._ftam_min
        rfill = member._round_fill
        rmax = member._round_max
        for _ in range(g):
            s += 1
            cur[0] = s
            cur[1] += 1
            wres += 1
            if s > wmax:
                wmax = s
            while wres > n:
                oldest = win[0]
                oldest[1] -= 1
                wres -= 1
                if not oldest[1]:
                    win.popleft()
                    if oldest[0] >= wmax and wmax > 1:
                        wmax = 1
                        for entry in win:
                            if entry[0] > wmax:
                                wmax = entry[0]
            if s > ftal_max:
                ftal[s] = t
                ftal_max = s
            if wres >= n and wmax < ftam_min:
                for v in range(wmax, ftam_min):
                    ftam[v] = t
                ftam_min = wmax
            rfill += 1
            if s > rmax:
                rmax = s
            if rfill >= n:
                member.round_times.append(t)
                member.round_largest.append(rmax)
                rfill = 0
                rmax = 0
        member._open_time = t
        member._open_size = s
        member._window_resets = wres
        member._wmax = wmax
        member._ftal_max = ftal_max
        member._ftam_min = ftam_min
        member._round_fill = rfill
        member._round_max = rmax
        member.total_resets += g
        if stop_sync and (s >= n or (wres >= n and wmax >= n)):
            return True
        if stop_unsync and wres >= n and wmax <= 1:
            return True
        return False

    # -- compiled kernel (numba / C) -------------------------------------

    def _ensure_compiled(self) -> None:
        if self._cstate is not None:
            return
        from . import _batch_kernel

        resolved = _batch_kernel.resolve_compiled()
        assert resolved is not None  # guaranteed by __init__
        self._cimpl = resolved[1]
        n = self._n
        self._cstate = [
            _batch_kernel.MemberState(
                self._expiry[k * n : (k + 1) * n],
                self._rng_state[k * n : (k + 1) * n],
                n,
                self._keep_history,
            )
            for k in range(self._m)
        ]

    def _run_compiled(
        self, until: float, stop_sync: bool, stop_unsync: bool
    ) -> None:
        from . import _batch_kernel

        self._ensure_compiled()
        kernel = self._cimpl
        tol = RESET_TIME_TOLERANCE
        for k, member in enumerate(self._members):
            st = self._cstate[k]
            _batch_kernel.drive_member(
                kernel,
                st,
                self._tc,
                self._low,
                self._span,
                tol,
                until,
                stop_sync,
                stop_unsync,
            )
            st.sync_member(member)
