"""Batched struct-of-arrays backend for the cascade rule.

One :class:`~repro.core.fastsim.CascadeModel` per seed pays for a
heap, a :class:`~repro.core.clusters.ClusterTracker`, and an object
per pending expiry — at ensemble scale that bookkeeping, not the
model, is the dominant cost.  :class:`BatchCascade` advances a whole
ensemble of seeds through one kernel instead: every member's pending
timer expiries live in one flat list (member ``k``'s routers occupy
the slice ``[k*n, (k+1)*n)``), the cascade rule is applied per member
over its slice, and the cluster statistics are maintained by a fused
tracker that keeps an incremental window maximum instead of rescanning
the window on every reset.

Bit-for-bit identity
--------------------
Each member's trajectory is identical to ``CascadeModel(params,
seed=s)`` — not statistically, *byte for byte* — because the batch
kernel replays the exact same arithmetic in the exact same order:

* Stream derivation repeats :meth:`repro.rng.RandomSource.spawn`
  verbatim: one master Lehmer advance per router, the same
  multiplicative mix, the same ``n + 1`` stream id for the phase
  stream.
* Each router's interval draws are ``low + (high - low) * (state /
  m)`` with the same operand order, so every float rounds the same
  way.
* The heap's ``(time, node)`` tie-break is reproduced by taking the
  *first* minimum in node order within the member's slice.
* The busy window grows by sequential ``window += tc`` additions (no
  closed form), accumulating the identical rounding.
* The fused tracker is an algebraic rewrite of
  :class:`~repro.core.clusters.ClusterTracker` — same window deque,
  same eviction order, same first-passage backfills — verified
  against it by ``tests/test_engine_differential.py``.

Backends
--------
The module works with no third-party dependencies.  When NumPy is
importable, an accelerated path precomputes each router's interval
draws in vectorized blocks (the Lehmer recurrence is jumped with
``x_{j} = a^j x_0 mod m`` under exact int64 arithmetic; the uniform
transform is elementwise float64 with the scalar operand order, so
the produced floats are identical).  :data:`BACKEND` reports which
path new :class:`BatchCascade` instances use by default; either can
be forced with ``backend="python"`` / ``backend="numpy"``, and both
produce byte-identical results.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from .clusters import RESET_TIME_TOLERANCE, ClusterGroup
from .parameters import RouterTimingParameters

try:  # NumPy is optional: the pure-Python path is always available.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

__all__ = ["BACKEND", "BatchCascade", "BatchMember"]

#: The backend new instances use when none is forced: "numpy" when
#: NumPy imported at module load, else "python".
BACKEND = "numpy" if _np is not None else "python"

_MOD = 2**31 - 1  # == repro.rng.lehmer.MODULUS
_MUL = 16807  # == repro.rng.lehmer.MULTIPLIER
_INF = float("inf")

#: Soft cap on the total number of precomputed uniforms held by the
#: NumPy RNG bank (floats across all member×router streams).
_BLOCK_BUDGET = 4_000_000


class BatchMember:
    """One ensemble member's trajectory state and statistics.

    Exposes the same outputs as ``CascadeModel`` + its tracker:
    :attr:`first_time_at_least` / :attr:`first_time_at_most` (the
    first-passage dicts), :attr:`round_times` / :attr:`round_largest`
    (the per-round largest-cluster series), :attr:`groups` (closed
    reset groups, when history is kept), :attr:`total_resets`,
    :attr:`total_cascades`, :attr:`now`, and the
    :attr:`synchronization_time` / :attr:`breakup_time` properties.
    """

    __slots__ = (
        "seed",
        "n_nodes",
        "now",
        "total_cascades",
        "total_resets",
        "groups",
        "first_time_at_least",
        "first_time_at_most",
        "round_times",
        "round_largest",
        "_open_time",
        "_open_size",
        "_win",
        "_window_resets",
        "_wmax",
        "_ftal_max",
        "_ftam_min",
        "_round_fill",
        "_round_max",
    )

    def __init__(self, seed: int, n_nodes: int) -> None:
        self.seed = seed
        self.n_nodes = n_nodes
        self.now = 0.0
        self.total_cascades = 0
        self.total_resets = 0
        self.groups: list[ClusterGroup] = []
        self.first_time_at_least: dict[int, float] = {}
        self.first_time_at_most: dict[int, float] = {}
        self.round_times: list[float] = []
        self.round_largest: list[int] = []
        self._open_time: float | None = None
        self._open_size = 0
        # Sliding window of the last N resets' group sizes, exactly as
        # ClusterTracker keeps it: [group_size, resets_in_window] pairs.
        self._win: deque[list] = deque()
        self._window_resets = 0
        # Incremental max over window entry sizes (== largest_in_window).
        self._wmax = 0
        # first_time_at_least keys are contiguous {1..max}; at_most keys
        # contiguous {min..n}.  Tracking the frontiers replaces the
        # per-reset dict membership probes and backfill loops.
        self._ftal_max = 0
        self._ftam_min = n_nodes + 1
        self._round_fill = 0
        self._round_max = 0

    @property
    def synchronization_time(self) -> float | None:
        """First time all N routers reset together."""
        return self.first_time_at_least.get(self.n_nodes)

    @property
    def breakup_time(self) -> float | None:
        """First time a full window of lone resets occurred."""
        return self.first_time_at_most.get(1)


class BatchCascade:
    """Cascade-rule simulation of many seeds through one kernel.

    Parameters
    ----------
    params:
        The (N, Tp, Tc, Tr) tuple, shared by every member.
    seeds:
        One master seed per ensemble member; member ``k`` reproduces
        ``CascadeModel(params, seed=seeds[k], ...)`` bit for bit.
    initial_phases:
        As in ``CascadeModel``: "unsynchronized" (uniform on [0, Tp]
        from each member's own phase stream), "synchronized" (all
        zero), or explicit phases applied to every member.
    keep_cluster_history:
        When True, each member retains its closed reset groups.
    backend:
        "python", "numpy", or None to use the module default
        (:data:`BACKEND`).  Both backends produce identical bytes;
        "numpy" raises if NumPy is not importable.
    """

    def __init__(
        self,
        params: RouterTimingParameters,
        seeds: Sequence[int],
        initial_phases="unsynchronized",
        keep_cluster_history: bool = False,
        backend: str | None = None,
    ) -> None:
        if backend is None:
            backend = BACKEND
        if backend not in ("python", "numpy"):
            raise ValueError(
                f"unknown batch backend {backend!r}; known backends: python, numpy"
            )
        if backend == "numpy" and _np is None:
            raise RuntimeError("numpy backend requested but numpy is not importable")
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise ValueError("seeds must be non-empty")
        self.params = params
        self.backend = backend
        self._keep_history = keep_cluster_history
        n = params.n_nodes
        self._n = n
        self._m = len(seeds)
        self._tp = params.tp
        self._tc = params.tc
        # The interval draw's operands, fixed once: CascadeModel passes
        # (tp - tr, tp + tr) into uniform(), which multiplies by
        # (high - low).  Same floats, same order, here.
        self._low = params.tp - params.tr
        self._high = params.tp + params.tr
        self._span = self._high - self._low

        explicit = None
        if not isinstance(initial_phases, str):
            explicit = [float(p) for p in initial_phases]
            if len(explicit) != n:
                raise ValueError(f"expected {n} phases, got {len(explicit)}")
            if any(p < 0 for p in explicit):
                raise ValueError("initial phases must be non-negative")

        # -- per-member stream derivation (exact spawn() replay) -------
        # Flat SoA state: expiries and router RNG states are single
        # lists of length m*n; member k's router i sits at k*n + i.
        expiry: list[float] = []
        states: list[int] = []
        phase_states: list[int] = []
        members: list[BatchMember] = []
        tp = params.tp
        for seed in seeds:
            s = int(seed) % _MOD or 1  # _validate_seed
            for i in range(n):
                s = (_MUL * s) % _MOD  # master.next_int() inside spawn(i)
                mixed = (s * 2654435761 + (i + 1) * 40503) % _MOD
                states.append(mixed or 1)
            s = (_MUL * s) % _MOD  # the spawn(n + 1) master advance
            mixed = (s * 2654435761 + (n + 2) * 40503) % _MOD
            ps = mixed or 1
            if explicit is not None:
                expiry.extend(explicit)
            elif initial_phases == "synchronized":
                expiry.extend([0.0] * n)
            else:
                # phase_rng.uniform(0.0, tp): 0.0 + (tp - 0.0) * u.
                q = ps
                for _ in range(n):
                    q = (_MUL * q) % _MOD
                    expiry.append(0.0 + (tp - 0.0) * (q / _MOD))
                ps = q
            phase_states.append(ps)
            members.append(BatchMember(seed, n))
        self._expiry = expiry
        self._rng_state = states
        self._phase_states = phase_states
        self._members = members

        # NumPy RNG bank, built lazily at the first run() so the block
        # size can be matched to the horizon.
        self._blocks: list[list[float]] | None = None
        self._pos: list[int] = []
        self._base: list[int] = []
        self._powers = None
        self._jump = 1
        self._block_len = 0

    # -- public views ----------------------------------------------------

    @property
    def members(self) -> tuple[BatchMember, ...]:
        """Per-member trajectory views, in seed order."""
        return tuple(self._members)

    def rng_states(self, k: int) -> list[int]:
        """Member ``k``'s current per-router Lehmer states.

        Equal to ``[m._rngs[i]._gen.state for i in range(n)]`` of the
        equivalent ``CascadeModel`` at the same point — the witness
        that both engines consumed each stream to the same position.
        """
        base = k * self._n
        if self.backend == "python" or self._blocks is None:
            return self._rng_state[base : base + self._n]
        return [
            (pow(_MUL, self._pos[i], _MOD) * self._base[i]) % _MOD
            for i in range(base, base + self._n)
        ]

    def phase_rng_state(self, k: int) -> int:
        """Member ``k``'s phase-stream state after initialization."""
        return self._phase_states[k]

    # -- the kernel ------------------------------------------------------

    def run(
        self,
        until: float,
        stop_on_full_sync: bool = False,
        stop_on_full_unsync: bool = False,
    ) -> list[float]:
        """Advance every member to the horizon or its stop condition.

        Semantically ``CascadeModel.run(until, ...)`` applied to each
        member independently; returns the per-member ``now`` values.
        Resumable: a later call with a larger horizon picks each member
        up exactly where it stopped (members that met a stop condition
        continue, as the serial engine would).
        """
        until = float(until)
        if self.backend == "numpy" and self._blocks is None:
            self._build_blocks(until)
        for k in range(self._m):
            self._advance_member(k, until, stop_on_full_sync, stop_on_full_unsync)
        return [member.now for member in self._members]

    def _advance_member(
        self, k: int, until: float, stop_sync: bool, stop_unsync: bool
    ) -> None:
        """Replay of ``CascadeModel.run`` over member ``k``'s slice."""
        member = self._members[k]
        n = self._n
        tc = self._tc
        tol = RESET_TIME_TOLERANCE
        exp = self._expiry
        lo = k * n
        hi = lo + n
        draw = self._draw_value
        keep = self._keep_history
        win = member._win
        while True:
            # Earliest pending expiry; first minimum in the slice is
            # the lowest node id, matching the heap's (time, node) order.
            e1 = min(exp[lo:hi])
            if e1 > until:
                member.now = max(member.now, until)
                self._finish(member)
                return
            i1 = exp.index(e1, lo, hi)
            exp[i1] = _INF
            idxs = [i1]
            times = [e1]
            window = e1 + tc
            while True:
                e = min(exp[lo:hi])
                if e > window:
                    break
                i = exp.index(e, lo, hi)
                exp[i] = _INF
                idxs.append(i)
                times.append(e)
                window += tc
            if window > until:
                # Busy period outlives the horizon: restore the pending
                # expiries and stop here, exactly as the serial engine
                # does (which also closes the trailing open group, as
                # the DES's end-of-run finish() would).
                for i, e in zip(idxs, times):
                    exp[i] = e
                member.now = until
                self._finish(member)
                return
            member.total_cascades += 1
            member.now = window
            t = window
            g = len(idxs)

            # -- fused ClusterTracker.record_reset × g at time t ------
            open_time = member._open_time
            if open_time is not None and abs(t - open_time) <= tol:
                s = member._open_size
                cur = win[-1]
            else:
                if open_time is not None:
                    if keep:
                        member.groups.append(
                            ClusterGroup(open_time, member._open_size)
                        )
                cur = [0, 0]
                win.append(cur)
                s = 0
            wres = member._window_resets
            wmax = member._wmax
            ftal = member.first_time_at_least
            ftal_max = member._ftal_max
            ftam = member.first_time_at_most
            ftam_min = member._ftam_min
            rfill = member._round_fill
            rmax = member._round_max
            for _ in range(g):
                s += 1
                cur[0] = s
                cur[1] += 1
                wres += 1
                if s > wmax:
                    wmax = s
                while wres > n:
                    oldest = win[0]
                    oldest[1] -= 1
                    wres -= 1
                    if not oldest[1]:
                        win.popleft()
                        if oldest[0] >= wmax and wmax > 1:
                            # Evicted the max holder: rescan (rare).
                            wmax = 1
                            for entry in win:
                                if entry[0] > wmax:
                                    wmax = entry[0]
                # at_least keys stay contiguous {1..max} because the
                # open size grows one reset at a time.
                if s > ftal_max:
                    ftal[s] = t
                    ftal_max = s
                # at_most keys stay contiguous {min..n}; only a new
                # window maximum below the frontier extends them.
                if wres >= n and wmax < ftam_min:
                    for v in range(wmax, ftam_min):
                        ftam[v] = t
                    ftam_min = wmax
                rfill += 1
                if s > rmax:
                    rmax = s
                if rfill >= n:
                    member.round_times.append(t)
                    member.round_largest.append(rmax)
                    rfill = 0
                    rmax = 0
            member._open_time = t
            member._open_size = s
            member._window_resets = wres
            member._wmax = wmax
            member._ftal_max = ftal_max
            member._ftam_min = ftam_min
            member._round_fill = rfill
            member._round_max = rmax
            member.total_resets += g

            # -- redraw, in pop order (the per-router stream order) ---
            for i in idxs:
                exp[i] = window + draw(i)

            if stop_sync and (
                s >= n or (wres >= n and wmax >= n)
            ):
                self._finish(member)
                return
            if stop_unsync and wres >= n and wmax <= 1:
                self._finish(member)
                return

    def _finish(self, member: BatchMember) -> None:
        """ClusterTracker.finish(): close the trailing open group."""
        if member._open_time is None:
            return
        if self._keep_history:
            member.groups.append(
                ClusterGroup(member._open_time, member._open_size)
            )
        member._open_time = None
        member._open_size = 0

    # -- RNG backends ----------------------------------------------------

    def _draw_value(self, idx: float) -> float:
        """One interval draw from flat stream ``idx`` (pure path)."""
        s = (_MUL * self._rng_state[idx]) % _MOD
        self._rng_state[idx] = s
        return self._low + self._span * (s / _MOD)

    def _draw_value_numpy(self, idx: int) -> float:
        """One interval draw from flat stream ``idx`` (block path)."""
        pos = self._pos[idx]
        blk = self._blocks[idx]
        if pos >= self._block_len:
            blk = self._refill(idx)
            pos = 0
        self._pos[idx] = pos + 1
        return blk[pos]

    def _build_blocks(self, until: float) -> None:
        """Precompute every stream's interval draws in one array pass.

        Block states come from jumping the recurrence: ``x_j = (a^j *
        x_0) mod m`` — exact in int64 because ``a^j mod m < 2**31`` and
        ``x_0 < 2**31`` keep every product under ``2**62``.  The
        uniform transform divides by the modulus and applies ``low +
        span * u`` elementwise, the same float64 operations in the same
        order as the scalar path, so the block values are bit-identical
        to sequential draws.
        """
        streams = self._m * self._n
        est = int(until / self._tp) + 32 if self._tp > 0 else 64
        cap = max(32, _BLOCK_BUDGET // streams)
        length = max(16, min(est, cap, 16384))
        self._block_len = length
        powers = []
        p = 1
        for _ in range(length):
            p = (p * _MUL) % _MOD
            powers.append(p)
        self._powers = _np.array(powers, dtype=_np.int64)
        self._jump = pow(_MUL, length, _MOD)
        base = _np.array(self._rng_state, dtype=_np.int64)
        states = (base[:, None] * self._powers[None, :]) % _MOD
        values = self._low + self._span * (states / _MOD)
        self._blocks = values.tolist()
        self._pos = [0] * streams
        self._base = list(self._rng_state)
        self._draw_value = self._draw_value_numpy  # type: ignore[method-assign]

    def _refill(self, idx: int) -> list[float]:
        """Advance stream ``idx``'s bank by one block."""
        base = (self._jump * self._base[idx]) % _MOD
        self._base[idx] = base
        states = (self._powers * base) % _MOD
        block = (self._low + self._span * (states / _MOD)).tolist()
        self._blocks[idx] = block
        return block
