"""Parameter sweeps and phase-transition estimation on the simulation.

These helpers run families of Periodic Messages simulations — over the
random component ``Tr``, over the node count ``N``, or over seeds —
and extract the quantities the paper's evaluation reports: time to
synchronize, time to break up, and the location of the abrupt
transition between the two regimes.

All sweep helpers execute through the parallel layer
(:mod:`repro.parallel`): pass ``jobs=4`` to fan the grid out over four
worker processes, and/or a :class:`~repro.parallel.ResultCache` so
repeated sweeps and bisection probes never recompute a completed
simulation.  Results are independent of ``jobs`` — each (params, seed)
point derives its own RNG streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .fastsim import CascadeModel
from .model import ModelConfig, PeriodicMessagesModel
from .parameters import RouterTimingParameters

__all__ = [
    "SweepResult",
    "time_to_synchronize",
    "time_to_break_up",
    "sweep_tr",
    "sweep_nodes",
    "find_transition_n",
]


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one simulation in a sweep.

    ``time`` is the first-passage time in simulated seconds, or None
    if the event did not occur within the horizon.  ``rounds`` is the
    same expressed in rounds of ``Tp + Tc`` seconds.
    """

    parameter: float
    seed: int
    time: float | None
    horizon: float

    @property
    def occurred(self) -> bool:
        """Whether the target event happened within the horizon."""
        return self.time is not None

    def rounds(self, round_length: float) -> float | None:
        """First-passage time in rounds, or None."""
        return None if self.time is None else self.time / round_length


def _validate_engine(engine: str) -> None:
    from .engines import resolve_engine

    resolve_engine(engine)


def time_to_synchronize(
    params: RouterTimingParameters,
    horizon: float,
    seed: int = 1,
    engine: str = "cascade",
    **config_overrides,
) -> float | None:
    """Seconds until an unsynchronized start first reaches a full cluster.

    ``engine`` selects the implementation: ``"cascade"`` (default,
    ~8x faster), ``"batch"`` (the struct-of-arrays kernel, a batch of
    one here), or ``"des"``; all three produce identical trajectories
    for the pure periodic model (see
    tests/test_engine_differential.py).  Config overrides (e.g. a
    notification delay) force the DES.
    """
    _validate_engine(engine)
    if engine == "batch" and not config_overrides:
        from .batch import BatchCascade

        batch = BatchCascade(params, [seed], initial_phases="unsynchronized")
        batch.run(until=horizon, stop_on_full_sync=True)
        return batch.members[0].synchronization_time
    if engine == "cascade" and not config_overrides:
        model = CascadeModel(params, seed=seed, initial_phases="unsynchronized")
        model.run(until=horizon, stop_on_full_sync=True)
        return model.synchronization_time
    config = ModelConfig.from_parameters(
        params, seed=seed, keep_cluster_history=False, **config_overrides
    )
    des = PeriodicMessagesModel(config, initial_phases="unsynchronized")
    des.run(until=horizon, stop_on_full_sync=True)
    return des.tracker.synchronization_time


def time_to_break_up(
    params: RouterTimingParameters,
    horizon: float,
    seed: int = 1,
    engine: str = "cascade",
    **config_overrides,
) -> float | None:
    """Seconds until a synchronized start first returns to all-lone clusters.

    See :func:`time_to_synchronize` for the ``engine`` parameter.
    """
    _validate_engine(engine)
    if engine == "batch" and not config_overrides:
        from .batch import BatchCascade

        batch = BatchCascade(params, [seed], initial_phases="synchronized")
        batch.run(until=horizon, stop_on_full_unsync=True)
        return batch.members[0].breakup_time
    if engine == "cascade" and not config_overrides:
        model = CascadeModel(params, seed=seed, initial_phases="synchronized")
        model.run(until=horizon, stop_on_full_unsync=True)
        return model.breakup_time
    config = ModelConfig.from_parameters(
        params, seed=seed, keep_cluster_history=False, **config_overrides
    )
    des = PeriodicMessagesModel(config, initial_phases="synchronized")
    des.run(until=horizon, stop_on_full_unsync=True)
    return des.tracker.breakup_time


def _run_sweep(
    points: list[tuple[float, RouterTimingParameters]],
    horizon: float,
    direction: str,
    seeds: Sequence[int],
    engine: str,
    jobs: int,
    cache,
    checkpoint=None,
    on_error: str = "raise",
    dispatcher=None,
    topology: str = "clique",
) -> list[SweepResult]:
    """Execute a (parameter, seed) grid through a dispatcher.

    By default the grid runs on a
    :class:`~repro.campaign.dispatch.LocalDispatcher` built from the
    ``jobs``/``cache``/``checkpoint``/``on_error`` knobs — exactly the
    pre-campaign runner behavior, journal lifecycle included.  Passing
    an explicit ``dispatcher`` routes execution elsewhere (e.g. a
    :class:`~repro.campaign.dispatch.ServeDispatcher` fleet); the
    runner knobs then stay with whoever built the dispatcher, and
    journaling is the caller's concern.

    ``topology`` (parse grammar of :func:`repro.topo.parse_topology`)
    applies to every point; the default clique reproduces the paper's
    fully-coupled model and the historical cache keys.
    """
    from ..campaign.dispatch import LocalDispatcher
    from ..obs import obs
    from ..parallel import SimulationJob, resolve_checkpoint

    if direction not in ("synchronize", "break_up"):
        raise ValueError(f"unknown direction {direction!r}")
    _validate_engine(engine)
    job_direction = "up" if direction == "synchronize" else "down"
    grid = [
        (value, seed, params)
        for value, params in points
        for seed in seeds
    ]
    specs = [
        SimulationJob.from_params(
            params, seed=seed, horizon=horizon,
            direction=job_direction, engine=engine, topology=topology,
        )
        for _value, seed, params in grid
    ]
    journal = None
    if dispatcher is None:
        journal = resolve_checkpoint(checkpoint, specs)
        dispatcher = LocalDispatcher(
            jobs=jobs, cache=cache, checkpoint=journal, on_error=on_error
        )
    try:
        with obs().span(
            "sweep.run",
            direction=direction,
            points=len(points),
            seeds=len(list(seeds)),
            grid=len(specs),
            engine=engine,
            jobs=jobs,
            dispatcher=dispatcher.describe(),
        ):
            results = dispatcher.run(specs)
    finally:
        if journal is not None:
            report = dispatcher.report
            if report is not None and report.fully_accounted(len(specs)) and (
                report.incomplete == 0
            ):
                journal.complete()  # clean finish: no resume marker to keep
            else:
                journal.close()
    return [
        SweepResult(
            parameter=value,
            seed=seed,
            time=result.terminal_time(spec),
            horizon=horizon,
        )
        for (value, seed, _params), spec, result in zip(grid, specs, results)
    ]


def sweep_tr(
    base: RouterTimingParameters,
    tr_values: Sequence[float],
    horizon: float,
    direction: str = "synchronize",
    seeds: Sequence[int] = (1,),
    engine: str = "cascade",
    jobs: int = 1,
    cache=None,
    checkpoint=None,
    on_error: str = "raise",
    dispatcher=None,
    topology: str = "clique",
) -> list[SweepResult]:
    """First-passage times across a range of random components.

    ``direction`` is ``"synchronize"`` (unsynchronized start, Figure 7
    / the '+' marks of Figure 12) or ``"break_up"`` (synchronized
    start, Figure 8 / the 'x' marks).

    ``checkpoint=True`` journals completed grid points under
    ``results/checkpoints/`` so an interrupted sweep resumes without
    re-simulating; ``on_error="censor"`` harvests partial grids
    (failed points read as censored) instead of aborting.
    ``dispatcher`` overrides where the grid executes (see
    :func:`_run_sweep`); the default is the local pool.
    """
    points = [(tr, base.with_tr(tr)) for tr in tr_values]
    return _run_sweep(
        points, horizon, direction, seeds, engine, jobs, cache,
        checkpoint=checkpoint, on_error=on_error, dispatcher=dispatcher,
        topology=topology,
    )


def sweep_nodes(
    base: RouterTimingParameters,
    n_values: Sequence[int],
    horizon: float,
    direction: str = "synchronize",
    seeds: Sequence[int] = (1,),
    engine: str = "cascade",
    jobs: int = 1,
    cache=None,
    checkpoint=None,
    on_error: str = "raise",
    dispatcher=None,
    topology: str = "clique",
) -> list[SweepResult]:
    """First-passage times across a range of network sizes (Figure 15's axis).

    See :func:`sweep_tr` for ``checkpoint``/``on_error``/``dispatcher``;
    ``topology`` applies the same coupling graph at every size.
    """
    points = [(float(n), base.with_nodes(n)) for n in n_values]
    return _run_sweep(
        points, horizon, direction, seeds, engine, jobs, cache,
        checkpoint=checkpoint, on_error=on_error, dispatcher=dispatcher,
        topology=topology,
    )


def find_transition_n(
    base: RouterTimingParameters,
    horizon: float,
    n_low: int = 2,
    n_high: int = 40,
    seed: int = 1,
    engine: str = "cascade",
    cache=None,
    checkpoint=None,
    topology: str = "clique",
) -> int:
    """Smallest N that synchronizes within the horizon (bisection).

    The paper's headline: "the addition of a single router will convert
    a completely unsynchronized traffic stream into a completely
    synchronized one".  This estimates that critical router count for
    the given timing parameters.  Assumes monotonicity in N (larger
    networks synchronize faster), which holds throughout the paper's
    parameter ranges.

    Bisection is inherently sequential, so there is no ``jobs``
    parameter — but with a ``cache`` every probe is remembered, so
    repeated or overlapping searches converge almost for free.
    ``checkpoint=True`` journals the probes too (the run id derives
    from the search descriptor, since the probe set is adaptive), so
    a killed search replays its completed probes instantly.
    """
    import json as _json

    from ..parallel import (
        MODEL_VERSION,
        CheckpointJournal,
        ParallelRunner,
        SimulationJob,
        resolve_checkpoint,
    )

    _validate_engine(engine)
    from ..topo import ensure_spec

    topology = ensure_spec(topology).canonical()
    if checkpoint is True:
        fields = {
            "fn": "find_transition_n",
            "base": [base.n_nodes, base.tp, base.tc, base.tr],
            "horizon": horizon,
            "n_low": n_low,
            "n_high": n_high,
            "seed": seed,
            "engine": engine,
            "model_version": MODEL_VERSION,
        }
        if topology != "clique":
            # Key omitted for cliques: pre-topology searches keep
            # resuming from their existing journals.
            fields["topology"] = topology
        descriptor = _json.dumps(fields, sort_keys=True)
        journal = CheckpointJournal.for_key(descriptor)
    else:
        journal = resolve_checkpoint(checkpoint, [])
    runner = ParallelRunner(jobs=1, cache=cache, checkpoint=journal)

    def synchronizes(n: int) -> bool:
        from ..obs import obs

        spec = SimulationJob.from_params(
            base.with_nodes(n), seed=seed, horizon=horizon,
            direction="up", engine=engine, topology=topology,
        )
        with obs().span("transition.probe", n=n) as span:
            (result,) = runner.run([spec])
            synced = result.terminal_time(spec) is not None
            span.set(synchronized=synced)
        return synced

    def finish(answer: int) -> int:
        if journal is not None:
            journal.complete()  # search done: drop the resume marker
        return answer

    if not synchronizes(n_high):
        if journal is not None:
            journal.close()  # keep probes: a wider re-search resumes them
        raise ValueError(f"no synchronization even at N={n_high} within horizon {horizon}")
    if synchronizes(n_low):
        return finish(n_low)
    lo, hi = n_low, n_high  # invariant: lo does not synchronize, hi does
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if synchronizes(mid):
            hi = mid
        else:
            lo = mid
    return finish(hi)
