"""Parameter sweeps and phase-transition estimation on the simulation.

These helpers run families of Periodic Messages simulations — over the
random component ``Tr``, over the node count ``N``, or over seeds —
and extract the quantities the paper's evaluation reports: time to
synchronize, time to break up, and the location of the abrupt
transition between the two regimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .fastsim import CascadeModel
from .model import ModelConfig, PeriodicMessagesModel
from .parameters import RouterTimingParameters

__all__ = [
    "SweepResult",
    "time_to_synchronize",
    "time_to_break_up",
    "sweep_tr",
    "sweep_nodes",
    "find_transition_n",
]


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one simulation in a sweep.

    ``time`` is the first-passage time in simulated seconds, or None
    if the event did not occur within the horizon.  ``rounds`` is the
    same expressed in rounds of ``Tp + Tc`` seconds.
    """

    parameter: float
    seed: int
    time: float | None
    horizon: float

    @property
    def occurred(self) -> bool:
        """Whether the target event happened within the horizon."""
        return self.time is not None

    def rounds(self, round_length: float) -> float | None:
        """First-passage time in rounds, or None."""
        return None if self.time is None else self.time / round_length


def time_to_synchronize(
    params: RouterTimingParameters,
    horizon: float,
    seed: int = 1,
    engine: str = "cascade",
    **config_overrides,
) -> float | None:
    """Seconds until an unsynchronized start first reaches a full cluster.

    ``engine`` selects the implementation: ``"cascade"`` (default,
    ~8x faster) or ``"des"``; they produce identical trajectories for
    the pure periodic model (see tests/test_core_fastsim.py).  Config
    overrides (e.g. a notification delay) force the DES.
    """
    if engine == "cascade" and not config_overrides:
        model = CascadeModel(params, seed=seed, initial_phases="unsynchronized")
        model.run(until=horizon, stop_on_full_sync=True)
        return model.synchronization_time
    config = ModelConfig.from_parameters(
        params, seed=seed, keep_cluster_history=False, **config_overrides
    )
    des = PeriodicMessagesModel(config, initial_phases="unsynchronized")
    des.run(until=horizon, stop_on_full_sync=True)
    return des.tracker.synchronization_time


def time_to_break_up(
    params: RouterTimingParameters,
    horizon: float,
    seed: int = 1,
    engine: str = "cascade",
    **config_overrides,
) -> float | None:
    """Seconds until a synchronized start first returns to all-lone clusters.

    See :func:`time_to_synchronize` for the ``engine`` parameter.
    """
    if engine == "cascade" and not config_overrides:
        model = CascadeModel(params, seed=seed, initial_phases="synchronized")
        model.run(until=horizon, stop_on_full_unsync=True)
        return model.breakup_time
    config = ModelConfig.from_parameters(
        params, seed=seed, keep_cluster_history=False, **config_overrides
    )
    des = PeriodicMessagesModel(config, initial_phases="synchronized")
    des.run(until=horizon, stop_on_full_unsync=True)
    return des.tracker.breakup_time


def sweep_tr(
    base: RouterTimingParameters,
    tr_values: Sequence[float],
    horizon: float,
    direction: str = "synchronize",
    seeds: Sequence[int] = (1,),
) -> list[SweepResult]:
    """First-passage times across a range of random components.

    ``direction`` is ``"synchronize"`` (unsynchronized start, Figure 7
    / the '+' marks of Figure 12) or ``"break_up"`` (synchronized
    start, Figure 8 / the 'x' marks).
    """
    if direction not in ("synchronize", "break_up"):
        raise ValueError(f"unknown direction {direction!r}")
    runner = time_to_synchronize if direction == "synchronize" else time_to_break_up
    results = []
    for tr in tr_values:
        for seed in seeds:
            time = runner(base.with_tr(tr), horizon, seed=seed)
            results.append(SweepResult(parameter=tr, seed=seed, time=time, horizon=horizon))
    return results


def sweep_nodes(
    base: RouterTimingParameters,
    n_values: Sequence[int],
    horizon: float,
    direction: str = "synchronize",
    seeds: Sequence[int] = (1,),
) -> list[SweepResult]:
    """First-passage times across a range of network sizes (Figure 15's axis)."""
    if direction not in ("synchronize", "break_up"):
        raise ValueError(f"unknown direction {direction!r}")
    runner = time_to_synchronize if direction == "synchronize" else time_to_break_up
    results = []
    for n in n_values:
        for seed in seeds:
            time = runner(base.with_nodes(n), horizon, seed=seed)
            results.append(SweepResult(parameter=float(n), seed=seed, time=time, horizon=horizon))
    return results


def find_transition_n(
    base: RouterTimingParameters,
    horizon: float,
    n_low: int = 2,
    n_high: int = 40,
    seed: int = 1,
) -> int:
    """Smallest N that synchronizes within the horizon (bisection).

    The paper's headline: "the addition of a single router will convert
    a completely unsynchronized traffic stream into a completely
    synchronized one".  This estimates that critical router count for
    the given timing parameters.  Assumes monotonicity in N (larger
    networks synchronize faster), which holds throughout the paper's
    parameter ranges.
    """

    def synchronizes(n: int) -> bool:
        return time_to_synchronize(base.with_nodes(n), horizon, seed=seed) is not None

    if not synchronizes(n_high):
        raise ValueError(f"no synchronization even at N={n_high} within horizon {horizon}")
    if synchronizes(n_low):
        return n_low
    lo, hi = n_low, n_high  # invariant: lo does not synchronize, hi does
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if synchronizes(mid):
            hi = mid
        else:
            lo = mid
    return hi
