"""The Periodic Messages model (Sections 3 and 4 of the paper).

Each of N routers loops through the paper's four steps:

1. Prepare and send a routing message (``Tc`` seconds of work).
2. Incoming messages that arrive while the router is busy extend the
   busy period by ``Tc`` each.
3. When all work completes the router *resets its timer*, drawing the
   next interval from the timer policy (uniform ``[Tp-Tr, Tp+Tr]`` in
   the paper).
4. Incoming messages that arrive while idle are processed immediately
   (also ``Tc``) but do not touch the timer — unless they are
   *triggered updates*, which send the router back to step 1.

The weak coupling lives in step 3: a router whose timer expires while
it is busy processing a neighbour's message finishes both tasks and
resets its timer at the same instant as that neighbour, forming a
*cluster*.  The simulation follows the paper's simplifying assumption
that every node learns of a transmission at the sender's timer-expiry
instant (configurable via ``notification_delay`` for ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

from ..des import Event, Simulator
from ..rng import RandomSource
from .clusters import ClusterTracker
from .parameters import RouterTimingParameters
from .timers import TimerPolicy, UniformJitterTimer

__all__ = ["ModelConfig", "PeriodicMessagesModel", "RouterState", "InitialPhases"]

InitialPhases = Literal["unsynchronized", "synchronized"] | Sequence[float]


@dataclass
class ModelConfig:
    """Configuration of a Periodic Messages run.

    Attributes
    ----------
    n_nodes:
        Number of routers.
    tc:
        Seconds of processing per routing message (incoming or
        outgoing).
    timer:
        Policy drawing the interval between a timer reset and its next
        expiry.
    reset_mode:
        ``"after_busy"`` — the paper's model: the timer restarts only
        after the router finishes its own message and any incoming
        ones.  ``"on_expiry"`` — the RFC 1058 alternative: the next
        expiry is scheduled the moment the timer fires, decoupling the
        period from the service time (no synchronization mechanism,
        but also no break-up mechanism), and triggered updates do not
        reset the timer.
    notification_delay:
        Seconds between a sender's timer expiry and receivers learning
        of the message.  The paper assumes 0; the ablation benches set
        it positive.
    seed:
        Master seed; each router derives a private stream from it.
    record_transmissions:
        Keep every (time, node) transmission for offset plots
        (Figures 4/5).  Costs memory proportional to run length.
    record_journal:
        Keep a per-event journal of (time, kind, node) entries, where
        kind is ``"expire"`` (an "x" in the paper's Figure 5) or
        ``"reset"`` (an "o").  For short diagnostic runs only.
    keep_cluster_history:
        Retain closed cluster groups (Figure 6); disable for very long
        runs.
    """

    n_nodes: int
    tc: float
    timer: TimerPolicy
    reset_mode: Literal["after_busy", "on_expiry"] = "after_busy"
    notification_delay: float = 0.0
    seed: int = 1
    record_transmissions: bool = False
    record_journal: bool = False
    keep_cluster_history: bool = True

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be positive")
        if self.tc < 0:
            raise ValueError("Tc must be non-negative")
        if self.notification_delay < 0:
            raise ValueError("notification_delay must be non-negative")
        if self.reset_mode not in ("after_busy", "on_expiry"):
            raise ValueError(f"unknown reset_mode {self.reset_mode!r}")

    @classmethod
    def from_parameters(
        cls,
        params: RouterTimingParameters,
        seed: int = 1,
        **overrides,
    ) -> "ModelConfig":
        """Build a config from a paper-style (N, Tp, Tc, Tr) tuple."""
        return cls(
            n_nodes=params.n_nodes,
            tc=params.tc,
            timer=UniformJitterTimer(params.tp, params.tr),
            seed=seed,
            **overrides,
        )


@dataclass
class RouterState:
    """Per-router simulation state."""

    node_id: int
    rng: RandomSource
    busy_until: float = 0.0
    busy: bool = False
    pending_own: bool = False
    timer_event: Event | None = None
    busy_end_event: Event | None = None
    messages_sent: int = 0
    messages_processed: int = 0
    last_trigger_seen: int = -1
    extra: dict = field(default_factory=dict)


class PeriodicMessagesModel:
    """Discrete-event realization of the Periodic Messages model.

    Typical use::

        config = ModelConfig.from_parameters(RouterTimingParameters(tr=0.1))
        model = PeriodicMessagesModel(config)
        model.run(until=1e5, stop_on_full_sync=True)
        print(model.tracker.synchronization_time)
    """

    def __init__(
        self,
        config: ModelConfig,
        initial_phases: InitialPhases = "unsynchronized",
        probe=None,
    ) -> None:
        self.config = config
        self.sim = Simulator()
        self.probe = probe
        # With delayed notifications, clustered resets are spread over
        # roughly one delay per member instead of being simultaneous.
        tolerance = max(1e-7, 2.0 * config.n_nodes * config.notification_delay)
        # The probe (see repro.obs.probes) observes the reset stream
        # through the tracker; per-router message counters are exact
        # on RouterState and harvested by probe.collect_model().
        self.tracker = ClusterTracker(
            config.n_nodes,
            keep_history=config.keep_cluster_history,
            tolerance=tolerance,
            probe=probe,
        )
        self.transmissions: list[tuple[float, int]] = []
        self.journal: list[tuple[float, str, int]] = []
        master = RandomSource(seed=config.seed)
        self.routers = [
            RouterState(node_id=i, rng=master.spawn(i)) for i in range(config.n_nodes)
        ]
        self._phase_rng = master.spawn(config.n_nodes + 1)
        self._trigger_counter = 0
        self._stop_on_full_sync = False
        self._stop_on_full_unsync = False
        self._stop_check_at: float | None = None
        self._schedule_initial_timers(initial_phases)

    # -- setup ---------------------------------------------------------------

    def _schedule_initial_timers(self, initial_phases: InitialPhases) -> None:
        mean = self.config.timer.mean_interval
        if initial_phases == "unsynchronized":
            # Paper: "the transit time for the first routing message is
            # chosen from the uniform distribution on [0, Tp] seconds".
            phases = [self._phase_rng.uniform(0.0, mean) for _ in self.routers]
        elif initial_phases == "synchronized":
            phases = [0.0] * len(self.routers)
        else:
            phases = [float(p) for p in initial_phases]
            if len(phases) != self.config.n_nodes:
                raise ValueError(
                    f"expected {self.config.n_nodes} initial phases, got {len(phases)}"
                )
            if any(p < 0 for p in phases):
                raise ValueError("initial phases must be non-negative")
        for router, phase in zip(self.routers, phases):
            router.timer_event = self.sim.schedule_at(
                phase, self._on_timer_expire, router, label=f"expire-{router.node_id}"
            )

    # -- model events ----------------------------------------------------------

    def _on_timer_expire(self, router: RouterState) -> None:
        """The router's own timer fired: go to step 1."""
        router.timer_event = None
        if self.config.reset_mode == "on_expiry":
            # RFC 1058 variant: schedule the next expiry immediately,
            # independent of how long the work takes.
            interval = self.config.timer.interval(router.rng, router.node_id)
            router.timer_event = self.sim.schedule(
                interval, self._on_timer_expire, router, label=f"expire-{router.node_id}"
            )
            if self.config.record_journal:
                self.journal.append((self.sim.now, "reset", router.node_id))
            self.tracker.record_reset(self.sim.now, router.node_id)
            self._check_stop()
        self._transmit(router)

    def _transmit(self, router: RouterState) -> None:
        """Step 1: prepare and send the routing message, notifying peers."""
        now = self.sim.now
        router.messages_sent += 1
        if self.config.record_transmissions:
            self.transmissions.append((now, router.node_id))
        if self.config.record_journal:
            self.journal.append((now, "expire", router.node_id))
        if self.config.reset_mode == "after_busy":
            router.pending_own = True
        self._extend_busy(router, now)
        delay = self.config.notification_delay
        for other in self.routers:
            if other is router:
                continue
            if delay == 0.0:
                self._on_message_arrival(other)
            else:
                self.sim.schedule(
                    delay, self._on_message_arrival, other,
                    label=f"arrive-{other.node_id}",
                )

    def _on_message_arrival(self, router: RouterState, triggered_id: int | None = None) -> None:
        """Steps 2/4: an incoming routing message reaches ``router``."""
        router.messages_processed += 1
        if (
            triggered_id is None
            and not router.pending_own
            and not router.busy
            and router.timer_event is not None
            and router.timer_event.time
            > self.sim.now + (2 * self.config.n_nodes + 2) * self.config.tc
        ):
            # Fast path: the router is merely processing a message it
            # overheard.  A busy period can be extended by at most 2N
            # messages (periodic plus trigger responses from every
            # peer, plus its own), so if the router's timer cannot
            # expire within that window the busy period is
            # observationally inert — no reset timing changes.  Skip
            # the busy bookkeeping entirely.
            return
        self._extend_busy(router, self.sim.now)
        if triggered_id is not None and triggered_id > router.last_trigger_seen:
            router.last_trigger_seen = triggered_id
            # Triggered update: respond with our own message at once
            # ("the router goes to step 1, without waiting for the
            # timer to expire").  In the paper's model the pending
            # expiry is abandoned and the timer restarts after the busy
            # period; in the RFC 1058 variant the timer is untouched.
            if self.config.reset_mode == "after_busy" and router.timer_event is not None:
                router.timer_event.cancel()
                router.timer_event = None
            self._transmit(router)

    def _extend_busy(self, router: RouterState, now: float) -> None:
        """Add Tc of work, starting a busy period if the router was idle."""
        if router.busy:
            router.busy_until += self.config.tc
        else:
            router.busy = True
            router.busy_until = now + self.config.tc
        # Lazy re-arm: if a busy-end event is already pending it will
        # notice the extension when it fires and reschedule itself,
        # avoiding a cancel+push per incoming message.
        if router.busy_end_event is None:
            router.busy_end_event = self.sim.schedule_at(
                router.busy_until, self._on_busy_end, router, priority=1,
                label=f"busy-end-{router.node_id}",
            )

    def _on_busy_end(self, router: RouterState) -> None:
        """Step 3: all work done; reset the timer if this period sent our message."""
        now = self.sim.now
        router.busy_end_event = None
        if router.busy_until > now + 1e-15:
            # The busy period was extended while this event was in
            # flight (the normal case for clustered routers); re-arm at
            # the current end.
            router.busy_end_event = self.sim.schedule_at(
                router.busy_until, self._on_busy_end, router, priority=1,
                label=f"busy-end-{router.node_id}",
            )
            return
        router.busy = False
        if router.pending_own:
            router.pending_own = False
            interval = self.config.timer.interval(router.rng, router.node_id)
            router.timer_event = self.sim.schedule(
                interval, self._on_timer_expire, router, label=f"expire-{router.node_id}"
            )
            if self.config.record_journal:
                self.journal.append((now, "reset", router.node_id))
            self.tracker.record_reset(now, router.node_id)
            self._schedule_stop_check(now)

    def _schedule_stop_check(self, now: float) -> None:
        """Arrange for the stop conditions to be checked once ``now`` settles.

        Same-instant co-resets arrive as separate events; checking after
        each one would observe a *transient* cluster state — e.g. a
        momentarily all-lone window one event before its co-reset lands
        and merges into a cluster.  A single lower-priority event at the
        same timestamp runs after every reset of the instant, so the
        decision is made on the settled state — exactly the state the
        cascade and batch engines see at the end of a cascade group.
        """
        if not (self._stop_on_full_sync or self._stop_on_full_unsync):
            return
        if self._stop_check_at == now:
            return
        self._stop_check_at = now
        self.sim.schedule_at(now, self._settled_stop_check, priority=2,
                             label="stop-check")

    def _settled_stop_check(self) -> None:
        self._stop_check_at = None
        self._check_stop()

    def _check_stop(self) -> bool:
        if self._stop_on_full_sync and self.tracker.is_fully_synchronized():
            self.sim.stop()
            return True
        if self._stop_on_full_unsync and self.tracker.is_fully_unsynchronized():
            self.sim.stop()
            return True
        return False

    # -- public API ---------------------------------------------------------------

    def inject_triggered_update(self, at_time: float, origin: int = 0) -> None:
        """Schedule a triggered update (a network change) from ``origin``.

        The origin immediately goes to step 1; its message carries a
        trigger identifier, so every receiver also goes to step 1 once
        — the paper's "wave of triggered updates", which leaves the
        whole network synchronized (in the ``after_busy`` model).
        """
        if not 0 <= origin < self.config.n_nodes:
            raise ValueError(f"origin must be a node id in [0, {self.config.n_nodes})")

        def fire() -> None:
            self._trigger_counter += 1
            trigger_id = self._trigger_counter
            router = self.routers[origin]
            router.last_trigger_seen = trigger_id
            if self.config.reset_mode == "after_busy" and router.timer_event is not None:
                router.timer_event.cancel()
                router.timer_event = None
            now = self.sim.now
            router.messages_sent += 1
            if self.config.record_transmissions:
                self.transmissions.append((now, router.node_id))
            if self.config.record_journal:
                self.journal.append((now, "expire", router.node_id))
            if self.config.reset_mode == "after_busy":
                router.pending_own = True
            self._extend_busy(router, now)
            # Deliver the trigger in two phases so every receiver has
            # abandoned its pending timer before the response wave of
            # ordinary messages starts arriving (otherwise a receiver
            # late in the wave would treat early responses as
            # overheard traffic).
            receivers = [other for other in self.routers if other is not router]
            for other in receivers:
                other.messages_processed += 1
                other.last_trigger_seen = trigger_id
                if self.config.reset_mode == "after_busy" and other.timer_event is not None:
                    other.timer_event.cancel()
                    other.timer_event = None
                self._extend_busy(other, now)  # processing the trigger
            for other in receivers:
                self._transmit(other)

        self.sim.schedule_at(at_time, fire, label=f"trigger-{origin}")

    def run(
        self,
        until: float,
        stop_on_full_sync: bool = False,
        stop_on_full_unsync: bool = False,
        max_events: int | None = None,
    ) -> float:
        """Run to the horizon (or an early-stop condition); returns end time."""
        self._stop_on_full_sync = stop_on_full_sync
        self._stop_on_full_unsync = stop_on_full_unsync
        end = self.sim.run(until=until, max_events=max_events)
        self.tracker.finish()
        if self.probe is not None:
            self.probe.collect_model(self)
        return end

    @property
    def rounds_elapsed(self) -> float:
        """Approximate rounds completed (total resets / N)."""
        return self.tracker.total_resets / self.config.n_nodes

    def time_offsets(self) -> list[tuple[float, int, float]]:
        """(time, node, offset-within-round) for every recorded transmission.

        The offset is the transmission time mod ``Tp + Tc``, exactly
        the y-axis of the paper's Figure 4.  Requires
        ``record_transmissions=True``.
        """
        if not self.config.record_transmissions:
            raise RuntimeError("run was not configured with record_transmissions=True")
        period = self.config.timer.mean_interval + self.config.tc
        return [(t, node, t % period) for t, node in self.transmissions]
