"""A second, independent implementation of the Periodic Messages model.

The discrete-event implementation in :mod:`repro.core.model` schedules
timer expiries, message arrivals, and busy-period ends as individual
events.  But for the pure periodic model (no triggered updates, zero
notification delay) the dynamics collapse to a single rule: sort the
pending timer expiries; the earliest one opens a *cascade* whose busy
window starts at ``e1 + Tc`` and grows by ``Tc`` for every further
expiry that falls inside it; everyone in the cascade resets together
when the window closes.

:class:`CascadeModel` simulates exactly that rule with a heap of
pending expiries — no event queue, no per-message bookkeeping.  Run
with the same seed, it consumes each router's random stream in the
same per-router order as the DES and therefore reproduces the DES
trajectory *bit for bit* (verified in
``tests/test_core_fastsim.py``), making it both a fast engine for
large ensembles and an executable proof that the DES implements the
model it claims to.
"""

from __future__ import annotations

import heapq
from typing import Literal, Sequence

from ..rng import RandomSource
from .clusters import ClusterTracker
from .parameters import RouterTimingParameters

__all__ = ["CascadeModel"]

InitialPhases = Literal["unsynchronized", "synchronized"] | Sequence[float]


class CascadeModel:
    """Cascade-rule simulation of the Periodic Messages model.

    Parameters
    ----------
    params:
        The (N, Tp, Tc, Tr) tuple.
    seed:
        Master seed; the per-router stream derivation matches
        :class:`~repro.core.model.PeriodicMessagesModel` exactly.
    initial_phases:
        As in the DES model: "unsynchronized" (uniform on [0, Tp]),
        "synchronized" (all zero), or explicit phases.
    keep_cluster_history:
        Forwarded to the tracker.
    probe:
        Optional :class:`~repro.obs.probes.SimulationProbe`.  Gets the
        tracker's reset/group stream plus ``on_cascade`` with the
        exact expiry times of every cascade (the source of per-node
        busy time).  Observational only: the probe never touches the
        RNG streams or the heap, so probed and unprobed runs are
        byte-identical.
    topology:
        Optional :class:`~repro.topo.TopologySpec` (or its canonical
        string form) restricting which routers hear which resets.
        ``None`` and any coupling whose generated graph is complete
        (``"clique"``, a 3-ring, ``erdos_renyi`` with p=1, ...) run
        the original fully-coupled loop byte for byte; everything
        else runs the generalized multi-cascade kernel
        (:func:`repro.topo.advance_coupled`).  Stream derivation and
        phase draws are identical either way.
    """

    def __init__(
        self,
        params: RouterTimingParameters,
        seed: int = 1,
        initial_phases: InitialPhases = "unsynchronized",
        keep_cluster_history: bool = False,
        probe=None,
        topology=None,
    ) -> None:
        self.params = params
        self.probe = probe
        n = params.n_nodes
        self.topology = None
        self._coupling = None
        if topology is not None:
            from ..topo import Coupling, ensure_spec

            self.topology = ensure_spec(topology)
            coupling = Coupling(self.topology, n)
            if not coupling.is_complete:
                self._coupling = coupling
        self.tracker = ClusterTracker(n, keep_history=keep_cluster_history, probe=probe)
        master = RandomSource(seed=seed)
        self._rngs = [master.spawn(i) for i in range(n)]
        phase_rng = master.spawn(n + 1)
        if initial_phases == "unsynchronized":
            phases = [phase_rng.uniform(0.0, params.tp) for _ in range(n)]
        elif initial_phases == "synchronized":
            phases = [0.0] * n
        else:
            phases = [float(p) for p in initial_phases]
            if len(phases) != n:
                raise ValueError(f"expected {n} phases, got {len(phases)}")
            if any(p < 0 for p in phases):
                raise ValueError("initial phases must be non-negative")
        # Heap of (expiry_time, node). Ties break on node id, which
        # matches the DES's FIFO tie-break for the initial schedule.
        self._heap: list[tuple[float, int]] = sorted(
            (phase, node) for node, phase in enumerate(phases)
        )
        heapq.heapify(self._heap)
        self.now = 0.0
        self.total_cascades = 0

    def run(
        self,
        until: float,
        stop_on_full_sync: bool = False,
        stop_on_full_unsync: bool = False,
    ) -> float:
        """Advance cascades until the horizon or a stop condition."""
        params = self.params
        tc = params.tc
        heap = self._heap
        tracker = self.tracker
        if self._coupling is not None:
            from ..topo import advance_coupled

            low = params.tp - params.tr
            high = params.tp + params.tr
            rngs = self._rngs

            def draw(node: int) -> float:
                return rngs[node].uniform(low, high)

            stop_time, closed, stopped = advance_coupled(
                heap,
                self._coupling,
                tracker,
                draw,
                tc,
                until,
                stop_on_full_sync=stop_on_full_sync,
                stop_on_full_unsync=stop_on_full_unsync,
                probe=self.probe,
            )
            self.total_cascades += closed
            self.now = stop_time if stopped else max(self.now, until)
            return self.now
        while heap and heap[0][0] <= until:
            popped = [heapq.heappop(heap)]
            window = popped[0][0] + tc
            while heap and heap[0][0] <= window:
                popped.append(heapq.heappop(heap))
                window += tc
            if window > until:
                # The cascade's busy period outlives the horizon: the
                # DES would not process these resets either.  Restore
                # the pending expiries and stop (a later run() call
                # with a larger horizon picks up exactly here).
                for entry in popped:
                    heapq.heappush(heap, entry)
                self.now = until
                tracker.finish()
                return self.now
            group = [node for _expiry, node in popped]
            self.total_cascades += 1
            self.now = window
            if self.probe is not None:
                self.probe.on_cascade(window, popped)
            for node in group:
                tracker.record_reset(window, node)
            for node in group:
                interval = self._rngs[node].uniform(
                    params.tp - params.tr, params.tp + params.tr
                )
                heapq.heappush(heap, (window + interval, node))
            if stop_on_full_sync and tracker.is_fully_synchronized():
                tracker.finish()
                return self.now
            if stop_on_full_unsync and tracker.is_fully_unsynchronized():
                tracker.finish()
                return self.now
        self.now = max(self.now, until)
        tracker.finish()
        return self.now

    @property
    def synchronization_time(self) -> float | None:
        """First time all N routers reset together."""
        return self.tracker.synchronization_time

    @property
    def breakup_time(self) -> float | None:
        """First time a full window of lone resets occurred."""
        return self.tracker.breakup_time
