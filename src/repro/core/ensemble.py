"""Multi-seed ensembles of the Periodic Messages model.

The paper's Figures 10 and 11 average twenty simulations; its Figure
12 marks single runs.  This module packages that workflow: run one
configuration over many seeds, collect first-passage times (to
synchronization, to break-up, or to arbitrary cluster sizes), and
summarize them honestly — runs that never reach the target within the
horizon are reported as censored rather than silently dropped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal, Sequence

from .parameters import RouterTimingParameters

__all__ = ["EnsembleResult", "FirstPassageEnsemble"]


@dataclass(frozen=True)
class EnsembleResult:
    """Aggregate of one first-passage quantity across seeds.

    Attributes
    ----------
    times:
        The observed first-passage times, one per completed run.
    censored:
        Number of runs in which the event did not occur within the
        horizon (their true times exceed it).
    horizon:
        The common simulation horizon.
    """

    times: tuple[float, ...]
    censored: int
    horizon: float

    @property
    def runs(self) -> int:
        """Total runs, completed plus censored."""
        return len(self.times) + self.censored

    @property
    def completion_rate(self) -> float:
        """Fraction of runs in which the event occurred."""
        return len(self.times) / self.runs if self.runs else 0.0

    @property
    def mean(self) -> float:
        """Mean over completed runs (NaN when none completed)."""
        if not self.times:
            return math.nan
        return sum(self.times) / len(self.times)

    @property
    def mean_lower_bound(self) -> float:
        """A censoring-aware lower bound on the true mean.

        Counts every censored run at the horizon — the smallest value
        its unobserved time could have.
        """
        if not self.runs:
            return math.nan
        total = sum(self.times) + self.censored * self.horizon
        return total / self.runs

    def half_width(self) -> float:
        """Normal-approximation 95% half-width over completed runs."""
        n = len(self.times)
        if n < 2:
            return math.nan
        mean = self.mean
        var = sum((t - mean) ** 2 for t in self.times) / (n - 1)
        return 1.96 * math.sqrt(var / n)


@dataclass
class FirstPassageEnsemble:
    """Runs one configuration over many seeds.

    Parameters
    ----------
    params:
        Timing parameters for every run.
    horizon:
        Per-run simulation horizon in seconds.
    seeds:
        The seeds; one independent model per seed.
    direction:
        ``"up"`` — start unsynchronized, record times to reach each
        cluster size (Figure 10); ``"down"`` — start synchronized,
        record times for the per-round largest cluster to fall to each
        size (Figure 11).
    engine:
        ``"cascade"`` (default, ~8x faster; bit-for-bit equivalent to
        the DES for the pure periodic model), ``"batch"`` (the
        struct-of-arrays kernel: same trajectories bit for bit, seeds
        sharing a parameter point advance through one kernel per
        worker), or ``"des"`` — the escape hatch for configurations
        the cascade rule cannot express.
    jobs:
        Worker processes for the runs; ``1`` executes in-process.
    cache:
        Optional :class:`~repro.parallel.ResultCache`; completed seeds
        are never recomputed.
    checkpoint:
        Resume support: ``True`` journals completed seeds under
        ``results/checkpoints/`` (content-addressed run id) so a
        killed ensemble resumes where it stopped; also accepts an
        explicit path or :class:`~repro.parallel.CheckpointJournal`.
        The journal is deleted once the ensemble completes cleanly.
    on_error:
        ``"raise"`` (default) surfaces the first seed failure after
        completed seeds are committed; ``"censor"`` degrades failed
        seeds to censored observations so partial results are
        harvestable (inspect :attr:`report` for which).
    timeout, retries:
        Per-seed deadline (seconds) and retry budget, passed to the
        :class:`~repro.parallel.ParallelRunner`.
    topology:
        Coupling graph for every run (grammar of
        :func:`repro.topo.parse_topology`); the default clique is the
        paper's fully-coupled model and keeps historical cache keys.
    """

    params: RouterTimingParameters
    horizon: float
    seeds: Sequence[int] = tuple(range(1, 21))
    direction: Literal["up", "down"] = "up"
    engine: str = "cascade"
    jobs: int = 1
    cache: object | None = None
    checkpoint: object | None = None
    on_error: Literal["raise", "censor"] = "raise"
    timeout: float | None = None
    retries: int = 1
    topology: str = "clique"
    report: object | None = field(default=None, init=False)
    _passages: list[dict[int, float]] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        from .engines import resolve_engine

        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.direction not in ("up", "down"):
            raise ValueError(f"unknown direction {self.direction!r}")
        resolve_engine(self.engine)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")

    def run(self) -> "FirstPassageEnsemble":
        """Execute every run (idempotent: re-running clears old data)."""
        from ..obs import obs
        from ..parallel import ParallelRunner, SimulationJob, resolve_checkpoint

        specs = [
            SimulationJob.from_params(
                self.params,
                seed=seed,
                horizon=self.horizon,
                direction=self.direction,
                engine=self.engine,
                topology=self.topology,
            )
            for seed in self.seeds
        ]
        journal = resolve_checkpoint(self.checkpoint, specs)
        runner = ParallelRunner(
            jobs=self.jobs,
            cache=self.cache,
            checkpoint=journal,
            on_error=self.on_error,
            timeout=self.timeout,
            retries=self.retries,
        )
        try:
            with obs().span(
                "ensemble.run",
                n_nodes=self.params.n_nodes,
                seeds=len(list(self.seeds)),
                direction=self.direction,
                engine=self.engine,
                jobs=self.jobs,
            ):
                self._passages = [
                    dict(result.first_passages) for result in runner.run(specs)
                ]
        finally:
            self.report = runner.report
            if journal is not None:
                # A clean, complete batch needs no resume marker; any
                # censored/failed seed keeps the journal for a retry.
                if runner.report.fully_accounted(len(specs)) and (
                    runner.report.incomplete == 0
                ):
                    journal.complete()
                else:
                    journal.close()
        return self

    def result_for(self, size: int) -> EnsembleResult:
        """Aggregate first-passage times to one cluster size."""
        if not self._passages:
            raise RuntimeError("call run() first")
        if not 1 <= size <= self.params.n_nodes:
            raise ValueError(f"size must be in [1, {self.params.n_nodes}]")
        times = [fp[size] for fp in self._passages if size in fp]
        censored = len(self._passages) - len(times)
        return EnsembleResult(tuple(times), censored, self.horizon)

    def curve(self) -> list[tuple[int, EnsembleResult]]:
        """(size, aggregate) for every cluster size — a Figure 10/11 curve."""
        return [
            (size, self.result_for(size))
            for size in range(1, self.params.n_nodes + 1)
        ]

    def terminal_result(self) -> EnsembleResult:
        """The headline quantity: full sync (up) or full break-up (down)."""
        target = self.params.n_nodes if self.direction == "up" else 1
        return self.result_for(target)
