"""Routing-timer policies.

The interval a router waits between resetting its timer and the timer
next expiring is the system's only source of randomness, and its
magnitude decides whether the network synchronizes.  Section 6 of the
paper surveys the candidate policies; each is available here as a
:class:`TimerPolicy` so the simulation experiments can compare them.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from ..rng import RandomSource

__all__ = [
    "TimerPolicy",
    "UniformJitterTimer",
    "FixedTimer",
    "RecommendedJitterTimer",
    "DistinctPeriodTimer",
    "make_paper_timer",
]


class TimerPolicy(Protocol):
    """Draws the next timer interval for a router."""

    def interval(self, rng: RandomSource, node_id: int) -> float:
        """Return the seconds until the timer next expires.

        Parameters
        ----------
        rng:
            The router's private random stream.
        node_id:
            Identity of the drawing router (used by per-router
            policies such as :class:`DistinctPeriodTimer`).
        """
        ...

    @property
    def mean_interval(self) -> float:
        """Expected interval, used for round-length bookkeeping."""
        ...


class UniformJitterTimer:
    """The paper's timer: uniform on ``[Tp - Tr, Tp + Tr]``.

    ``Tr = 0`` degenerates to a fixed timer; ``Tr = Tp/2`` is the
    paper's recommended strong randomization.
    """

    def __init__(self, tp: float, tr: float) -> None:
        if tp <= 0:
            raise ValueError("Tp must be positive")
        if not 0 <= tr <= tp:
            raise ValueError(f"Tr must be in [0, Tp], got Tr={tr}, Tp={tp}")
        self.tp = tp
        self.tr = tr

    def interval(self, rng: RandomSource, node_id: int) -> float:
        return rng.uniform(self.tp - self.tr, self.tp + self.tr)

    @property
    def mean_interval(self) -> float:
        return self.tp

    def __repr__(self) -> str:  # pragma: no cover
        return f"UniformJitterTimer(tp={self.tp}, tr={self.tr})"


class FixedTimer(UniformJitterTimer):
    """A deterministic timer (``Tr = 0``).

    With no noise at all, clusters can neither form from an
    unsynchronized start (offsets never move) nor break up from a
    synchronized one — the degenerate limit of the model.
    """

    def __init__(self, tp: float) -> None:
        super().__init__(tp, 0.0)


class RecommendedJitterTimer(UniformJitterTimer):
    """The paper's closing recommendation: uniform on ``[0.5 Tp, 1.5 Tp]``.

    "Setting the timer each round to a time from the uniform
    distribution on the interval [0.5 Tp, 1.5 Tp] seconds would be a
    simple way to avoid synchronized routing messages."
    """

    def __init__(self, tp: float) -> None:
        super().__init__(tp, 0.5 * tp)


class DistinctPeriodTimer:
    """Per-router fixed periods (an administrator-assigned alternative).

    Section 6 mentions setting "the routing update interval at each
    router to a different random value" for small networks.  Each
    router ``k`` uses the fixed period ``periods[k]``; there is no
    per-round randomness.
    """

    def __init__(self, periods: Sequence[float]) -> None:
        if not periods:
            raise ValueError("need at least one period")
        if any(p <= 0 for p in periods):
            raise ValueError("all periods must be positive")
        self.periods = tuple(float(p) for p in periods)

    @classmethod
    def evenly_spread(cls, tp: float, n_nodes: int, spread: float = 0.1) -> "DistinctPeriodTimer":
        """Periods spread evenly over ``[Tp(1-spread), Tp(1+spread)]``."""
        if n_nodes == 1:
            return cls([tp])
        step = 2 * spread * tp / (n_nodes - 1)
        return cls([tp * (1 - spread) + k * step for k in range(n_nodes)])

    def interval(self, rng: RandomSource, node_id: int) -> float:
        return self.periods[node_id % len(self.periods)]

    @property
    def mean_interval(self) -> float:
        return sum(self.periods) / len(self.periods)

    def __repr__(self) -> str:  # pragma: no cover
        return f"DistinctPeriodTimer(n={len(self.periods)})"


def make_paper_timer(tp: float, tr: float) -> UniformJitterTimer:
    """The timer used throughout the paper's simulations."""
    return UniformJitterTimer(tp, tr)
