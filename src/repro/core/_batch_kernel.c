/* C translation of repro.core._batch_kernel.advance_member.
 *
 * Line-for-line port of the packed scalar cascade kernel; see the
 * Python module for the state layout and the resumability contract.
 * Built by _batch_kernel._build_clib() with -ffp-contract=off
 * -fno-fast-math: every float operation must round exactly like the
 * interpreted backends (no fused multiply-adds, no reassociation).
 * Lehmer arithmetic stays in int64 (products < 2^46 here).
 */

#include <math.h>
#include <stdint.h>

#define MOD 2147483647LL
#define MUL 16807LL

#define I_OPEN_SIZE 0
#define I_WINDOW_RESETS 1
#define I_WMAX 2
#define I_FTAL_MAX 3
#define I_FTAM_MIN 4
#define I_ROUND_FILL 5
#define I_ROUND_MAX 6
#define I_TOTAL_RESETS 7
#define I_TOTAL_CASCADES 8

#define STATUS_HORIZON 0
#define STATUS_STOPPED 1
#define STATUS_ROUNDS_FULL 2
#define STATUS_GROUPS_FULL 3

int64_t repro_advance_member(
    double *expiry,
    int64_t *rng,
    int64_t n,
    double tc,
    double low,
    double span,
    double tol,
    double until,
    int64_t stop_sync,
    int64_t stop_unsync,
    int64_t keep_history,
    double *fstate,
    int64_t *istate,
    int64_t *win_sizes,
    int64_t *win_cnts,
    int64_t *win_meta,
    double *ftal,
    double *ftam,
    double *round_times,
    int64_t *round_largest,
    int64_t *round_meta,
    int64_t rt_cap,
    double *group_times,
    int64_t *group_sizes,
    int64_t *group_meta,
    int64_t gt_cap,
    int64_t *idx_scratch,
    double *time_scratch)
{
    const int64_t cap = n + 1;

    double now = fstate[0];
    double open_time = fstate[1];
    int64_t open_size = istate[I_OPEN_SIZE];
    int64_t wres = istate[I_WINDOW_RESETS];
    int64_t wmax = istate[I_WMAX];
    int64_t ftal_max = istate[I_FTAL_MAX];
    int64_t ftam_min = istate[I_FTAM_MIN];
    int64_t rfill = istate[I_ROUND_FILL];
    int64_t rmax = istate[I_ROUND_MAX];
    int64_t head = win_meta[0];
    int64_t count = win_meta[1];

    int64_t status = -1;
    while (1) {
        /* Headroom reservation: one round slot, two group slots. */
        if (round_meta[0] + 1 > rt_cap) {
            status = STATUS_ROUNDS_FULL;
            break;
        }
        if (keep_history != 0 && group_meta[0] + 2 > gt_cap) {
            status = STATUS_GROUPS_FULL;
            break;
        }

        /* First minimum in node order == heap (time, node) order. */
        double e1 = expiry[0];
        int64_t i1 = 0;
        for (int64_t i = 1; i < n; i++) {
            if (expiry[i] < e1) {
                e1 = expiry[i];
                i1 = i;
            }
        }
        if (e1 > until) {
            if (now < until) {
                now = until;
            }
            status = STATUS_HORIZON;
            break;
        }

        expiry[i1] = INFINITY;
        idx_scratch[0] = i1;
        time_scratch[0] = e1;
        int64_t g = 1;
        double window = e1 + tc;
        while (1) {
            double e = expiry[0];
            int64_t ii = 0;
            for (int64_t i = 1; i < n; i++) {
                if (expiry[i] < e) {
                    e = expiry[i];
                    ii = i;
                }
            }
            if (e > window) {
                break;
            }
            expiry[ii] = INFINITY;
            idx_scratch[g] = ii;
            time_scratch[g] = e;
            g += 1;
            window += tc;
        }
        if (window > until) {
            /* Busy period outlives the horizon: restore and stop. */
            for (int64_t j = 0; j < g; j++) {
                expiry[idx_scratch[j]] = time_scratch[j];
            }
            now = until;
            status = STATUS_HORIZON;
            break;
        }

        istate[I_TOTAL_CASCADES] += 1;
        now = window;
        double t = window;

        /* Fused tracker: record_reset x g at time t. */
        int64_t s;
        int64_t li;
        if (open_time == open_time && fabs(t - open_time) <= tol) {
            s = open_size;
            li = head + count - 1;
            if (li >= cap) {
                li -= cap;
            }
        } else {
            if (open_time == open_time) {
                if (keep_history != 0) {
                    int64_t gi = group_meta[0];
                    group_times[gi] = open_time;
                    group_sizes[gi] = open_size;
                    group_meta[0] = gi + 1;
                }
            }
            li = head + count;
            if (li >= cap) {
                li -= cap;
            }
            win_sizes[li] = 0;
            win_cnts[li] = 0;
            count += 1;
            s = 0;
        }
        for (int64_t k = 0; k < g; k++) {
            s += 1;
            win_sizes[li] = s;
            win_cnts[li] += 1;
            wres += 1;
            if (s > wmax) {
                wmax = s;
            }
            while (wres > n) {
                win_cnts[head] -= 1;
                wres -= 1;
                if (win_cnts[head] == 0) {
                    int64_t esize = win_sizes[head];
                    head += 1;
                    if (head >= cap) {
                        head -= cap;
                    }
                    count -= 1;
                    if (esize >= wmax && wmax > 1) {
                        wmax = 1;
                        int64_t q = head;
                        for (int64_t w = 0; w < count; w++) {
                            if (win_sizes[q] > wmax) {
                                wmax = win_sizes[q];
                            }
                            q += 1;
                            if (q >= cap) {
                                q -= cap;
                            }
                        }
                    }
                }
            }
            if (s > ftal_max) {
                ftal[s] = t;
                ftal_max = s;
            }
            if (wres >= n && wmax < ftam_min) {
                for (int64_t v = wmax; v < ftam_min; v++) {
                    ftam[v] = t;
                }
                ftam_min = wmax;
            }
            rfill += 1;
            if (s > rmax) {
                rmax = s;
            }
            if (rfill >= n) {
                int64_t ri = round_meta[0];
                round_times[ri] = t;
                round_largest[ri] = rmax;
                round_meta[0] = ri + 1;
                rfill = 0;
                rmax = 0;
            }
        }
        open_time = t;
        open_size = s;
        istate[I_TOTAL_RESETS] += g;

        /* Redraw, in pop order. */
        for (int64_t j = 0; j < g; j++) {
            int64_t i = idx_scratch[j];
            int64_t state = (MUL * rng[i]) % MOD;
            rng[i] = state;
            expiry[i] = window + (low + span * ((double)state / (double)MOD));
        }

        if (stop_sync != 0 && (s >= n || (wres >= n && wmax >= n))) {
            status = STATUS_STOPPED;
            break;
        }
        if (stop_unsync != 0 && wres >= n && wmax <= 1) {
            status = STATUS_STOPPED;
            break;
        }
    }

    if (status == STATUS_HORIZON || status == STATUS_STOPPED) {
        /* ClusterTracker.finish(): close the trailing open group. */
        if (open_time == open_time) {
            if (keep_history != 0) {
                int64_t gi = group_meta[0];
                group_times[gi] = open_time;
                group_sizes[gi] = open_size;
                group_meta[0] = gi + 1;
            }
            open_time = NAN;
            open_size = 0;
        }
    }

    fstate[0] = now;
    fstate[1] = open_time;
    istate[I_OPEN_SIZE] = open_size;
    istate[I_WINDOW_RESETS] = wres;
    istate[I_WMAX] = wmax;
    istate[I_FTAL_MAX] = ftal_max;
    istate[I_FTAM_MIN] = ftam_min;
    istate[I_ROUND_FILL] = rfill;
    istate[I_ROUND_MAX] = rmax;
    win_meta[0] = head;
    win_meta[1] = count;
    return status;
}
