"""Checkpoint journals: crash-safe resume for long runs.

A :class:`CheckpointJournal` is an append-only JSONL file under
``results/checkpoints/<run-id>.jsonl`` recording every completed job
of a batch as ``{key, job, result, model_version}``.  A run killed
mid-way (SIGINT, OOM, power loss) leaves a journal whose prefix is
every job that finished; re-running the same batch against the same
journal serves those jobs back without re-execution and continues
exactly where the run stopped.  On a fully successful run the caller
deletes the journal via :meth:`complete` — a leftover journal *means*
an interrupted run.

Safety properties:

* **Content-addressed** — the run id derives from the job specs (or a
  caller-supplied descriptor), and each entry is keyed by the job's
  ``cache_key`` which folds in ``MODEL_VERSION``.  A journal can only
  ever resume the exact batch that wrote it; anything else misses.
* **Kill-tolerant** — a process death mid-append leaves at most one
  torn final line, which :meth:`load` skips; every earlier entry is
  intact because records are flushed and fsynced as they are written.
* **Science-preserving** — entries store the same canonical
  :class:`~repro.parallel.job.JobResult` serialization the cache
  uses, so a resumed run is byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import IO, Sequence

from ..obs import obs
from ..obs.clock import wall_time
from .job import MODEL_VERSION, JobResult, SimulationJob

__all__ = ["DEFAULT_CHECKPOINT_DIR", "CheckpointJournal", "resolve_checkpoint"]

#: Default journal location, relative to the working directory.
DEFAULT_CHECKPOINT_DIR = Path("results") / "checkpoints"


class CheckpointJournal:
    """Append-only completed-job journal for one batch of jobs.

    Parameters
    ----------
    path:
        The journal file.  Created lazily on the first :meth:`record`;
        an existing file is loaded lazily on the first :meth:`lookup`.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._index: dict[str, JobResult] | None = None
        self._handle: IO[str] | None = None
        self.recorded = 0
        self.skipped_lines = 0
        self._newest_ts: float | None = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def for_specs(
        cls,
        specs: Sequence[SimulationJob],
        root: str | os.PathLike | None = None,
    ) -> "CheckpointJournal":
        """Journal whose run id is the content hash of the batch.

        The same batch (in any order) always maps to the same journal
        file, so "resume" needs no bookkeeping beyond re-running the
        same command.
        """
        digest = hashlib.sha256(
            "\n".join(sorted(spec.cache_key() for spec in specs)).encode("ascii")
        ).hexdigest()
        return cls._at(digest[:16], root)

    @classmethod
    def for_key(
        cls, descriptor: str, root: str | os.PathLike | None = None
    ) -> "CheckpointJournal":
        """Journal for an adaptive batch (e.g. bisection) whose job
        set is unknown upfront; ``descriptor`` should canonically
        encode everything that determines the run."""
        digest = hashlib.sha256(descriptor.encode("utf-8")).hexdigest()
        return cls._at(digest[:16], root)

    @classmethod
    def _at(cls, run_id: str, root: str | os.PathLike | None) -> "CheckpointJournal":
        directory = Path(root) if root is not None else DEFAULT_CHECKPOINT_DIR
        return cls(directory / f"{run_id}.jsonl")

    @property
    def run_id(self) -> str:
        return self.path.stem

    # -- read side -----------------------------------------------------------

    def _load(self) -> dict[str, JobResult]:
        if self._index is not None:
            return self._index
        index: dict[str, JobResult] = {}
        try:
            text = self.path.read_text()
        except OSError:
            text = ""
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                if entry.get("model_version") != MODEL_VERSION:
                    raise ValueError("model version mismatch")
                key = entry["key"]
                result = JobResult.from_dict(entry["result"])
            except (ValueError, KeyError, TypeError):
                # Torn final line from a kill mid-append, or an entry
                # from an older model version: unusable, skip it.
                self.skipped_lines += 1
                continue
            index[key] = result
            ts = entry.get("ts")
            if isinstance(ts, (int, float)) and (
                self._newest_ts is None or ts > self._newest_ts
            ):
                self._newest_ts = float(ts)
        self._index = index
        return index

    def lookup(self, job: SimulationJob) -> JobResult | None:
        """The journaled result for this job, or None."""
        return self._load().get(job.cache_key())

    def staleness(self) -> float | None:
        """Seconds since the newest journal entry was written, or None.

        Entries carry the wall-clock time they were appended (since
        the ``ts`` field was introduced; older journals without it
        report None), so a resumed run can say *how old* the work it
        is picking up is.  Purely informational — resume correctness
        rests on content-addressing, never on timestamps.
        """
        self._load()
        if self._newest_ts is None:
            return None
        return max(0.0, wall_time() - self._newest_ts)

    def __len__(self) -> int:
        return len(self._load())

    def exists(self) -> bool:
        return self.path.is_file()

    # -- write side ----------------------------------------------------------

    def record(self, job: SimulationJob, result: JobResult) -> None:
        """Append one completed job (idempotent per key), durably.

        Each line carries the wall-clock time it was appended so a
        later ``--resume`` can report how stale the journal is (see
        :meth:`staleness`); resume matching itself never reads it.
        """
        index = self._load()
        key = job.cache_key()
        if key in index:
            return
        with obs().span("checkpoint.write", key=key[:12]):
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a")
            now = wall_time()
            entry = {
                "key": key,
                "model_version": MODEL_VERSION,
                "ts": now,
                "job": job.to_dict(),
                "result": result.to_dict(),
            }
            self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        index[key] = result
        if self._newest_ts is None or now > self._newest_ts:
            self._newest_ts = now
        self.recorded += 1
        obs().metrics.counter("checkpoint.records").inc()

    def close(self) -> None:
        """Close the append handle (the journal file stays on disk)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def complete(self) -> None:
        """The batch finished: delete the journal.

        Only call on full success — a surviving journal is the marker
        that a run was interrupted and is resumable.
        """
        self.close()
        self.path.unlink(missing_ok=True)
        self._index = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CheckpointJournal(path={str(self.path)!r}, "
            f"entries={len(self)}, recorded={self.recorded})"
        )


def resolve_checkpoint(
    checkpoint, specs: Sequence[SimulationJob]
) -> CheckpointJournal | None:
    """Normalize the user-facing ``checkpoint=`` argument.

    ``None``/``False`` — no journaling.  ``True`` — derive the journal
    from the batch content under :data:`DEFAULT_CHECKPOINT_DIR`.  A
    path — journal at exactly that file.  A journal — use as given.
    """
    if checkpoint is None or checkpoint is False:
        return None
    if checkpoint is True:
        journal = CheckpointJournal.for_specs(specs)
    elif isinstance(checkpoint, CheckpointJournal):
        journal = checkpoint
    else:
        journal = CheckpointJournal(checkpoint)
    if journal.exists() and len(journal):
        stale = journal.staleness()
        obs().emit(
            "checkpoint.resume",
            f"resuming run {journal.run_id}: {len(journal)} completed "
            "job(s) on record"
            + (f", newest {stale:.0f}s old" if stale is not None else ""),
            run_id=journal.run_id,
            entries=len(journal),
            staleness_seconds=stale,
        )
    return journal
