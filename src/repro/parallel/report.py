"""Structured per-job accounting for a :class:`ParallelRunner` run.

A :class:`RunReport` answers, for every submitted job, exactly one of:
it was served from the checkpoint journal (``resumed``), served from
the result cache (``cache_hit``), executed first try (``ok``),
executed after at least one retry (``retried``), exhausted its
deadline budget (``timed_out``), or exhausted its retry budget
(``failed``).  The invariant — every submitted job accounted for
exactly once — is what lets an ensemble trust that censoring under
``on_error="censor"`` reflects real failures rather than silent data
loss, and it is asserted throughout the fault-injection suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OUTCOMES", "JobRecord", "RunReport"]

#: Every outcome a job can end a run with.  ``ok``/``retried`` mean a
#: fresh execution succeeded; ``cache_hit``/``resumed`` mean no
#: execution was needed; ``timed_out``/``failed`` mean the job did not
#: produce a result (censored or raised, per the runner's policy).
OUTCOMES = ("ok", "retried", "cache_hit", "resumed", "timed_out", "failed")


@dataclass(frozen=True)
class JobRecord:
    """How one job ended: outcome, attempts consumed, last error."""

    index: int
    key: str
    outcome: str
    attempts: int = 1
    error: str | None = None

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ValueError(
                f"unknown outcome {self.outcome!r}; known: {', '.join(OUTCOMES)}"
            )


@dataclass
class RunReport:
    """Per-job outcome ledger of one ``ParallelRunner.run`` call."""

    records: list[JobRecord] = field(default_factory=list)

    def add(
        self,
        index: int,
        key: str,
        outcome: str,
        attempts: int = 1,
        error: str | None = None,
    ) -> None:
        self.records.append(JobRecord(index, key, outcome, attempts, error))

    def count(self, outcome: str) -> int:
        """Jobs that ended with the given outcome."""
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}")
        return sum(1 for record in self.records if record.outcome == outcome)

    def counts(self) -> dict[str, int]:
        """``{outcome: count}`` over every category (zeros included)."""
        return {outcome: self.count(outcome) for outcome in OUTCOMES}

    def records_for(self, outcome: str) -> list[JobRecord]:
        return [record for record in self.records if record.outcome == outcome]

    @property
    def submitted(self) -> int:
        return len(self.records)

    @property
    def incomplete(self) -> int:
        """Jobs that produced no result (timed out or failed)."""
        return self.count("timed_out") + self.count("failed")

    @property
    def executed_fresh(self) -> int:
        """Jobs that actually ran to completion this call."""
        return self.count("ok") + self.count("retried")

    def fully_accounted(self, submitted: int) -> bool:
        """Every index ``0..submitted-1`` appears exactly once."""
        return sorted(record.index for record in self.records) == list(
            range(submitted)
        )

    def summary(self) -> str:
        """One line for logs: ``ok=18 retried=2 … failed=0``."""
        return " ".join(f"{k}={v}" for k, v in self.counts().items())
