"""The parallel-layer performance snapshot (``python -m repro bench``).

Runs one fixed workload — the 20-seed Figure 10 first-passage ensemble
(N=20, Tp=121 s, Tc=0.11 s, Tr=0.1 s) — through four configurations:

* ``des_jobs1``      — the seed implementation's path: DES engine, serial.
* ``cascade_jobs1``  — the cascade engine, serial (the new default).
* ``cascade_jobsN``  — the cascade engine over the process pool.
* ``cascade_warm``   — the pooled run repeated against a warm cache.

All four must produce identical first-passage times (checked here, on
every bench run), so the table is a pure wall-clock comparison.  The
snapshot is written as JSON — ``BENCH_parallel.json`` at the repo root
by convention — so perf regressions are diffable across commits.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Sequence

from ..benchio import bench_envelope, write_bench_json
from .cache import ResultCache
from .job import SimulationJob
from .runner import ParallelRunner

__all__ = ["BENCH_PARAMS", "format_table", "run_benchmark"]

#: The Figure 10 parameter point (see experiments/fig10.py).
BENCH_PARAMS = {"n_nodes": 20, "tp": 121.0, "tc": 0.11, "tr": 0.1}

#: Default horizon: long enough that most of the 20 seeds reach full
#: synchronization (mean sync time is ~2e5 s at Tr = 0.1), short
#: enough that the DES baseline finishes in seconds.
DEFAULT_HORIZON = 2e5


def _specs(
    horizon: float, seeds: Sequence[int], engine: str
) -> list[SimulationJob]:
    return [
        SimulationJob(
            seed=seed, horizon=horizon, direction="up", engine=engine, **BENCH_PARAMS
        )
        for seed in seeds
    ]


def _timed(runner: ParallelRunner, specs: list[SimulationJob]):
    start = time.perf_counter()
    results = runner.run(specs)
    return time.perf_counter() - start, results


def run_benchmark(
    jobs: int | None = None,
    horizon: float = DEFAULT_HORIZON,
    seeds: Sequence[int] = tuple(range(1, 21)),
    cache_root: str | os.PathLike | None = None,
    output: str | os.PathLike | None = None,
) -> dict:
    """Run the four configurations and return (optionally write) the snapshot.

    Parameters
    ----------
    jobs:
        Pool width for the parallel rows; defaults to the CPU count.
    horizon, seeds:
        The ensemble's run settings (defaults reproduce the canonical
        snapshot: 20 seeds, 2e5 s).
    cache_root:
        Directory for the warm-cache row.  Defaults to a throwaway
        subdirectory of ``results/cache/`` — pass an explicit path in
        tests.
    output:
        If given, the snapshot JSON is written there.
    """
    jobs = jobs or os.cpu_count() or 1
    cache_root = Path(cache_root) if cache_root is not None else (
        Path("results") / "cache" / "bench"
    )

    timings: dict[str, float] = {}
    timings["des_jobs1"], des_results = _timed(
        ParallelRunner(jobs=1), _specs(horizon, seeds, "des")
    )
    timings["cascade_jobs1"], serial_results = _timed(
        ParallelRunner(jobs=1), _specs(horizon, seeds, "cascade")
    )
    cache = ResultCache(cache_root)
    cache.clear()
    pooled_runner = ParallelRunner(jobs=jobs, cache=cache)
    timings["cascade_jobsN"], pooled_results = _timed(
        pooled_runner, _specs(horizon, seeds, "cascade")
    )
    warm_runner = ParallelRunner(jobs=jobs, cache=cache)
    timings["cascade_warm"], warm_results = _timed(
        warm_runner, _specs(horizon, seeds, "cascade")
    )

    identical = (
        des_results == serial_results == pooled_results == warm_results
    )
    baseline = timings["des_jobs1"]
    payload = {
        "params": dict(BENCH_PARAMS),
        "horizon_seconds": horizon,
        "n_seeds": len(list(seeds)),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "timings_seconds": {name: round(t, 4) for name, t in timings.items()},
        "speedup_vs_seed": {
            name: round(baseline / t, 2) if t > 0 else float("inf")
            for name, t in timings.items()
        },
        "results_identical_across_configs": identical,
        "runs_synchronized": sum(
            1 for r in serial_results if BENCH_PARAMS["n_nodes"] in r.first_passages
        ),
        # Per-job outcome ledgers: the pooled row should be all ok (or
        # retried, on a flaky box), the warm row all cache hits — a
        # visible regression signal for the resilience layer.
        "run_report_pooled": pooled_runner.report.counts(),
        "run_report_warm": warm_runner.report.counts(),
        "cache_write_errors": cache.write_errors,
    }
    snapshot = bench_envelope("fig10_first_passage_ensemble", payload)
    if output is not None:
        write_bench_json(output, snapshot)
    return snapshot


def format_table(snapshot: dict) -> str:
    """Render a snapshot as the CLI's speedup table."""
    rows = [
        (
            "configuration",
            "wall-clock (s)",
            "speedup vs seed (DES, serial)",
        )
    ]
    labels = {
        "des_jobs1": "des engine, jobs=1 (seed impl.)",
        "cascade_jobs1": "cascade engine, jobs=1",
        "cascade_jobsN": f"cascade engine, jobs={snapshot['jobs']}",
        "cascade_warm": f"cascade, jobs={snapshot['jobs']}, warm cache",
    }
    for name, seconds in snapshot["timings_seconds"].items():
        rows.append(
            (
                labels.get(name, name),
                f"{seconds:.3f}",
                f"{snapshot['speedup_vs_seed'][name]:.2f}x",
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(3)]
    lines = [
        f"fig10 ensemble: {snapshot['n_seeds']} seeds, horizon "
        f"{snapshot['horizon_seconds']:g} s, {snapshot['cpu_count']} CPU(s)"
    ]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    lines.append(
        "results identical across configurations: "
        + ("yes" if snapshot["results_identical_across_configs"] else "NO")
    )
    return "\n".join(lines)
