"""Cross-process single-flight: on-disk claim records for job hashes.

The in-process :class:`~repro.serve.coalesce.Coalescer` guarantees
that N identical concurrent requests inside one server process cost
one computation.  The moment the service runs as a prefork fleet,
that guarantee needs a cross-process spelling: this module provides
it as *claim records* living next to the content-addressed
:class:`~repro.parallel.cache.ResultCache` the workers already share.

Protocol (one file per in-flight job hash, ``<key>.claim``)::

    free ──acquire──▶ claimed ──publish+release──▶ published (cache entry)
                        │  ▲
              claimant  │  │ stale takeover (rename wins exactly once)
              dies/hangs▼  │
                       stale

* **Acquire** is an atomic ``O_CREAT | O_EXCL`` create.  Exactly one
  process on the host can create the file, so exactly one claims the
  right to compute the job; everyone else becomes a *waiter*.
* **Claim records carry liveness**: the owner's pid and a heartbeat
  timestamp the owner refreshes while computing (a daemon thread,
  :meth:`Claim.keep_beating`).  A claim is *stale* when its owner pid
  is gone or its heartbeat is older than ``ttl`` — a crashed worker's
  claim becomes takeable the moment the crash is observable, and a
  wedged worker's claim expires on the heartbeat clock.
* **Takeover is race-free**: every claim-file mutation — the O_EXCL
  create together with its record write, the stale-takeover rename,
  gc's prune — runs under one advisory ``flock`` on ``<root>/.lock``,
  so judging a record stale and tombstoning it is atomic with respect
  to a rival's create: two waiters can never both win, and a waiter
  can never mistake a mid-create (still empty) record for a stale
  one.  The rename-to-tombstone itself (``os.replace`` succeeds for
  exactly one renamer; the others get ``FileNotFoundError`` and
  re-enter the acquire loop) stays as a second line of defense where
  ``fcntl`` is unavailable.
* **Waiters never block forever**: :meth:`ClaimRegistry.acquire`
  returns ``None`` only while a *live* claim exists; the serving
  layer polls ``cache → acquire`` under its request deadline, so a
  dead claimant is taken over and a hung one surfaces as a timeout.
* **Publishes are journaled** (``published.log``, one ``O_APPEND``
  line per executed job) so a chaos test can assert the
  exactly-one-execution-per-hash invariant across every worker by
  reading one file.

Leases, not locks: like any lease scheme, a claimant paused longer
than ``ttl`` between heartbeats can be taken over while still alive.
Both then publish byte-identical bytes (determinism makes the race
harmless to results); ``ttl`` just needs to comfortably exceed the
heartbeat interval (:meth:`Claim.keep_beating` defaults to
``ttl / 4``).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

# Claim heartbeats are durable wall-clock stamps read by *other*
# processes, so they come straight from the wall clock; this module is
# registered in lint_clocks' WALL_CLOCK_ALLOWLIST.
from time import time as _wall_time

from ..obs import obs

__all__ = ["Claim", "ClaimRegistry", "DEFAULT_CLAIM_TTL", "PUBLISH_LOG"]

#: Default lease length in seconds: a claim whose heartbeat is older
#: than this is stale even if its owner pid still exists.
DEFAULT_CLAIM_TTL = 10.0

#: Name of the append-only publish journal inside the registry root.
PUBLISH_LOG = "published.log"


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness of a pid on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


class Claim:
    """One held claim: the right to compute one job hash.

    Returned by :meth:`ClaimRegistry.acquire`; release it (or use it
    as a context manager) once the result is published to the cache.
    """

    def __init__(self, registry: "ClaimRegistry", key: str, path: Path) -> None:
        self.registry = registry
        self.key = key
        self.path = path
        self.pid = os.getpid()
        self.released = False
        self._beat_stop: threading.Event | None = None
        self._beat_thread: threading.Thread | None = None

    def beat(self) -> None:
        """Refresh the heartbeat stamp (atomic rewrite of the record)."""
        if self.released:
            return
        self.registry._write_record(self.path, self.key, heartbeat=_wall_time())

    def keep_beating(self, interval: float | None = None) -> None:
        """Refresh the heartbeat on a daemon thread until release.

        The interval defaults to a quarter of the registry TTL, so a
        healthy claimant can miss several beats before going stale.
        """
        if self._beat_thread is not None:
            return
        period = interval if interval is not None else self.registry.ttl / 4.0
        stop = threading.Event()

        def pulse() -> None:
            while not stop.wait(period):
                self.beat()

        self._beat_stop = stop
        self._beat_thread = threading.Thread(
            target=pulse, name=f"claim-beat-{self.key[:8]}", daemon=True
        )
        self._beat_thread.start()

    def release(self) -> None:
        """Drop the claim (idempotent).  Stops the heartbeat thread
        and unlinks the record; a takeover that already renamed the
        file away is fine (the unlink is best-effort)."""
        if self.released:
            return
        self.released = True
        if self._beat_stop is not None:
            self._beat_stop.set()
            if self._beat_thread is not None:
                self._beat_thread.join(timeout=5.0)
        try:
            self.path.unlink(missing_ok=True)
        except OSError:
            # A read-only or vanished directory: the record will age
            # out as stale; nothing else to do.
            pass  # lint: allow-swallow — staleness self-heals this
        self.registry.released += 1

    def __enter__(self) -> "Claim":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self.released else "held"
        return f"Claim({self.key[:12]}, pid={self.pid}, {state})"


class ClaimRegistry:
    """Directory of claim records, one per in-flight job hash.

    Parameters
    ----------
    root:
        Directory the records live in (created lazily; the serving
        layer uses ``<cache_root>/claims``).  Workers sharing a cache
        must share this directory — it is the single-flight scope.
    ttl:
        Lease length in seconds; heartbeats older than this make a
        claim stale regardless of owner liveness.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        ``<prefix>.acquired`` / ``<prefix>.contested`` /
        ``<prefix>.stale_takeovers`` counters.
    prefix:
        Metric name prefix (the server passes ``serve.claims``).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        ttl: float = DEFAULT_CLAIM_TTL,
        metrics=None,
        prefix: str = "claims",
    ) -> None:
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.root = Path(root)
        self.ttl = ttl
        self.metrics = metrics
        self.prefix = prefix
        self.acquired = 0
        self.contested = 0
        self.stale_takeovers = 0
        self.released = 0
        self._tmp_counter = itertools.count()

    # -- record I/O ----------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.claim"

    @contextmanager
    def _mutate_lock(self):
        """Serialize claim-file mutations for this registry.

        An exclusive ``flock`` on ``<root>/.lock`` makes
        judge-stale-then-tombstone atomic with respect to a rival's
        create-then-write: without it, a contender holding a stale
        read of an orphan record can tombstone the claim a rival just
        created (the file is briefly empty between the O_EXCL create
        and the record write, and ``read`` reports torn records as
        maximally stale), yielding two acquire winners.  ``flock``
        excludes between distinct open file descriptions, so the lock
        works across both threads and processes.  Where ``fcntl`` is
        missing the lock degrades to a no-op and the rename-wins-once
        tombstone protocol alone applies.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        fd = os.open(self.root / ".lock", os.O_CREAT | os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing the descriptor drops the flock

    def _write_record(
        self, path: Path, key: str, heartbeat: float, pid: int | None = None
    ) -> None:
        """Atomically (re)write one claim record."""
        payload = {
            "key": key,
            "pid": os.getpid() if pid is None else pid,
            "heartbeat": heartbeat,
        }
        tmp = self.root / f"{path.stem}.{os.getpid()}.{next(self._tmp_counter)}.beat"
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        os.replace(tmp, path)

    def read(self, key: str) -> dict | None:
        """The parsed claim record for ``key``, or None when free."""
        try:
            return json.loads(self.path_for(key).read_text())
        except OSError:
            return None
        except ValueError:
            # Torn write mid-record: report it as a claim by nobody,
            # which is maximally stale and immediately takeable.
            return {"key": key, "pid": -1, "heartbeat": 0.0}

    def _is_stale(self, record: dict) -> bool:
        heartbeat = record.get("heartbeat", 0.0)
        try:
            age = _wall_time() - float(heartbeat)
        except (TypeError, ValueError):
            return True
        if age > self.ttl:
            return True
        return not _pid_alive(int(record.get("pid", -1)))

    def status(self, key: str) -> str:
        """``"free"``, ``"live"``, or ``"stale"`` for one key."""
        record = self.read(key)
        if record is None:
            return "free"
        return "stale" if self._is_stale(record) else "live"

    # -- the single-flight protocol ------------------------------------------

    def acquire(self, key: str) -> Claim | None:
        """Claim ``key``, taking over a stale claim if one is found.

        Returns a held :class:`Claim`, or ``None`` while somebody
        else's *live* claim exists (the caller should poll the cache
        and retry under its own deadline — never block in here).
        """
        path = self.path_for(key)
        while True:
            with self._mutate_lock():
                try:
                    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    record = self.read(key)
                    if record is None:
                        continue  # vanished between create and read: retry
                    if not self._is_stale(record):
                        self.contested += 1
                        self._count("contested")
                        return None
                    if not self._take_over(path, record):
                        continue  # another contender won the rename: retry
                    continue  # tombstoned; loop back to the O_EXCL create
                os.close(fd)
                self._write_record(path, key, heartbeat=_wall_time())
            self.acquired += 1
            self._count("acquired")
            return Claim(self, key, path)

    def _take_over(self, path: Path, record: dict) -> bool:
        """Tombstone one stale claim; True when *we* won the rename."""
        tombstone = self.root / (
            f"{path.stem}.{os.getpid()}.{next(self._tmp_counter)}.stale"
        )
        try:
            os.replace(path, tombstone)
        except FileNotFoundError:
            return False
        except OSError:
            return False
        tombstone.unlink(missing_ok=True)
        self.stale_takeovers += 1
        self._count("stale_takeovers")
        obs().emit(
            "claims.stale_takeover",
            f"took over stale claim {record.get('key', path.stem)[:12]} "
            f"(owner pid {record.get('pid')}, heartbeat age > ttl or dead)",
            key=record.get("key", path.stem),
            owner=record.get("pid"),
        )
        obs().metrics.counter("claims.stale_takeovers").inc()
        return True

    def plant_orphan(self, key: str) -> Path:
        """Write a claim record owned by nobody (tests / fault injection).

        The record carries a dead heartbeat, so the next
        :meth:`acquire` must go through the stale-takeover path — the
        on-disk shape left behind by a claimant that died before its
        first beat.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        self._write_record(path, key, heartbeat=0.0, pid=-1)
        return path

    # -- maintenance ---------------------------------------------------------

    def inventory(self) -> dict:
        """What the registry directory holds right now (read-only).

        Returns ``{"claims": [{key, pid, status, heartbeat_age}...],
        "tombstones": [names], "beats": [names], "publishes": N}`` —
        the ``claims gc`` CLI's "list" view and the test suite's
        assertion surface.
        """
        report: dict = {"claims": [], "tombstones": [], "beats": [], "publishes": 0}
        if not self.root.is_dir():
            return report
        now = _wall_time()
        for path in sorted(self.root.glob("*.claim")):
            record = self.read(path.stem) or {}
            try:
                age = max(0.0, now - float(record.get("heartbeat", 0.0)))
            except (TypeError, ValueError):
                age = None
            report["claims"].append(
                {
                    "key": path.stem,
                    "pid": record.get("pid"),
                    "status": self.status(path.stem),
                    "heartbeat_age": age,
                }
            )
        report["tombstones"] = sorted(p.name for p in self.root.glob("*.stale"))
        report["beats"] = sorted(p.name for p in self.root.glob("*.beat"))
        report["publishes"] = len(self.publishes())
        return report

    def gc(self, max_age: float | None = None) -> dict:
        """Prune registry debris older than ``max_age`` seconds.

        Three kinds of leftovers accumulate in a long-lived registry
        directory and are invisible to ``ResultCache.verify``:

        * ``*.stale`` tombstones — a contender that crashed between
          the takeover rename and its unlink;
        * ``*.beat`` temp files — a claimant that crashed between
          writing a heartbeat and the atomic replace;
        * ``*.claim`` records whose owner is *stale* and whose
          heartbeat is older than ``max_age`` — a dead worker that
          nobody ever contended with (no waiter means no takeover).

        ``max_age`` defaults to the registry TTL.  Claim records are
        removed through the same rename-to-tombstone dance
        :meth:`acquire` uses, so gc can never delete a record a live
        claimant just refreshed — the rename targets the exact file
        observed stale, and a refresh replaces that file first.
        Returns ``{"removed_claims", "removed_tombstones",
        "removed_beats"}`` (name lists, sorted).
        """
        horizon = self.ttl if max_age is None else max_age
        if horizon < 0:
            raise ValueError("max_age must be >= 0")
        done: dict = {
            "removed_claims": [],
            "removed_tombstones": [],
            "removed_beats": [],
        }
        if not self.root.is_dir():
            return done
        now = _wall_time()

        def expired(path: Path) -> bool:
            try:
                return now - path.stat().st_mtime >= horizon
            except OSError:
                return False  # vanished mid-scan: someone else's cleanup

        for kind, pattern in (("removed_tombstones", "*.stale"), ("removed_beats", "*.beat")):
            for debris in sorted(self.root.glob(pattern)):
                if not expired(debris):
                    continue
                try:
                    debris.unlink(missing_ok=True)
                except OSError:
                    continue  # read-only or racing cleaner; skip
                done[kind].append(debris.name)
        for path in sorted(self.root.glob("*.claim")):
            with self._mutate_lock():
                record = self.read(path.stem)
                if record is None or not self._is_stale(record):
                    continue
                try:
                    heartbeat_age = now - float(record.get("heartbeat", 0.0))
                except (TypeError, ValueError):
                    heartbeat_age = horizon  # unreadable stamp: old enough
                if heartbeat_age < horizon:
                    continue
                tombstone = self.root / (
                    f"{path.stem}.{os.getpid()}.{next(self._tmp_counter)}.stale"
                )
                try:
                    os.replace(path, tombstone)
                except OSError:
                    continue  # owner unlinked it, or a contender won: fine
                tombstone.unlink(missing_ok=True)
            done["removed_claims"].append(path.name)
        removed = sum(len(v) for v in done.values())
        if removed:
            obs().emit(
                "claims.gc",
                f"claims gc pruned {removed} leftover file(s) "
                f"older than {horizon:g}s",
                **{k: len(v) for k, v in done.items()},
            )
        return done

    # -- exactly-once accounting ---------------------------------------------

    @property
    def publish_log(self) -> Path:
        return self.root / PUBLISH_LOG

    def record_publish(self, key: str) -> None:
        """Append one ``key pid`` line to the publish journal.

        Called by the claim owner after the result is durably in the
        cache.  A single short ``O_APPEND`` write is atomic on POSIX,
        so concurrent workers never interleave lines; the journal is
        the cross-worker exactly-one-execution ledger the chaos suite
        audits.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        line = f"{key} {os.getpid()}\n".encode("ascii")
        fd = os.open(self.publish_log, os.O_CREAT | os.O_WRONLY | os.O_APPEND)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    def publishes(self) -> list[tuple[str, int]]:
        """Every journaled publish as ``(key, pid)``, in append order."""
        try:
            text = self.publish_log.read_text()
        except OSError:
            return []
        entries = []
        for line in text.splitlines():
            parts = line.split()
            if len(parts) == 2 and parts[1].isdigit():
                entries.append((parts[0], int(parts[1])))
        return entries

    # -- plumbing ------------------------------------------------------------

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"{self.prefix}.{name}").inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClaimRegistry(root={str(self.root)!r}, ttl={self.ttl}, "
            f"acquired={self.acquired}, contested={self.contested}, "
            f"stale_takeovers={self.stale_takeovers})"
        )
