"""Deterministic fault injection for the parallel layer.

The paper's core lesson is that periodic distributed systems drift
into correlated failure unless enough randomness is injected; the
mirror-image engineering lesson is that a fault-tolerance claim is
only credible under an adversarial fault model.  This module is that
adversary: a :class:`FaultPlan` is a frozen, picklable, *seed-free*
description of exactly which jobs misbehave, how, and on which
attempt — so a chaos test is reproducible run-to-run and the injected
failures can never change the science, only exercise the recovery
paths around it.

A plan threads explicitly through the execution stack —
``run_job(job, faults=plan, attempt=n)``, ``ParallelRunner(faults=…)``
and ``ResultCache(faults=…)`` — there is no global switch and no
monkey-patching, so production runs (``faults=None``) pay nothing.

Fault kinds
-----------
``transient``
    Raise :class:`TransientInjectedError` while ``attempt <
    attempts`` — models a flaky dependency that heals on retry.
``deterministic``
    Raise :class:`DeterministicInjectedError` (a ``ValueError``) on
    every attempt — models a bad job spec that fails identically
    everywhere and must *not* be retried.
``crash``
    Hard-kill the worker process (``os._exit``) — models an OOM kill;
    surfaces as ``BrokenProcessPool`` in the parent.  Outside a pool
    worker the rule is inert, so the in-process fallback recovers.
``hang``
    Sleep ``delay`` seconds while ``attempt < attempts`` — models a
    wedged job; recovery requires an enforced deadline.
``cache_write_error``
    Make :meth:`ResultCache.put` fail with ``OSError`` — models a
    full or read-only disk.
``cache_corrupt``
    Truncate the cache entry right after it is written — models a
    torn write / bit rot; recovery requires quarantine-and-recompute.
``shm_torn``
    Write the job's shared-memory result row but never set its commit
    flag — models a torn slab write the parent must refuse to read.
``shm_crash``
    Write the row without committing, then hard-kill the worker —
    models a worker dying mid-write to the shared segment.  Inert
    outside a pool worker, like ``crash``.
``serve_crash``
    Hard-kill a prefork *serve worker* mid-request (before the job
    executes) — models a worker process dying under load; the
    supervisor must respawn it and the claim protocol must recover
    the orphaned work.  Only fires inside a supervised worker
    (``REPRO_SERVE_WORKER=1``), so in-process server harnesses are
    safe, and at most ``attempts`` times across *all* workers and
    respawns (marker-file accounting — see below).
``serve_hang``
    Sleep ``delay`` seconds in the serving path before executing —
    models a slow worker; recovery requires the request deadline and
    claim-heartbeat TTL.
``claim_orphan``
    Make the server plant an ownerless claim record for the job
    before acquiring — the on-disk shape a claimant leaves when it
    dies before its first heartbeat; exercises stale-claim takeover.

The serving-path kinds differ from the pool kinds in one mechanical
respect: a plan reaches every prefork worker (via the config
environment), workers are *respawned* after crashes, and the plan
itself is frozen — so "fire once" cannot live in process state.
Those rules account their attempts with ``O_CREAT|O_EXCL`` marker
files in a shared ``state_dir`` (the serving layer passes a directory
next to its claim records): exactly one process wins each
``(kind, seed, n)`` marker, across crashes and respawns.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "FAULT_KINDS",
    "SERVE_WORKER_ENV",
    "DeterministicInjectedError",
    "FaultPlan",
    "FaultRule",
    "InjectedFaultError",
    "TransientInjectedError",
]

FAULT_KINDS = (
    "transient",
    "deterministic",
    "crash",
    "hang",
    "cache_write_error",
    "cache_corrupt",
    "shm_torn",
    "shm_crash",
    "serve_crash",
    "serve_hang",
    "claim_orphan",
)

#: Set to ``"1"`` by the prefork supervisor in each worker's
#: environment; ``serve_crash`` only fires when it is present, so an
#: in-process :class:`~repro.serve.lifecycle.BackgroundServer` can run
#: chaos plans without killing the test process.
SERVE_WORKER_ENV = "REPRO_SERVE_WORKER"

#: Exit status of a crash-injected worker (easy to spot in core dumps
#: and CI logs; any nonzero value breaks the pool identically).
CRASH_EXIT_STATUS = 83


class InjectedFaultError(RuntimeError):
    """Base class of every exception a :class:`FaultPlan` raises."""


class TransientInjectedError(InjectedFaultError):
    """An injected failure that heals on retry."""


class DeterministicInjectedError(ValueError):
    """An injected failure that reproduces on every attempt.

    Subclasses ``ValueError`` on purpose: the runner's retry policy
    treats ``ValueError``/``TypeError`` as deterministic spec bugs and
    must fail fast instead of retrying them.
    """


def _in_pool_worker() -> bool:
    """True when running inside a spawned/forked worker process."""
    return multiprocessing.parent_process() is not None


def _in_serve_worker() -> bool:
    """True when running inside a supervised prefork serve worker."""
    return os.environ.get(SERVE_WORKER_ENV) == "1"


@dataclass(frozen=True)
class FaultRule:
    """One deterministic misbehaviour.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    seeds:
        Job seeds the rule applies to; empty means every job.
    attempts:
        Fire while ``attempt < attempts`` (attempt 0 is the first
        execution; retries count up).  Cache rules ignore this.
    delay:
        Sleep length in seconds for ``hang`` rules.
    """

    kind: str
    seeds: tuple[int, ...] = ()
    attempts: int = 1
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")

    def matches(self, job, attempt: int) -> bool:
        """Whether the rule fires for this job on this attempt."""
        if self.seeds and job.seed not in self.seeds:
            return False
        return attempt < self.attempts

    def to_dict(self) -> dict:
        """JSON-safe form (for the supervisor's worker environment)."""
        return {
            "kind": self.kind,
            "seeds": list(self.seeds),
            "attempts": self.attempts,
            "delay": self.delay,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        return cls(
            kind=data["kind"],
            seeds=tuple(data.get("seeds", ())),
            attempts=int(data.get("attempts", 1)),
            delay=float(data.get("delay", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A picklable bundle of :class:`FaultRule` — the chaos schedule.

    Frozen and stateless: the same plan produces the same faults in
    the parent process, in every pool worker, and on every rerun.
    Build plans with the classmethod helpers, e.g.::

        plan = FaultPlan.of(
            FaultPlan.transient(seeds=(1, 2)),
            FaultPlan.hang(seeds=(3,), delay=5.0),
        )
    """

    rules: tuple[FaultRule, ...] = ()

    @classmethod
    def of(cls, *rules: FaultRule) -> "FaultPlan":
        return cls(rules=tuple(rules))

    # -- rule constructors ---------------------------------------------------

    @staticmethod
    def transient(seeds: tuple[int, ...] = (), attempts: int = 1) -> FaultRule:
        """Fail the first ``attempts`` executions, then heal."""
        return FaultRule(kind="transient", seeds=seeds, attempts=attempts)

    @staticmethod
    def deterministic(seeds: tuple[int, ...] = ()) -> FaultRule:
        """Fail every execution with a ValueError (a 'bad spec')."""
        return FaultRule(kind="deterministic", seeds=seeds, attempts=10**9)

    @staticmethod
    def crash(seeds: tuple[int, ...] = (), attempts: int = 1) -> FaultRule:
        """Kill the pool worker outright (inert outside a worker)."""
        return FaultRule(kind="crash", seeds=seeds, attempts=attempts)

    @staticmethod
    def hang(
        seeds: tuple[int, ...] = (), delay: float = 60.0, attempts: int = 1
    ) -> FaultRule:
        """Sleep ``delay`` seconds before running, for ``attempts`` tries."""
        return FaultRule(kind="hang", seeds=seeds, attempts=attempts, delay=delay)

    @staticmethod
    def cache_write_error(seeds: tuple[int, ...] = ()) -> FaultRule:
        """Make every matching ``ResultCache.put`` raise OSError."""
        return FaultRule(kind="cache_write_error", seeds=seeds)

    @staticmethod
    def cache_corrupt(seeds: tuple[int, ...] = ()) -> FaultRule:
        """Corrupt the on-disk entry right after a matching put."""
        return FaultRule(kind="cache_corrupt", seeds=seeds)

    @staticmethod
    def shm_torn(seeds: tuple[int, ...] = ()) -> FaultRule:
        """Leave the matching job's shm row written but uncommitted."""
        return FaultRule(kind="shm_torn", seeds=seeds)

    @staticmethod
    def shm_crash(seeds: tuple[int, ...] = ()) -> FaultRule:
        """Tear the matching row, then kill the worker mid-write."""
        return FaultRule(kind="shm_crash", seeds=seeds)

    @staticmethod
    def serve_crash(seeds: tuple[int, ...] = (), attempts: int = 1) -> FaultRule:
        """Kill a supervised serve worker mid-request, ``attempts`` times
        total across every worker and respawn (marker-file accounted)."""
        return FaultRule(kind="serve_crash", seeds=seeds, attempts=attempts)

    @staticmethod
    def serve_hang(
        seeds: tuple[int, ...] = (), delay: float = 60.0, attempts: int = 1
    ) -> FaultRule:
        """Stall the serving path ``delay`` seconds before executing."""
        return FaultRule(
            kind="serve_hang", seeds=seeds, attempts=attempts, delay=delay
        )

    @staticmethod
    def claim_orphan(seeds: tuple[int, ...] = (), attempts: int = 1) -> FaultRule:
        """Plant an ownerless claim record before the server acquires."""
        return FaultRule(kind="claim_orphan", seeds=seeds, attempts=attempts)

    # -- serialization (for the supervisor's worker environment) -------------

    def to_dict(self) -> dict:
        """JSON-safe form; inverse of :meth:`from_dict`."""
        return {"rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            rules=tuple(
                FaultRule.from_dict(rule) for rule in data.get("rules", ())
            )
        )

    # -- hooks the execution layer calls -------------------------------------

    def on_job(self, job, attempt: int) -> None:
        """Called by :func:`repro.parallel.job.run_job` before executing.

        May sleep (``hang``), raise (``transient``/``deterministic``)
        or kill the current worker process (``crash``).
        """
        for rule in self.rules:
            if not rule.matches(job, attempt):
                continue
            if rule.kind == "hang":
                time.sleep(rule.delay)
            elif rule.kind == "transient":
                raise TransientInjectedError(
                    f"injected transient fault (seed={job.seed}, attempt={attempt})"
                )
            elif rule.kind == "deterministic":
                raise DeterministicInjectedError(
                    f"injected deterministic fault (seed={job.seed})"
                )
            elif rule.kind == "crash" and _in_pool_worker():
                # A real worker death, not an exception: the parent
                # sees BrokenProcessPool exactly as with an OOM kill.
                os._exit(CRASH_EXIT_STATUS)

    def on_cache_put(self, job) -> None:
        """Called by ``ResultCache.put`` before writing; may raise OSError."""
        for rule in self.rules:
            if rule.kind == "cache_write_error" and rule.matches(job, 0):
                raise OSError(28, "injected: no space left on device")

    def corrupts_entry(self, job) -> bool:
        """Whether ``ResultCache.put`` should corrupt this entry after writing."""
        return any(
            rule.kind == "cache_corrupt" and rule.matches(job, 0)
            for rule in self.rules
        )

    def shm_fault(self, job) -> str | None:
        """Which shm write fault (if any) fires for this job.

        Called by :func:`repro.parallel.shm.run_jobs_shm` per result
        row; returns ``"shm_torn"``, ``"shm_crash"`` or ``None``.
        The crash variant wins when both match.
        """
        found: str | None = None
        for rule in self.rules:
            if rule.kind == "shm_crash" and rule.matches(job, 0):
                return "shm_crash"
            if rule.kind == "shm_torn" and rule.matches(job, 0):
                found = "shm_torn"
        return found

    # -- serving-path hooks ---------------------------------------------------

    @staticmethod
    def _claim_marker(
        state_dir: str | os.PathLike, kind: str, seed: int, attempts: int
    ) -> bool:
        """Atomically win the right to fire one ``(kind, seed)`` attempt.

        Serve rules must fire a bounded number of times across *all*
        workers and respawns even though the plan object is frozen, so
        attempt state lives on disk: ``attempts`` marker slots per
        ``(kind, seed)``, each claimed by exactly one process via
        ``O_CREAT | O_EXCL``.  Returns True when a slot was won.
        """
        root = Path(state_dir)
        root.mkdir(parents=True, exist_ok=True)
        for n in range(attempts):
            try:
                fd = os.open(
                    root / f"{kind}.{seed}.{n}",
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def on_serve_job(self, job, state_dir: str | os.PathLike | None) -> None:
        """Called by the serving layer before executing a job as leader.

        ``serve_hang`` sleeps ``delay`` seconds; ``serve_crash``
        hard-kills the worker process — but only inside a supervised
        prefork worker (:data:`SERVE_WORKER_ENV`), so in-process test
        harnesses survive their own chaos plans.
        """
        if state_dir is None:
            return
        for rule in self.rules:
            if rule.seeds and job.seed not in rule.seeds:
                continue
            if rule.kind == "serve_hang":
                if self._claim_marker(
                    state_dir, rule.kind, job.seed, rule.attempts
                ):
                    time.sleep(rule.delay)
            elif rule.kind == "serve_crash" and _in_serve_worker():
                if self._claim_marker(
                    state_dir, rule.kind, job.seed, rule.attempts
                ):
                    os._exit(CRASH_EXIT_STATUS)

    def wants_claim_orphan(
        self, job, state_dir: str | os.PathLike | None
    ) -> bool:
        """Whether the server should plant an orphaned claim record
        for this job before acquiring (at most ``attempts`` times per
        matching rule, marker-file accounted)."""
        if state_dir is None:
            return False
        for rule in self.rules:
            if rule.kind != "claim_orphan":
                continue
            if rule.seeds and job.seed not in rule.seeds:
                continue
            if self._claim_marker(state_dir, rule.kind, job.seed, rule.attempts):
                return True
        return False
