"""Parallel execution layer for simulation fan-out.

Every headline quantity in the paper is an embarrassingly parallel
aggregate: Figures 10/11 average twenty independent seeds, Figures
12-15 sweep ``Tr``/``N`` grids, and the transition finder bisects over
``N``.  This package turns each of those unit simulations into a
:class:`SimulationJob` — a hashable, serializable spec of (parameters,
seed, horizon, direction, engine) — and executes batches of them
through a :class:`ParallelRunner` that fans out over a process pool,
falls back to in-process execution when ``jobs=1`` (or when the
platform cannot spawn workers), and consults a content-addressed
on-disk :class:`ResultCache` so repeated figure runs and bisection
probes never recompute a completed simulation.

Resilience layer (practicing what the paper preaches): the runner
retries lost work with deterministically-jittered exponential backoff
instead of lockstep re-attempts, enforces per-job deadlines on every
path (pool *and* in-process fallback), accounts for each submitted
job exactly once in a :class:`RunReport`, journals completed jobs to
a :class:`CheckpointJournal` so killed runs resume where they
stopped, and treats the cache as self-repairing (best-effort writes,
corrupt-entry quarantine).  :class:`FaultPlan` is the deterministic
chaos harness the test suite drives through all of it.

Determinism guarantee: a job's result depends only on the job spec.
Each worker derives the same per-router RNG streams the serial path
does, and the runner restores submission order after the gather, so
``jobs=4`` is byte-identical to ``jobs=1`` (asserted in
``tests/test_parallel_runner.py``) — and injected faults, retries,
fallbacks and resumes preserve that identity (asserted in
``tests/test_parallel_faults.py``).
"""

from .bench import format_table, run_benchmark
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .checkpoint import DEFAULT_CHECKPOINT_DIR, CheckpointJournal, resolve_checkpoint
from .claims import DEFAULT_CLAIM_TTL, Claim, ClaimRegistry
from .faults import (
    FAULT_KINDS,
    SERVE_WORKER_ENV,
    DeterministicInjectedError,
    FaultPlan,
    FaultRule,
    InjectedFaultError,
    TransientInjectedError,
)
from .bench_batch import format_batch_table, run_batch_benchmark
from .job import (
    ENGINES,
    MODEL_VERSION,
    JobResult,
    SimulationJob,
    batch_group_key,
    run_batch,
    run_job,
    run_jobs,
    validate_engine,
)
from .report import OUTCOMES, JobRecord, RunReport
from .shm import ResultSlab, run_jobs_shm, shm_available
from .runner import (
    JobTimeoutError,
    ParallelRunner,
    RunnerStats,
    deterministic_jitter,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DEFAULT_CHECKPOINT_DIR",
    "DEFAULT_CLAIM_TTL",
    "ENGINES",
    "FAULT_KINDS",
    "MODEL_VERSION",
    "OUTCOMES",
    "SERVE_WORKER_ENV",
    "CheckpointJournal",
    "Claim",
    "ClaimRegistry",
    "DeterministicInjectedError",
    "FaultPlan",
    "FaultRule",
    "InjectedFaultError",
    "JobRecord",
    "JobResult",
    "JobTimeoutError",
    "ParallelRunner",
    "ResultCache",
    "ResultSlab",
    "RunReport",
    "RunnerStats",
    "SimulationJob",
    "TransientInjectedError",
    "batch_group_key",
    "deterministic_jitter",
    "format_batch_table",
    "format_table",
    "resolve_checkpoint",
    "run_batch",
    "run_batch_benchmark",
    "run_benchmark",
    "run_job",
    "run_jobs",
    "run_jobs_shm",
    "shm_available",
    "validate_engine",
]
