"""Parallel execution layer for simulation fan-out.

Every headline quantity in the paper is an embarrassingly parallel
aggregate: Figures 10/11 average twenty independent seeds, Figures
12-15 sweep ``Tr``/``N`` grids, and the transition finder bisects over
``N``.  This package turns each of those unit simulations into a
:class:`SimulationJob` — a hashable, serializable spec of (parameters,
seed, horizon, direction, engine) — and executes batches of them
through a :class:`ParallelRunner` that fans out over a process pool,
falls back to in-process execution when ``jobs=1`` (or when the
platform cannot spawn workers), and consults a content-addressed
on-disk :class:`ResultCache` so repeated figure runs and bisection
probes never recompute a completed simulation.

Determinism guarantee: a job's result depends only on the job spec.
Each worker derives the same per-router RNG streams the serial path
does, and the runner restores submission order after the gather, so
``jobs=4`` is byte-identical to ``jobs=1`` (asserted in
``tests/test_parallel_runner.py``).
"""

from .bench import format_table, run_benchmark
from .cache import ResultCache
from .job import (
    ENGINES,
    MODEL_VERSION,
    JobResult,
    SimulationJob,
    run_job,
    run_jobs,
    validate_engine,
)
from .runner import ParallelRunner, RunnerStats

__all__ = [
    "ENGINES",
    "MODEL_VERSION",
    "JobResult",
    "ParallelRunner",
    "ResultCache",
    "RunnerStats",
    "SimulationJob",
    "format_table",
    "run_benchmark",
    "run_job",
    "run_jobs",
    "validate_engine",
]
