"""Shared-memory result slabs for pooled batch sweeps.

Pickling a ``JobResult`` per member back through the process pool is
pure overhead once the batch kernel made the simulations themselves
cheap: for a fig12-style sweep the parent deserializes hundreds of
thousands of tiny dicts.  This module gives the pool a second
transport: the parent allocates one ``multiprocessing.shared_memory``
segment holding a float64 slab with a row per job, workers write each
job's first-passage record in place, and the pickled payload shrinks
to a bare acknowledgement.

Layout
------
Row ``r`` of the ``(rows, n_max + 1)`` float64 slab holds job ``r``'s
outcome::

    col 0           commit flag — 0.0 while the row is unwritten or
                    torn, :data:`COMMIT` once the row is complete
    col k (1..n)    first-passage time for cluster size k, NaN when
                    the run never reached that size (censoring is
                    absence, exactly as in ``JobResult``)

The commit flag is written *last*.  A worker that dies mid-row leaves
the flag unset, so the parent can never surface a torn row as a
result — it re-runs exactly the uncommitted jobs in-process.  Float64
values round-trip through the slab bit for bit, so shm transport is
byte-identical to pickle transport.

Cleanup is the parent's job: :meth:`ResultSlab.destroy` runs in the
runner's ``finally`` so the segment is unlinked on normal exit, on an
``on_error="raise"`` drain, and when workers crash.  Workers attach
read-write but never unlink; attaching also unregisters the segment
from their ``resource_tracker`` so a worker exit cannot reap a
segment the parent still owns (CPython's tracker would otherwise
unlink it).
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "COMMIT",
    "ResultSlab",
    "shm_available",
    "run_jobs_shm",
]

#: Value of a row's commit flag once every payload column is written.
COMMIT = 1.0

_NAN = float("nan")


def shm_available() -> bool:
    """Whether shared-memory slabs can be used on this platform.

    Requires numpy (the slab is a float64 ndarray view) and a working
    ``multiprocessing.shared_memory`` (present on CPython >= 3.8, but
    creation can still fail on platforms without ``/dev/shm``).
    """
    try:
        import numpy  # noqa: F401
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - baked-in on the CI image
        return False
    return True


class ResultSlab:
    """One shared-memory first-passage slab (see module docstring).

    Create in the parent with :meth:`create`, attach in workers with
    :meth:`attach`.  The parent calls :meth:`destroy` exactly once;
    workers call :meth:`close` when done writing.
    """

    def __init__(self, shm, rows: int, n_max: int, owner: bool) -> None:
        import numpy as np

        self._shm = shm
        self.rows = rows
        self.n_max = n_max
        self._owner = owner
        self.array = np.ndarray(
            (rows, n_max + 1), dtype=np.float64, buffer=shm.buf
        )

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    @classmethod
    def create(cls, rows: int, n_max: int) -> "ResultSlab":
        """Allocate a zero-filled slab for ``rows`` jobs (parent side)."""
        from multiprocessing import shared_memory

        if rows < 1 or n_max < 1:
            raise ValueError("rows and n_max must be >= 1")
        size = rows * (n_max + 1) * 8
        shm = shared_memory.SharedMemory(create=True, size=size)
        slab = cls(shm, rows, n_max, owner=True)
        slab.array.fill(0.0)  # commit flags down, payload zeroed
        return slab

    @classmethod
    def attach(cls, name: str, rows: int, n_max: int) -> "ResultSlab":
        """Map an existing slab by name (worker side).

        Unregisters the mapping from this process's resource tracker:
        the parent owns the segment's lifetime, and without this a
        worker exit would unlink a segment the parent is still
        reading (CPython registers attachments too).
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        try:  # pragma: no cover - tracker internals vary by version
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # lint: allow-swallow
            pass  # best-effort: tracker API is private and version-dependent
        return cls(shm, rows, n_max, owner=False)

    # -- row protocol --------------------------------------------------------

    def write_row(
        self, row: int, first_passages: dict, commit: bool = True
    ) -> None:
        """Write one job's record; the commit flag goes down last.

        ``commit=False`` writes the payload but leaves the flag unset
        — the fault-injection hook for a torn write.
        """
        out = self.array[row]
        out[0] = 0.0
        for k in range(1, self.n_max + 1):
            out[k] = first_passages.get(k, _NAN)
        if commit:
            out[0] = COMMIT

    def read_row(self, row: int) -> dict | None:
        """One job's record, or None if the row was never committed."""
        out = self.array[row]
        if out[0] != COMMIT:
            return None
        return {
            k: float(out[k])
            for k in range(1, self.n_max + 1)
            if out[k] == out[k]  # NaN = size never reached
        }

    # -- lifetime ------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (leaves the segment alive)."""
        self.array = None
        self._shm.close()

    def destroy(self) -> None:
        """Close and unlink; only the creating parent calls this."""
        self.array = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def run_jobs_shm(
    specs,
    name: str,
    rows: int,
    n_max: int,
    row_indices: Sequence[int],
    faults=None,
    attempt: int = 0,
) -> int:
    """Pool-worker entry point for shm transport.

    Applies the same per-worker batching as :func:`.job.run_jobs` —
    byte-identity is inherited, not re-proven — but on the fault-free
    path the batch kernel streams first-passage rows straight into
    the slab (``run_batch(..., out=...)``), so no per-member result
    object is ever built, let alone pickled.  Returns only the number
    of rows committed; ``row_indices[i]`` is the slab row of
    ``specs[i]``.

    With a fault plan armed, jobs run one by one (matching
    ``run_jobs``) and the plan's shm hooks fire per row *after* the
    simulation: ``shm_torn`` skips the commit flag (the worker
    survives and the parent re-runs that job); ``shm_crash`` skips
    the flag and kills the worker mid-chunk (the parent sees
    ``BrokenProcessPool``).
    """
    from .job import batch_group_key, run_batch, run_job, run_jobs

    slab = ResultSlab.attach(name, rows, n_max)
    committed = 0
    try:
        if faults is None:
            jobs = list(specs)
            groups: dict = {}
            for i, job in enumerate(jobs):
                if job.engine == "batch":
                    groups.setdefault(batch_group_key(job), []).append(i)
                    continue
                result = run_job(job, None, attempt)
                slab.write_row(row_indices[i], result.first_passages)
                committed += 1
            for indices in groups.values():
                run_batch(
                    [jobs[i] for i in indices],
                    out=(slab, [row_indices[i] for i in indices]),
                )
                committed += len(indices)
            return committed
        results = run_jobs(specs, faults, attempt)
        for spec, result, row in zip(specs, results, row_indices):
            fault = faults.shm_fault(spec)
            if fault is not None:
                slab.write_row(row, result.first_passages, commit=False)
                if fault == "shm_crash":
                    import os

                    from .faults import CRASH_EXIT_STATUS, _in_pool_worker

                    if _in_pool_worker():
                        os._exit(CRASH_EXIT_STATUS)
                continue
            slab.write_row(row, result.first_passages)
            committed += 1
    finally:
        slab.close()
    return committed
