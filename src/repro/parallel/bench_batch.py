"""The batch-kernel performance snapshot (``python -m repro bench --batch``).

Runs the Figure 10 parameter point (N=20, Tp=121 s, Tc=0.11 s,
Tr=0.1 s, horizon 2e5 s) as a 100-member ensemble — the regime the
event-vectorized kernel exists for; the paper's own figure averages
20 of these members — through every execution configuration:

* ``cascade_jobs1``   — the serial cascade engine, the PR-1 baseline.
* ``batch_python``    — the batch kernel, pure-Python scalar path
  (the portable floor; no numpy required).
* ``batch_numpy``     — the event-vectorized kernel: bulk boundary
  scans over the SoA slab, banked RNG blocks, scalar fallback only
  inside cascade windows.  Skipped (reported absent) without numpy.
* ``batch_compiled``  — the scalar kernel compiled to machine code
  (numba or the bundled C module); reported when resolvable.
* ``batch_jobsN``     — batch jobs over the process pool, pickle
  transport.
* ``batch_jobsN_shm`` — the same pool with shared-memory result
  slabs (:mod:`repro.parallel.shm`).

Timing discipline: the serial baseline and the backend rows are
measured **interleaved** over ``reps`` rounds and the per-row minimum
is reported — on a shared box the minimum of interleaved rounds is
the honest estimate of each configuration's cost, because background
load inflates all rows in the same rounds instead of whichever row
ran last.  Backend rows also report the kernel's per-phase split
(``rng_refill`` / ``boundary_scan`` / ``cascade_resolution``) from
their fastest round; the python backend's scalar loop has no phase
instrumentation and reports zeros.

All rows must produce identical first-passage times (checked on every
bench run), so the table is a pure wall-clock comparison.  The
snapshot is written as JSON — ``BENCH_batch.json`` at the repo root
by convention — so the acceptance numbers (NumPy ≥ 10x over serial
cascade; pure Python no worse than 10% under it; compiled reported
when available) stay diffable across commits.
"""

from __future__ import annotations

import os
import time
from typing import Sequence

from ..benchio import bench_envelope, write_bench_json
from ..core import BatchCascade
from ..core.batch import BACKEND, compiled_backend_available
from .bench import BENCH_PARAMS, DEFAULT_HORIZON
from .job import JobResult, SimulationJob
from .runner import ParallelRunner
from .shm import shm_available

__all__ = ["format_batch_table", "run_batch_benchmark"]

#: Acceptance thresholds, evaluated on every run and stored in the
#: snapshot: the vectorized kernel must clear 10x over the serial
#: cascade; the pure-python kernel must stay within 10% of it.
NUMPY_SPEEDUP_TARGET = 10.0
COMPILED_SPEEDUP_TARGET = 10.0
PYTHON_SPEEDUP_TARGET = 0.9


def _specs(
    horizon: float, seeds: Sequence[int], engine: str
) -> list[SimulationJob]:
    return [
        SimulationJob(
            seed=seed, horizon=horizon, direction="up", engine=engine, **BENCH_PARAMS
        )
        for seed in seeds
    ]


def _run_backend(specs: list[SimulationJob], backend: str):
    """One kernel pass; returns (results, phase_seconds)."""
    first = specs[0]
    batch = BatchCascade(
        first.params,
        seeds=[spec.seed for spec in specs],
        initial_phases="unsynchronized",
        backend=backend,
    )
    batch.run(until=first.horizon, stop_on_full_sync=True)
    results = [
        JobResult(first_passages=dict(member.first_time_at_least))
        for member in batch.members
    ]
    return results, dict(batch.phase_seconds)


def run_batch_benchmark(
    jobs: int | None = None,
    horizon: float = DEFAULT_HORIZON,
    seeds: Sequence[int] = tuple(range(1, 101)),
    output: str | os.PathLike | None = None,
    reps: int = 3,
) -> dict:
    """Run the batch-vs-serial configurations; return/write the snapshot.

    Parameters
    ----------
    jobs:
        Pool width for the pooled rows; defaults to CPU count.
    horizon, seeds:
        The ensemble's run settings (defaults reproduce the canonical
        snapshot: the Fig-10 point, 100 members, 2e5 s).
    output:
        If given, the snapshot JSON is written there.
    reps:
        Interleaved measurement rounds per row; each row reports its
        minimum (see module docstring).
    """
    jobs = jobs or os.cpu_count() or 1
    reps = max(1, reps)
    seeds = list(seeds)
    batch_specs = _specs(horizon, seeds, "batch")
    cascade_specs = _specs(horizon, seeds, "cascade")

    backends = ["python"]
    if BACKEND == "numpy":
        backends.append("numpy")
    have_compiled = compiled_backend_available()
    if have_compiled:
        backends.append("compiled")

    timings: dict[str, float] = {}
    phases: dict[str, dict[str, float]] = {}
    results: dict[str, list[JobResult]] = {}

    def record(name: str, elapsed: float, outcome, phase=None) -> None:
        if name not in timings or elapsed < timings[name]:
            timings[name] = elapsed
            results[name] = outcome
            if phase is not None:
                phases[name] = phase

    # Interleaved rounds: baseline and kernel rows alternate within
    # each rep so shared-box load inflates them together.
    for _rep in range(reps):
        start = time.perf_counter()
        serial = ParallelRunner(jobs=1).run(cascade_specs)
        record("cascade_jobs1", time.perf_counter() - start, serial)
        for backend in backends:
            start = time.perf_counter()
            outcome, phase = _run_backend(batch_specs, backend)
            record(
                f"batch_{backend}", time.perf_counter() - start, outcome, phase
            )

    # Pooled rows ride once (they wrap the same kernels; their point
    # is transport overhead, not kernel speed).
    pooled_runner = ParallelRunner(jobs=jobs)
    start = time.perf_counter()
    pooled = pooled_runner.run(batch_specs)
    record("batch_jobsN", time.perf_counter() - start, pooled)

    have_shm = shm_available()
    if have_shm:
        shm_runner = ParallelRunner(jobs=jobs, transport="shm")
        start = time.perf_counter()
        shipped = shm_runner.run(batch_specs)
        record("batch_jobsN_shm", time.perf_counter() - start, shipped)

    reference = results["cascade_jobs1"]
    identical = all(row == reference for row in results.values())
    baseline = timings["cascade_jobs1"]
    speedups = {
        name: round(baseline / t, 2) if t > 0 else float("inf")
        for name, t in timings.items()
    }
    payload = {
        "params": dict(BENCH_PARAMS),
        "horizon_seconds": horizon,
        "n_seeds": len(seeds),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "reps": reps,
        # Which RNG bank the auto-detected default would use; rows
        # name their backend explicitly.
        "default_backend": BACKEND,
        "compiled_available": have_compiled,
        "shm_available": have_shm,
        "timings_seconds": {name: round(t, 4) for name, t in timings.items()},
        "speedup_vs_serial_cascade": speedups,
        # The kernel's own accounting from each backend's fastest
        # round: RNG refill vs boundary scan vs cascade resolution.
        "phase_seconds": {
            name: {k: round(v, 4) for k, v in split.items()}
            for name, split in phases.items()
        },
        "results_identical_across_configs": identical,
        # The PR's acceptance thresholds, evaluated on this box.
        "acceptance": {
            "numpy_speedup_target": NUMPY_SPEEDUP_TARGET,
            "numpy_speedup_met": (
                speedups["batch_numpy"] >= NUMPY_SPEEDUP_TARGET
                if "batch_numpy" in speedups
                else None
            ),
            "compiled_speedup_target": COMPILED_SPEEDUP_TARGET,
            "compiled_speedup_met": (
                speedups["batch_compiled"] >= COMPILED_SPEEDUP_TARGET
                if "batch_compiled" in speedups
                else None
            ),
            "python_within_10pct_target": PYTHON_SPEEDUP_TARGET,
            "python_within_10pct_met": (
                speedups["batch_python"] >= PYTHON_SPEEDUP_TARGET
            ),
        },
        "run_report_pooled": pooled_runner.report.counts(),
    }
    snapshot = bench_envelope("fig10_batch_kernel", payload)
    if output is not None:
        write_bench_json(output, snapshot)
    return snapshot


def format_batch_table(snapshot: dict) -> str:
    """Render a batch snapshot as the CLI's speedup table."""
    rows = [("configuration", "wall-clock (s)", "speedup vs serial cascade")]
    labels = {
        "cascade_jobs1": "cascade engine, jobs=1 (baseline)",
        "batch_python": "batch kernel, python backend",
        "batch_numpy": "batch kernel, numpy backend",
        "batch_compiled": "batch kernel, compiled backend",
        "batch_jobsN": f"batch kernel over pool, jobs={snapshot['jobs']}",
        "batch_jobsN_shm": (
            f"batch kernel over pool + shm slabs, jobs={snapshot['jobs']}"
        ),
    }
    for name, seconds in snapshot["timings_seconds"].items():
        rows.append(
            (
                labels.get(name, name),
                f"{seconds:.3f}",
                f"{snapshot['speedup_vs_serial_cascade'][name]:.2f}x",
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(3)]
    lines = [
        f"fig10 ensemble: {snapshot['n_seeds']} members, horizon "
        f"{snapshot['horizon_seconds']:g} s, {snapshot['cpu_count']} CPU(s), "
        f"min of {snapshot['reps']} interleaved round(s), default backend "
        f"{snapshot['default_backend']}"
    ]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    for name, split in snapshot.get("phase_seconds", {}).items():
        parts = ", ".join(f"{k} {v:.3f}s" for k, v in split.items())
        lines.append(f"{name} phases: {parts}")
    if "batch_numpy" not in snapshot["timings_seconds"]:
        lines.append("numpy backend: not installed (row skipped)")
    if not snapshot.get("compiled_available", False):
        lines.append("compiled backend: not resolvable (row skipped)")
    lines.append(
        "results identical across configurations: "
        + ("yes" if snapshot["results_identical_across_configs"] else "NO")
    )
    return "\n".join(lines)
