"""The batch-kernel performance snapshot (``python -m repro bench --batch``).

Runs the same fixed workload as ``bench`` — the 20-seed Figure 10
first-passage ensemble (N=20, Tp=121 s, Tc=0.11 s, Tr=0.1 s) — through
four configurations:

* ``cascade_jobs1`` — the serial cascade engine, the PR-1 baseline.
* ``batch_python``  — the batch kernel, pure-Python RNG path.
* ``batch_numpy``   — the batch kernel, NumPy RNG bank (skipped, and
  reported as absent, when NumPy is not installed).
* ``batch_jobsN``   — batch jobs over the process pool: the kernel
  groups seeds *within* each worker chunk, the pool fans chunks out.

All rows must produce identical first-passage times (checked on every
bench run), so the table is a pure wall-clock comparison.  The
snapshot is written as JSON — ``BENCH_batch.json`` at the repo root by
convention — so the acceptance numbers (NumPy ≥ 1.5x over serial
cascade; pure Python within 10% of it or better) stay diffable across
commits.
"""

from __future__ import annotations

import os
import time
from typing import Sequence

from ..benchio import bench_envelope, write_bench_json
from ..core.batch import BACKEND
from .bench import BENCH_PARAMS, DEFAULT_HORIZON
from .job import SimulationJob, run_batch
from .runner import ParallelRunner

__all__ = ["format_batch_table", "run_batch_benchmark"]


def _specs(
    horizon: float, seeds: Sequence[int], engine: str
) -> list[SimulationJob]:
    return [
        SimulationJob(
            seed=seed, horizon=horizon, direction="up", engine=engine, **BENCH_PARAMS
        )
        for seed in seeds
    ]


def run_batch_benchmark(
    jobs: int | None = None,
    horizon: float = DEFAULT_HORIZON,
    seeds: Sequence[int] = tuple(range(1, 21)),
    output: str | os.PathLike | None = None,
) -> dict:
    """Run the batch-vs-serial configurations; return/write the snapshot.

    Parameters
    ----------
    jobs:
        Pool width for the ``batch_jobsN`` row; defaults to CPU count.
    horizon, seeds:
        The ensemble's run settings (defaults reproduce the canonical
        snapshot: 20 seeds, 2e5 s).
    output:
        If given, the snapshot JSON is written there.
    """
    jobs = jobs or os.cpu_count() or 1
    timings: dict[str, float] = {}

    start = time.perf_counter()
    serial_results = ParallelRunner(jobs=1).run(_specs(horizon, seeds, "cascade"))
    timings["cascade_jobs1"] = time.perf_counter() - start

    batch_specs = _specs(horizon, seeds, "batch")
    start = time.perf_counter()
    python_results = run_batch(batch_specs, backend="python")
    timings["batch_python"] = time.perf_counter() - start

    numpy_results = None
    if BACKEND == "numpy":
        start = time.perf_counter()
        numpy_results = run_batch(batch_specs, backend="numpy")
        timings["batch_numpy"] = time.perf_counter() - start

    pooled_runner = ParallelRunner(jobs=jobs)
    start = time.perf_counter()
    pooled_results = pooled_runner.run(batch_specs)
    timings["batch_jobsN"] = time.perf_counter() - start

    identical = serial_results == python_results == pooled_results and (
        numpy_results is None or numpy_results == serial_results
    )
    baseline = timings["cascade_jobs1"]
    speedups = {
        name: round(baseline / t, 2) if t > 0 else float("inf")
        for name, t in timings.items()
    }
    payload = {
        "params": dict(BENCH_PARAMS),
        "horizon_seconds": horizon,
        "n_seeds": len(list(seeds)),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        # Which RNG bank the auto-detected default would use; rows
        # name their backend explicitly.
        "default_backend": BACKEND,
        "timings_seconds": {name: round(t, 4) for name, t in timings.items()},
        "speedup_vs_serial_cascade": speedups,
        "results_identical_across_configs": identical,
        # The PR's acceptance thresholds, evaluated on this box.
        "acceptance": {
            "numpy_speedup_target": 1.5,
            "numpy_speedup_met": (
                speedups.get("batch_numpy", 0.0) >= 1.5
                if "batch_numpy" in speedups
                else None
            ),
            "python_within_10pct_target": 0.9,
            "python_within_10pct_met": speedups["batch_python"] >= 0.9,
        },
        "run_report_pooled": pooled_runner.report.counts(),
    }
    snapshot = bench_envelope("fig10_batch_kernel", payload)
    if output is not None:
        write_bench_json(output, snapshot)
    return snapshot


def format_batch_table(snapshot: dict) -> str:
    """Render a batch snapshot as the CLI's speedup table."""
    rows = [("configuration", "wall-clock (s)", "speedup vs serial cascade")]
    labels = {
        "cascade_jobs1": "cascade engine, jobs=1 (baseline)",
        "batch_python": "batch kernel, python backend",
        "batch_numpy": "batch kernel, numpy backend",
        "batch_jobsN": f"batch kernel over pool, jobs={snapshot['jobs']}",
    }
    for name, seconds in snapshot["timings_seconds"].items():
        rows.append(
            (
                labels.get(name, name),
                f"{seconds:.3f}",
                f"{snapshot['speedup_vs_serial_cascade'][name]:.2f}x",
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(3)]
    lines = [
        f"fig10 ensemble: {snapshot['n_seeds']} seeds, horizon "
        f"{snapshot['horizon_seconds']:g} s, {snapshot['cpu_count']} CPU(s), "
        f"default backend {snapshot['default_backend']}"
    ]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    if "batch_numpy" not in snapshot["timings_seconds"]:
        lines.append("numpy backend: not installed (row skipped)")
    lines.append(
        "results identical across configurations: "
        + ("yes" if snapshot["results_identical_across_configs"] else "NO")
    )
    return "\n".join(lines)
