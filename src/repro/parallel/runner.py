"""Fan jobs out over a process pool, deterministically.

The runner's contract: ``run(specs)`` returns one result per spec, in
spec order, and the values are byte-identical whatever the ``jobs``
setting — each job derives its own RNG streams from its seed, workers
share no state, and ordering is restored after the gather.  Parallelism
can therefore never change science, only wall-clock.

Scheduling is chunked: contiguous runs of pending jobs are grouped so
that one pool round-trip amortizes pickling over several simulations.
Failures degrade gracefully — a chunk that times out, a worker that
dies, or a platform that cannot start processes at all (no ``fork``,
sandboxed interpreters) all fall back to in-process execution of the
affected jobs, optionally retried, so ``run()`` either returns complete
results or raises the underlying error after the fallback also failed.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Sequence

from .cache import ResultCache
from .job import JobResult, SimulationJob, run_job, run_jobs

__all__ = ["ParallelRunner", "RunnerStats"]


@dataclass
class RunnerStats:
    """Counters from the most recent :meth:`ParallelRunner.run` call."""

    submitted: int = 0
    cache_hits: int = 0
    executed: int = 0
    pooled: int = 0
    fallback: int = 0
    retried_chunks: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class ParallelRunner:
    """Execute batches of :class:`SimulationJob` specs.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs in-process with no
        pool, no pickling, and no platform requirements.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are stored back.
    chunk_size:
        Jobs per pool task.  Defaults to spreading the batch over
        roughly four chunks per worker, so stragglers rebalance.
    timeout:
        Optional per-job seconds; a chunk gets ``timeout *
        len(chunk)``.  Chunks that exceed it are re-run in process.
    retries:
        How many times a failed/timed-out chunk is re-attempted
        in-process before the error propagates.
    """

    jobs: int = 1
    cache: ResultCache | None = None
    chunk_size: int | None = None
    timeout: float | None = None
    retries: int = 1
    stats: RunnerStats = field(default_factory=RunnerStats, init=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")

    def run(self, specs: Sequence[SimulationJob]) -> list[JobResult]:
        """Execute every spec; results come back in spec order."""
        specs = list(specs)
        self.stats = RunnerStats(submitted=len(specs))
        results: list[JobResult | None] = [None] * len(specs)
        pending: list[tuple[int, SimulationJob]] = []
        for index, spec in enumerate(specs):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                results[index] = cached
                self.stats.cache_hits += 1
            else:
                pending.append((index, spec))
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                executed = self._run_pooled(pending)
            else:
                executed = self._run_serial(pending)
            for index, result in executed.items():
                results[index] = result
                if self.cache is not None:
                    self.cache.put(specs[index], result)
            self.stats.executed = len(executed)
        return results  # type: ignore[return-value]  # every slot is filled

    # -- execution strategies -------------------------------------------------

    def _run_serial(
        self, pending: Sequence[tuple[int, SimulationJob]]
    ) -> dict[int, JobResult]:
        return {index: run_job(spec) for index, spec in pending}

    def _chunks(
        self, pending: Sequence[tuple[int, SimulationJob]]
    ) -> list[list[tuple[int, SimulationJob]]]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            size = max(1, math.ceil(len(pending) / (self.jobs * 4)))
        return [
            list(pending[start : start + size])
            for start in range(0, len(pending), size)
        ]

    def _run_pooled(
        self, pending: Sequence[tuple[int, SimulationJob]]
    ) -> dict[int, JobResult]:
        chunks = self._chunks(pending)
        try:
            pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(chunks)))
        except (OSError, ValueError, ImportError, NotImplementedError):
            # No process support on this platform: stay in-process.
            self.stats.fallback += len(pending)
            return self._run_serial(pending)
        executed: dict[int, JobResult] = {}
        failed: list[list[tuple[int, SimulationJob]]] = []
        try:
            futures = [
                (chunk, pool.submit(run_jobs, [spec for _index, spec in chunk]))
                for chunk in chunks
            ]
            for chunk, future in futures:
                chunk_timeout = (
                    self.timeout * len(chunk) if self.timeout is not None else None
                )
                try:
                    chunk_results = future.result(timeout=chunk_timeout)
                except FutureTimeoutError:
                    future.cancel()
                    failed.append(chunk)
                    continue
                except (ValueError, TypeError):
                    # A bad job spec fails identically everywhere;
                    # surface it rather than retrying.
                    raise
                except Exception:
                    # Worker died (BrokenProcessPool, pickling trouble,
                    # OOM kill, ...): run this chunk in-process below.
                    failed.append(chunk)
                    continue
                for (index, _spec), result in zip(chunk, chunk_results):
                    executed[index] = result
                    self.stats.pooled += 1
        finally:
            # Timed-out workers may still be running; don't block on them.
            pool.shutdown(wait=not failed, cancel_futures=True)
        for chunk in failed:
            self.stats.retried_chunks += 1
            remaining = dict(chunk)
            last_error: BaseException | None = None
            for _attempt in range(max(1, self.retries)):
                try:
                    executed.update(self._run_serial(list(remaining.items())))
                    self.stats.fallback += len(remaining)
                    remaining = {}
                    break
                except Exception as error:  # pragma: no cover - defensive
                    last_error = error
            if remaining and last_error is not None:  # pragma: no cover
                raise last_error
        return executed
