"""Fan jobs out over a process pool, deterministically and resiliently.

The runner's contract: ``run(specs)`` returns one result per spec, in
spec order, and the values are byte-identical whatever the ``jobs``
setting — each job derives its own RNG streams from its seed, workers
share no state, and ordering is restored after the gather.  Parallelism
can therefore never change science, only wall-clock.  The same holds
for every failure-handling path below: retries, fallbacks, resumes and
injected faults replay the identical pure computation, so recovery can
never change a number either — only whether it was obtained.

Scheduling is chunked: contiguous runs of pending jobs are grouped so
that one pool round-trip amortizes pickling over several simulations.
Chunks are gathered **as they complete** with a per-chunk deadline, so
one slow chunk cannot head-of-line-block the harvest of the others.

Failure policy (the part the paper would approve of):

* A chunk whose worker dies (``BrokenProcessPool``, OOM kill) or that
  exceeds its deadline is retried in-process — with the per-job
  deadline still enforced (on a watchdog thread), so a genuinely hung
  job surfaces as ``timed_out`` instead of hanging the sweep.
* Retries back off exponentially with *deterministic jitter* derived
  from the job key — the paper's own ``Tr`` lesson: simultaneous
  failures must not retry in lockstep, and seeded jitter keeps the
  schedule reproducible.
* ``retries=0`` means what it says: no retry, the first failure is
  final.  Deterministic errors (``ValueError``/``TypeError`` — a bad
  spec fails identically everywhere) are never retried at all.
* ``on_error="raise"`` (default) re-raises the first failure after
  the gather — completed work is already committed to the cache and
  checkpoint journal, so nothing is lost.  ``on_error="censor"``
  returns an empty :class:`JobResult` for failed jobs instead, so
  ensembles degrade to honest censoring rather than collapsing.

Every submitted job lands in exactly one :class:`RunReport` category
(ok / retried / cache_hit / resumed / timed_out / failed) — asserted
by the fault-injection suite in ``tests/test_parallel_faults.py``.
"""

from __future__ import annotations

import hashlib
import math
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..obs import obs
from .cache import ResultCache
from .checkpoint import CheckpointJournal
from .faults import FaultPlan
from .job import (
    JobResult,
    SimulationJob,
    batch_group_key,
    run_batch,
    run_job,
    run_jobs,
    run_jobs_observed,
)
from .report import RunReport
from .shm import ResultSlab, run_jobs_shm, shm_available

__all__ = [
    "JobTimeoutError",
    "ParallelRunner",
    "RunnerStats",
    "deterministic_jitter",
]

#: Backoff sleeps never exceed this many seconds, whatever the attempt.
BACKOFF_CAP = 30.0


class JobTimeoutError(TimeoutError):
    """A job exceeded its per-job deadline (pool chunk or in-process)."""


def deterministic_jitter(key: str, attempt: int) -> float:
    """Deterministic jitter factor in [0.5, 1.5) for backoff sleeps.

    Seeded from the job key and attempt number, so two runners
    retrying the same failed batch do not wake in lockstep (the
    paper's ``Tr`` prescription applied to our own retry loop) yet
    every rerun sleeps the same schedule.  Also the jitter behind the
    serving layer's ``Retry-After`` values (``repro.serve.queue``) —
    shed clients keyed by different jobs back off at different times.
    """
    digest = hashlib.sha256(f"{key}:{attempt}".encode("ascii")).digest()
    return 0.5 + int.from_bytes(digest[:8], "big") / 2**64


#: Backwards-compatible module-private alias (pre-serve spelling).
_jitter = deterministic_jitter


@dataclass
class RunnerStats:
    """Counters from the most recent :meth:`ParallelRunner.run` call."""

    submitted: int = 0
    cache_hits: int = 0
    resumed: int = 0
    executed: int = 0
    pooled: int = 0
    fallback: int = 0
    retried_chunks: int = 0
    timed_out: int = 0
    failed: int = 0
    censored: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class ParallelRunner:
    """Execute batches of :class:`SimulationJob` specs.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs in-process with no
        pool, no pickling, and no platform requirements.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are stored back (best-effort: a full disk warns
        and continues).
    chunk_size:
        Jobs per pool task.  Defaults to spreading the batch over
        roughly four chunks per worker, so stragglers rebalance.
    timeout:
        Optional per-job deadline in seconds.  A pool chunk gets
        ``timeout * len(chunk)``; in-process (and fallback) execution
        enforces ``timeout`` per job on a watchdog thread.
    retries:
        Re-attempts after the first failure of a job (``0`` = the
        first failure is final).  A chunk lost to a worker death or
        deadline consumes one attempt for each of its jobs.
        Deterministic ``ValueError``/``TypeError`` are never retried.
    backoff_base:
        First-retry backoff in seconds; attempt ``k`` sleeps
        ``backoff_base * 2**(k-1)`` scaled by deterministic jitter in
        [0.5, 1.5).  ``0`` disables sleeping (used by tests).
    on_error:
        ``"raise"`` — after gathering (and committing every completed
        job), re-raise the first failure.  ``"censor"`` — failed jobs
        yield an empty result (reads as censored downstream), the
        report says which.
    checkpoint:
        Optional :class:`CheckpointJournal`; journaled jobs are served
        without execution (outcome ``resumed``) and every completed
        job is appended, so an interrupted run resumes where it died.
    faults:
        Optional :class:`~repro.parallel.faults.FaultPlan` — the
        deterministic chaos hook, threaded through to workers and the
        cache.  ``None`` in production.
    transport:
        How pooled workers return results.  ``"pickle"`` (default)
        ships :class:`JobResult` objects through the pool.  ``"shm"``
        has workers write first-passage rows into one shared-memory
        slab (see :mod:`repro.parallel.shm`) and pickle only an
        acknowledgement — byte-identical results, no per-job
        deserialization in the parent.  Degrades to pickle when
        shared memory is unavailable or observability payloads must
        ride along; ignored when ``jobs == 1`` (nothing is shipped).
    """

    jobs: int = 1
    cache: ResultCache | None = None
    chunk_size: int | None = None
    timeout: float | None = None
    retries: int = 1
    backoff_base: float = 0.1
    on_error: str = "raise"
    checkpoint: CheckpointJournal | None = None
    faults: FaultPlan | None = None
    transport: str = "pickle"
    stats: RunnerStats = field(default_factory=RunnerStats, init=False)
    report: RunReport = field(default_factory=RunReport, init=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.on_error not in ("raise", "censor"):
            raise ValueError('on_error must be "raise" or "censor"')
        if self.transport not in ("pickle", "shm"):
            raise ValueError('transport must be "pickle" or "shm"')

    def run(self, specs: Sequence[SimulationJob]) -> list[JobResult]:
        """Execute every spec; results come back in spec order."""
        specs = list(specs)
        self.stats = RunnerStats(submitted=len(specs))
        self.report = RunReport()
        o = obs()
        try:
            with o.span("runner.run", submitted=len(specs), jobs=self.jobs):
                return self._run(specs)
        finally:
            # Mirror the per-job ledger into metrics on every exit
            # path — including an on_error="raise" escape — so the
            # RunReport and the metrics snapshot always reconcile.
            if o.enabled:
                o.metrics.merge_counts(
                    self.report.counts(), prefix="runner.jobs."
                )

    def _run(self, specs: list[SimulationJob]) -> list[JobResult]:
        results: list[JobResult | None] = [None] * len(specs)
        failures: dict[int, BaseException] = {}
        pending: list[tuple[int, SimulationJob]] = []

        for index, spec in enumerate(specs):
            key = spec.cache_key()
            if self.checkpoint is not None:
                journaled = self.checkpoint.lookup(spec)
                if journaled is not None:
                    results[index] = journaled
                    self.stats.resumed += 1
                    self.report.add(index, key, "resumed", attempts=0)
                    continue
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                results[index] = cached
                self.stats.cache_hits += 1
                self.report.add(index, key, "cache_hit", attempts=0)
                if self.checkpoint is not None:
                    self.checkpoint.record(spec, cached)
                continue
            pending.append((index, spec))

        def commit(index: int, spec: SimulationJob, result: JobResult, attempts: int):
            # Commit immediately, not after the gather: if a later job
            # fails and on_error="raise", this work is already durable.
            results[index] = result
            self.stats.executed += 1
            outcome = "retried" if attempts > 1 else "ok"
            self.report.add(index, spec.cache_key(), outcome, attempts=attempts)
            if self.cache is not None:
                self.cache.put(spec, result)
            if self.checkpoint is not None:
                self.checkpoint.record(spec, result)

        def fail(
            index: int,
            spec: SimulationJob,
            error: BaseException,
            attempts: int,
            timed_out: bool,
        ):
            failures[index] = error
            if timed_out:
                self.stats.timed_out += 1
            else:
                self.stats.failed += 1
            self.report.add(
                index,
                spec.cache_key(),
                "timed_out" if timed_out else "failed",
                attempts=attempts,
                error=repr(error),
            )

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                self._run_pooled(pending, commit, fail)
            else:
                self._run_serial(pending, commit, fail, first_attempt=0)

        if failures:
            if self.on_error == "raise":
                raise failures[min(failures)]
            for index in failures:
                # Censor: an empty first-passage record reads as "the
                # event was not observed", exactly like a run that hit
                # the horizon.  Never cached or journaled.
                results[index] = JobResult(first_passages={})
                self.stats.censored += 1
        return results  # type: ignore[return-value]  # every slot is filled

    # -- execution strategies -------------------------------------------------

    def _run_serial(
        self,
        pending: Sequence[tuple[int, SimulationJob]],
        commit: Callable,
        fail: Callable,
        first_attempt: int,
    ) -> None:
        singles: list[tuple[int, SimulationJob]] = []
        groups: dict[tuple, list[tuple[int, SimulationJob]]] = {}
        # Batch-engine jobs sharing a parameter point advance through
        # one kernel (same grouping the pool workers apply inside
        # run_jobs).  Chaos runs and fallback retries stay per-job so
        # fault hooks and attempt accounting keep their semantics.
        if self.faults is None and first_attempt == 0:
            for index, spec in pending:
                if spec.engine == "batch":
                    groups.setdefault(batch_group_key(spec), []).append(
                        (index, spec)
                    )
                else:
                    singles.append((index, spec))
        else:
            singles = list(pending)
        for group in groups.values():
            if len(group) == 1:
                singles.append(group[0])
            else:
                self._run_batch_group(group, commit, fail)
        singles.sort(key=lambda entry: entry[0])
        for index, spec in singles:
            self._run_single(index, spec, commit, fail, first_attempt)

    def _run_batch_group(
        self,
        group: list[tuple[int, SimulationJob]],
        commit: Callable,
        fail: Callable,
    ) -> None:
        """One shared kernel for a group of same-parameter batch jobs.

        Any failure — a deadline overrun of the whole group, a worker
        of one — falls back to per-job execution, which classifies and
        retries each job under the normal :meth:`_run_single` rules.
        The kernel's results are identical to the per-job path, so the
        fallback can never change a number.
        """
        o = obs()
        specs = [spec for _index, spec in group]
        span = o.span(
            "batch.run",
            key=specs[0].cache_key()[:12] if o.enabled else "",
            members=len(specs),
            engine="batch",
            where="inprocess",
        )
        with span:
            try:
                outcomes = self._execute_batch(specs)
            except Exception as error:
                span.set(outcome="fallback", error=type(error).__name__)
                o.emit(
                    "runner.batch_fallback",
                    f"batch group of {len(specs)} job(s) failed "
                    f"({type(error).__name__}); re-running per job",
                    jobs=len(specs),
                    error=repr(error),
                )
                for index, spec in group:
                    self._run_single(index, spec, commit, fail, first_attempt=0)
                return
            span.set(outcome="ok")
        for (index, spec), result in zip(group, outcomes):
            commit(index, spec, result, attempts=1)

    def _execute_batch(self, specs: list[SimulationJob]) -> list[JobResult]:
        """Run one batch group in-process, under its group deadline."""
        if self.timeout is None:
            return run_batch(specs)
        watchdog = ThreadPoolExecutor(max_workers=1)
        future = watchdog.submit(run_batch, specs)
        try:
            # The group gets the same budget its jobs would get singly.
            return future.result(timeout=self.timeout * len(specs))
        except FutureTimeoutError:
            future.cancel()
            raise JobTimeoutError(
                f"batch group of {len(specs)} job(s) exceeded its group "
                f"deadline ({self.timeout:g} s/job)"
            ) from None
        finally:
            watchdog.shutdown(wait=False)

    def _run_single(
        self,
        index: int,
        spec: SimulationJob,
        commit: Callable,
        fail: Callable,
        first_attempt: int = 0,
    ) -> None:
        """One job, in-process: deadline, retries, backoff, classification."""
        o = obs()
        key12 = spec.cache_key()[:12] if o.enabled else ""
        total_attempts = 1 + self.retries
        last_error: BaseException | None = None
        timed_out = False
        attempt = first_attempt
        while attempt < total_attempts:
            if attempt > 0:
                self._sleep_backoff(spec, attempt)
            span = o.span(
                "job.run",
                key=key12,
                seed=spec.seed,
                engine=spec.engine,
                attempt=attempt,
                where="inprocess",
            )
            with span:
                try:
                    result = self._execute(spec, attempt)
                except JobTimeoutError as error:
                    last_error, timed_out = error, True
                    span.set(outcome="timed_out")
                except (ValueError, TypeError) as error:
                    # Deterministic: a bad spec fails identically on
                    # every attempt, so retrying only burns time.
                    span.set(outcome="rejected")
                    fail(index, spec, error, attempts=attempt + 1, timed_out=False)
                    return
                except Exception as error:
                    last_error, timed_out = error, False
                    span.set(outcome="error", error=type(error).__name__)
                else:
                    span.set(outcome="ok")
                    commit(index, spec, result, attempts=attempt + 1)
                    return
            attempt += 1
        assert last_error is not None
        fail(index, spec, last_error, attempts=total_attempts, timed_out=timed_out)

    def _execute(self, spec: SimulationJob, attempt: int) -> JobResult:
        """Run one job in-process, under the per-job deadline if set."""
        if self.timeout is None:
            return run_job(spec, faults=self.faults, attempt=attempt)
        watchdog = ThreadPoolExecutor(max_workers=1)
        future = watchdog.submit(run_job, spec, self.faults, attempt)
        try:
            return future.result(timeout=self.timeout)
        except FutureTimeoutError:
            future.cancel()
            raise JobTimeoutError(
                f"job {spec.cache_key()[:12]} exceeded the {self.timeout} s "
                f"per-job deadline in-process (attempt {attempt})"
            ) from None
        finally:
            # Don't block on a hung job; the daemon-less thread ends
            # when the (finite) simulation or injected hang returns.
            watchdog.shutdown(wait=False)

    def _sleep_backoff(self, spec: SimulationJob, attempt: int) -> None:
        if self.backoff_base <= 0:
            return
        delay = self.backoff_base * 2 ** (attempt - 1)
        sleep_for = min(delay * _jitter(spec.cache_key(), attempt), BACKOFF_CAP)
        o = obs()
        with o.span("runner.backoff", attempt=attempt, seconds=sleep_for):
            time.sleep(sleep_for)
        if o.enabled:
            o.metrics.histogram("runner.backoff_seconds").observe(sleep_for)

    def _chunks(
        self, pending: Sequence[tuple[int, SimulationJob]]
    ) -> list[list[tuple[int, SimulationJob]]]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            size = max(1, math.ceil(len(pending) / (self.jobs * 4)))
        return [
            list(pending[start : start + size])
            for start in range(0, len(pending), size)
        ]

    def _run_pooled(
        self,
        pending: Sequence[tuple[int, SimulationJob]],
        commit: Callable,
        fail: Callable,
    ) -> None:
        o = obs()
        # Ship the observed worker entry point only when something
        # would collect its payloads; the plain path stays untouched.
        observed = o.enabled or o.profile
        chunks = self._chunks(pending)
        try:
            pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(chunks)))
        except (OSError, ValueError, ImportError, NotImplementedError):
            # No process support on this platform: stay in-process,
            # with the full (untouched) retry budget.
            o.emit(
                "runner.pool_fallback",
                f"process pool unavailable; running {len(pending)} job(s) "
                "in-process",
                pending=len(pending),
            )
            self.stats.fallback += len(pending)
            self._run_serial(pending, commit, fail, first_attempt=0)
            return

        # Shared-memory transport: one slab row per pending job,
        # workers write in place, the parent reads committed rows.
        # Degrades silently to pickle when shm can't be used — the
        # transports are byte-identical, so this only costs speed.
        slab: ResultSlab | None = None
        row_of: dict[int, int] = {}
        if self.transport == "shm" and not observed and shm_available():
            try:
                n_max = max(spec.n_nodes for _index, spec in pending)
                slab = ResultSlab.create(len(pending), n_max)
                row_of = {index: r for r, (index, _s) in enumerate(pending)}
            except OSError as error:
                o.emit(
                    "runner.shm_fallback",
                    f"shared-memory slab unavailable "
                    f"({type(error).__name__}); using pickle transport",
                    error=repr(error),
                )
                slab = None

        # (chunk, error, was_timeout) for every chunk lost in the pool.
        lost: list[tuple[list[tuple[int, SimulationJob]], BaseException, bool]] = []
        start = time.monotonic()
        chunk_of: dict[Future, list[tuple[int, SimulationJob]]] = {}
        # Per-chunk deadlines arm only once the chunk is actually
        # running, so queue time behind other chunks is never charged
        # against it; the batch deadline backstops a fully wedged pool.
        armed: dict[Future, float] = {}
        batch_deadline = (
            start + self.timeout * len(pending) if self.timeout is not None else None
        )

        def _expire(future: Future, message: str) -> None:
            future.cancel()
            lost.append((chunk_of[future], JobTimeoutError(message), True))

        # Per-chunk submit times (monotonic) — the worker.chunk span's
        # start minus this is the chunk's pool queueing delay.
        submitted_at: dict[Future, float] = {}
        # Jobs whose worker survived but whose slab row never got its
        # commit flag (a torn write): re-run in-process, never read.
        torn: list[tuple[int, SimulationJob]] = []
        try:
            for chunk in chunks:
                specs_only = [spec for _index, spec in chunk]
                if observed:
                    future = pool.submit(
                        run_jobs_observed,
                        specs_only,
                        self.faults,
                        0,
                        o.enabled,
                        o.profile,
                    )
                elif slab is not None:
                    future = pool.submit(
                        run_jobs_shm,
                        specs_only,
                        slab.name,
                        slab.rows,
                        slab.n_max,
                        [row_of[index] for index, _spec in chunk],
                        self.faults,
                        0,
                    )
                else:
                    future = pool.submit(run_jobs, specs_only, self.faults, 0)
                submitted_at[future] = time.monotonic()
                chunk_of[future] = chunk
            outstanding = set(chunk_of)
            while outstanding:
                now = time.monotonic()
                if self.timeout is not None:
                    for future in list(outstanding):
                        if future not in armed and future.running():
                            armed[future] = now + self.timeout * len(chunk_of[future])
                    for future in list(outstanding):
                        if future.done():
                            continue
                        if future in armed and now >= armed[future]:
                            _expire(
                                future,
                                f"pool chunk of {len(chunk_of[future])} job(s) "
                                f"exceeded its per-chunk deadline "
                                f"({self.timeout:g} s/job)",
                            )
                            outstanding.discard(future)
                        elif batch_deadline is not None and now >= batch_deadline:
                            _expire(
                                future,
                                f"batch exceeded its overall deadline "
                                f"({self.timeout:g} s/job over {len(pending)} jobs)",
                            )
                            outstanding.discard(future)
                if not outstanding:
                    break
                deadlines = [armed[f] for f in outstanding if f in armed]
                if batch_deadline is not None:
                    deadlines.append(batch_deadline)
                # Unarmed chunks poll at a coarse tick so arming isn't
                # starved while nothing completes.
                if self.timeout is not None and not deadlines:
                    deadlines.append(now + min(self.timeout, 0.1))
                wait_for = max(0.0, min(deadlines) - now) if deadlines else None
                done, outstanding = wait(
                    outstanding, timeout=wait_for, return_when=FIRST_COMPLETED
                )
                for future in done:
                    chunk = chunk_of[future]
                    try:
                        payload = future.result()
                    except Exception as error:
                        # Worker died (BrokenProcessPool, OOM kill),
                        # pickling trouble, or the job itself raised:
                        # the in-process fallback re-runs and
                        # re-classifies per job.
                        lost.append((chunk, error, False))
                        continue
                    if slab is not None:
                        # Only committed rows are results; an unset
                        # flag means the write tore mid-row.
                        for index, spec in chunk:
                            fp = slab.read_row(row_of[index])
                            if fp is None:
                                torn.append((index, spec))
                                continue
                            commit(
                                index,
                                spec,
                                JobResult(first_passages=fp),
                                attempts=1,
                            )
                            self.stats.pooled += 1
                        continue
                    if observed:
                        chunk_results, spans, profile_rows = payload
                        self._ingest_chunk(
                            o, spans, profile_rows, submitted_at.get(future)
                        )
                    else:
                        chunk_results = payload
                    for (index, spec), result in zip(chunk, chunk_results):
                        commit(index, spec, result, attempts=1)
                        self.stats.pooled += 1
        finally:
            # Timed-out workers may still be running; don't block on them.
            pool.shutdown(wait=not lost, cancel_futures=True)
            if slab is not None:
                # Unlink on every exit path — normal completion, an
                # on_error="raise" drain, or a crashed worker.
                slab.destroy()

        for chunk, error, was_timeout in lost:
            o.emit(
                "runner.chunk_lost",
                f"pool chunk of {len(chunk)} job(s) lost "
                f"({type(error).__name__}); "
                + ("no retry budget" if self.retries == 0 else "retrying in-process"),
                jobs=len(chunk),
                error=repr(error),
                timed_out=was_timeout,
            )
            if self.retries == 0:
                # No retry budget: the pool attempt was the only one.
                for index, spec in chunk:
                    fail(index, spec, error, attempts=1, timed_out=was_timeout)
                continue
            self.stats.retried_chunks += 1
            self.stats.fallback += len(chunk)
            for index, spec in chunk:
                # The pool attempt consumed attempt 0; the fallback
                # starts at attempt 1 with the deadline still enforced.
                self._run_single(index, spec, commit, fail, first_attempt=1)

        for index, spec in torn:
            error = RuntimeError(
                f"shm result row for job {spec.cache_key()[:12]} was never "
                "committed (torn write)"
            )
            o.emit(
                "runner.shm_torn",
                f"uncommitted shm row for job {spec.cache_key()[:12]}; "
                + ("no retry budget" if self.retries == 0 else "re-running in-process"),
                seed=spec.seed,
            )
            if self.retries == 0:
                fail(index, spec, error, attempts=1, timed_out=False)
                continue
            self.stats.fallback += 1
            self._run_single(index, spec, commit, fail, first_attempt=1)

    def _ingest_chunk(
        self,
        o,
        spans: list,
        profile_rows: list[dict],
        submitted: float | None,
    ) -> None:
        """Fold one pool chunk's shipped observability payloads in.

        Spans merge into the parent tracer (same monotonic epoch on
        Linux, so worker and parent timelines line up); the chunk's
        queueing delay — ``worker.chunk`` start minus submit time —
        lands in the ``runner.queue_delay_seconds`` histogram; profile
        rows accumulate for the post-run merge.
        """
        if spans:
            o.tracer.ingest(spans)
            if submitted is not None:
                head = next((s for s in spans if s.name == "worker.chunk"), None)
                if head is not None:
                    o.metrics.histogram("runner.queue_delay_seconds").observe(
                        max(0.0, head.t0 - submitted)
                    )
        if profile_rows:
            o.profile_rows.extend(profile_rows)
