"""Content-addressed on-disk cache of simulation results.

One JSON file per completed :class:`~repro.parallel.job.SimulationJob`
under ``results/cache/`` (or any directory you point it at), named by
the job's :meth:`~repro.parallel.job.SimulationJob.cache_key` — a
stable hash of the spec plus the model version tag.  Because the key
covers everything that determines the outcome, a hit can be returned
without any staleness check, and bumping
:data:`~repro.parallel.job.MODEL_VERSION` invalidates every old entry
by construction (their keys simply stop being looked up).

Entries also embed the spec and version they were computed from, so a
file that was hand-edited, truncated, or produced by a different model
version is detected and treated as a miss rather than trusted.

Robustness model (the cache is an accelerator, never a dependency):

* **Writes are best-effort.**  A full or read-only disk makes ``put``
  warn and count (`write_errors`) instead of killing an otherwise
  healthy run; the result is still returned to the caller.
* **Writes are collision-free.**  Temp files are unique per process
  (pid + counter), so two runners sharing a cache directory can never
  clobber each other's half-written entries; the final rename is
  atomic either way.
* **Corruption self-repairs.**  A defective entry found by ``get`` is
  quarantined to ``<key>.json.corrupt`` (evidence preserved, path
  freed for recomputation) rather than silently overwritten.
* **Maintenance is explicit.**  ``verify()`` audits every entry,
  ``repair()`` quarantines bad ones and sweeps stale temp files, and
  both are exposed as ``python -m repro cache verify|repair|clear``.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path

from ..obs import WARNING, obs
from ..obs.clock import monotonic, wall_time
from .job import MODEL_VERSION, JobResult, SimulationJob

__all__ = ["DEFAULT_CACHE_DIR", "STALE_TMP_AGE", "ResultCache"]

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = Path("results") / "cache"

#: A ``*.tmp`` file older than this (seconds) is debris from a dead
#: writer — no healthy put keeps one alive for more than moments.
STALE_TMP_AGE = 3600.0


class ResultCache:
    """Get/put simulation results keyed by job content hash.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first ``put``).  Defaults
        to ``results/cache/`` under the current working directory.
    faults:
        Optional :class:`~repro.parallel.faults.FaultPlan` driving
        injected write errors / corruption (tests only).
    """

    def __init__(
        self, root: str | os.PathLike | None = None, faults=None
    ) -> None:
        self.root = Path(root) if root is not None else DEFAULT_CACHE_DIR
        self.faults = faults
        self.hits = 0
        self.misses = 0
        self.write_errors = 0
        self.quarantined = 0
        self._tmp_counter = itertools.count()

    def path_for(self, job: SimulationJob) -> Path:
        """The file a job's result lives in (whether or not it exists)."""
        return self.root / f"{job.cache_key()}.json"

    # -- read side -----------------------------------------------------------

    def get(self, job: SimulationJob) -> JobResult | None:
        """Return the cached result, or None on a miss.

        Any defect — missing file, unparsable JSON, wrong model
        version, spec mismatch — counts as a miss.  Defective files
        are quarantined to ``*.corrupt`` so the next ``put`` writes a
        clean entry and the evidence survives for inspection.

        With the obs runtime on, hit/miss counts and lookup latency
        land in ``cache.hits`` / ``cache.misses`` /
        ``cache.get_seconds`` — the cache-I/O slice of a trace.
        """
        o = obs()
        if not o.enabled:
            return self._get(job)
        t0 = monotonic()
        result = self._get(job)
        o.metrics.histogram("cache.get_seconds").observe(monotonic() - t0)
        o.metrics.counter(
            "cache.hits" if result is not None else "cache.misses"
        ).inc()
        return result

    def _get(self, job: SimulationJob) -> JobResult | None:
        path = self.path_for(job)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if payload.get("model_version") != MODEL_VERSION:
                raise ValueError("model version mismatch")
            if payload.get("job") != job.to_dict():
                raise ValueError("job spec mismatch")
            result = JobResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path) -> Path | None:
        """Move a defective entry aside; returns the new path or None."""
        target = path.with_suffix(".json.corrupt")
        try:
            os.replace(path, target)
        except OSError:
            # Racing reader already moved it, or the directory is
            # read-only; either way the miss still stands.
            return None
        self.quarantined += 1
        obs().emit(
            "cache.quarantined",
            f"quarantined defective cache entry {path.name}",
            target=target.name,
        )
        obs().metrics.counter("cache.quarantined").inc()
        return target

    # -- write side ----------------------------------------------------------

    def put(self, job: SimulationJob, result: JobResult) -> Path | None:
        """Store a result; atomic and best-effort.

        Writes to a pid-unique temp file then renames, so concurrent
        runners never interleave.  On ``OSError`` (disk full,
        read-only mount) the failure is warned and counted in
        ``write_errors`` but never propagated — losing a cache entry
        must not lose the run.  Returns the entry path, or None when
        the write failed.

        With the obs runtime on, write latency lands in
        ``cache.put_seconds`` and successes in ``cache.puts``.
        """
        o = obs()
        if not o.enabled:
            return self._put(job, result)
        t0 = monotonic()
        path = self._put(job, result)
        o.metrics.histogram("cache.put_seconds").observe(monotonic() - t0)
        if path is not None:
            o.metrics.counter("cache.puts").inc()
        return path

    def _put(self, job: SimulationJob, result: JobResult) -> Path | None:
        path = self.path_for(job)
        tmp = self.root / f"{path.stem}.{os.getpid()}.{next(self._tmp_counter)}.tmp"
        payload = {
            "model_version": MODEL_VERSION,
            "job": job.to_dict(),
            "result": result.to_dict(),
        }
        try:
            if self.faults is not None:
                self.faults.on_cache_put(job)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
            os.replace(tmp, path)
        except OSError as error:
            self.write_errors += 1
            obs().emit(
                "cache.write_error",
                f"result cache write failed for {path.name} ({error}); "
                "continuing without caching this entry",
                level=WARNING,
                path=str(path),
                error=str(error),
            )
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                return None  # same unwritable disk; nothing more to do
            return None
        if self.faults is not None and self.faults.corrupts_entry(job):
            # Injected torn write: chop the entry mid-JSON.
            path.write_text(json.dumps(payload)[: len(str(payload)) // 3])
        return path

    # -- maintenance ---------------------------------------------------------

    def _entry_defect(self, path: Path) -> str | None:
        """Why an on-disk entry is unusable, or None if it is sound."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return "unreadable or not JSON"
        try:
            if payload.get("model_version") != MODEL_VERSION:
                return f"model version {payload.get('model_version')!r}"
            job = SimulationJob.from_dict(payload["job"])
            JobResult.from_dict(payload["result"])
            if job.cache_key() != path.stem:
                return "content does not match its key"
        except (ValueError, KeyError, TypeError) as error:
            return f"malformed entry ({error})"
        return None

    def _stale_tmps(self, max_age: float) -> list[Path]:
        now = wall_time()
        stale = []
        for tmp in self.root.glob("*.tmp"):
            try:
                if now - tmp.stat().st_mtime >= max_age:
                    stale.append(tmp)
            except OSError:
                continue  # vanished mid-scan: a live writer renamed it
        return sorted(stale)

    def verify(self, max_tmp_age: float = STALE_TMP_AGE) -> dict:
        """Audit every entry without changing anything.

        Returns ``{"entries", "valid", "corrupt": {name: why},
        "stale_tmp": [names], "quarantined", "claims"}`` — ``corrupt``
        covers unreadable files, version mismatches, and key/content
        drift; ``claims`` counts leftover single-flight files in the
        conventional ``claims/`` subdirectory (records, tombstones,
        heartbeat temps) so registry debris is at least *visible*
        here — pruning it is ``claims gc``'s job, not verify's.
        """
        report: dict = {
            "entries": 0,
            "valid": 0,
            "corrupt": {},
            "stale_tmp": [],
            "quarantined": 0,
            "claims": {"records": 0, "tombstones": 0, "beats": 0},
        }
        if not self.root.is_dir():
            return report
        for path in sorted(self.root.glob("*.json")):
            report["entries"] += 1
            defect = self._entry_defect(path)
            if defect is None:
                report["valid"] += 1
            else:
                report["corrupt"][path.name] = defect
        report["stale_tmp"] = [p.name for p in self._stale_tmps(max_tmp_age)]
        report["quarantined"] = sum(1 for _ in self.root.glob("*.corrupt"))
        claims_dir = self.root / "claims"
        if claims_dir.is_dir():
            report["claims"] = {
                "records": sum(1 for _ in claims_dir.glob("*.claim")),
                "tombstones": sum(1 for _ in claims_dir.glob("*.stale")),
                "beats": sum(1 for _ in claims_dir.glob("*.beat")),
            }
        return report

    def repair(self, max_tmp_age: float = STALE_TMP_AGE) -> dict:
        """Quarantine defective entries and sweep stale temp files.

        Returns ``{"quarantined": [names], "removed_tmp": [names]}``.
        Safe to run concurrently with readers: quarantine uses the
        same atomic rename ``get`` does.
        """
        done: dict = {"quarantined": [], "removed_tmp": []}
        if not self.root.is_dir():
            return done
        for path in sorted(self.root.glob("*.json")):
            if self._entry_defect(path) is not None:
                if self._quarantine(path) is not None:
                    done["quarantined"].append(path.name)
        for tmp in self._stale_tmps(max_tmp_age):
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                continue  # read-only or vanished; report only what went
            done["removed_tmp"].append(tmp.name)
        return done

    def clear(self) -> int:
        """Delete every cache entry (plus quarantine/temp debris);
        returns how many *entries* were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
            for debris in itertools.chain(
                self.root.glob("*.corrupt"), self.root.glob("*.tmp")
            ):
                debris.unlink(missing_ok=True)
        return removed

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(root={str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"write_errors={self.write_errors}, quarantined={self.quarantined})"
        )
