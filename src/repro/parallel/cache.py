"""Content-addressed on-disk cache of simulation results.

One JSON file per completed :class:`~repro.parallel.job.SimulationJob`
under ``results/cache/`` (or any directory you point it at), named by
the job's :meth:`~repro.parallel.job.SimulationJob.cache_key` — a
stable hash of the spec plus the model version tag.  Because the key
covers everything that determines the outcome, a hit can be returned
without any staleness check, and bumping
:data:`~repro.parallel.job.MODEL_VERSION` invalidates every old entry
by construction (their keys simply stop being looked up).

Entries also embed the spec and version they were computed from, so a
file that was hand-edited, truncated, or produced by a different model
version is detected and treated as a miss rather than trusted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .job import MODEL_VERSION, JobResult, SimulationJob

__all__ = ["DEFAULT_CACHE_DIR", "ResultCache"]

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = Path("results") / "cache"


class ResultCache:
    """Get/put simulation results keyed by job content hash.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first ``put``).  Defaults
        to ``results/cache/`` under the current working directory.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root) if root is not None else DEFAULT_CACHE_DIR
        self.hits = 0
        self.misses = 0

    def path_for(self, job: SimulationJob) -> Path:
        """The file a job's result lives in (whether or not it exists)."""
        return self.root / f"{job.cache_key()}.json"

    def get(self, job: SimulationJob) -> JobResult | None:
        """Return the cached result, or None on a miss.

        Any defect — missing file, unparsable JSON, wrong model
        version, spec mismatch — counts as a miss; the entry will be
        overwritten by the next ``put``.
        """
        path = self.path_for(job)
        try:
            payload = json.loads(path.read_text())
            if payload.get("model_version") != MODEL_VERSION:
                raise ValueError("model version mismatch")
            if payload.get("job") != job.to_dict():
                raise ValueError("job spec mismatch")
            result = JobResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, job: SimulationJob, result: JobResult) -> Path:
        """Store a result (atomic: write to a temp file, then rename)."""
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "model_version": MODEL_VERSION,
            "job": job.to_dict(),
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(root={str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
