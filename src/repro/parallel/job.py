"""Simulation job specs and the pure function that executes them.

A :class:`SimulationJob` captures everything that determines a
first-passage simulation's outcome — the (N, Tp, Tc, Tr) tuple, the
seed, the horizon, the direction, and which engine runs it.  Because
the spec is frozen, hashable, and serializes to a canonical dict, it
doubles as the key of the on-disk result cache and as the unit of work
shipped to pool workers.

:func:`run_job` is deliberately a module-level pure function:
``ProcessPoolExecutor`` can pickle it, and running the same job twice
— in this process, in a worker, or in a different session reading the
cache — yields the same :class:`JobResult` bit for bit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Sequence

from ..core.batch import BatchCascade
from ..core.engines import ENGINES, resolve_engine
from ..core.fastsim import CascadeModel
from ..core.model import ModelConfig, PeriodicMessagesModel
from ..core.parameters import RouterTimingParameters

__all__ = [
    "ENGINES",
    "MODEL_VERSION",
    "JobResult",
    "SimulationJob",
    "batch_group_key",
    "run_batch",
    "run_job",
    "run_jobs",
    "run_jobs_observed",
    "validate_engine",
]

#: Bump whenever a change alters simulation trajectories (RNG streams,
#: model semantics, tracker behaviour).  The tag is folded into every
#: cache key, so stale entries from older model versions simply miss.
MODEL_VERSION = "fj93-model-1"

_DIRECTIONS = ("up", "down")

#: Back-compat alias: engine validation now lives in
#: :func:`repro.core.engines.resolve_engine`, the one shared check.
validate_engine = resolve_engine


@dataclass(frozen=True)
class SimulationJob:
    """Spec of one first-passage simulation.

    Attributes
    ----------
    n_nodes, tp, tc, tr:
        The model's timing parameters (flattened so the spec is a
        single frozen dataclass).
    seed:
        Master RNG seed; per-router streams derive from it.
    horizon:
        Simulation horizon in seconds.
    direction:
        ``"up"`` — unsynchronized start, record first times each
        cluster size is reached (Figure 10); ``"down"`` — synchronized
        start, record first times the per-round largest cluster falls
        to each size (Figure 11).
    engine:
        ``"des"``, ``"cascade"``, or ``"batch"`` (see
        :mod:`repro.core.engines`).  Batch jobs stay one-seed specs —
        the cache key, checkpoints, and dedup all keep working — and
        the executors regroup them into shared kernels at run time.
    topology:
        Coupling graph in :func:`repro.topo.parse_topology` grammar,
        normalized to canonical form at construction.  ``"clique"``
        (the default) is the paper's fully-coupled model and is
        *omitted* from :meth:`to_dict`, so every pre-topology cache
        key, checkpoint, and journal entry stays valid verbatim.  The
        DES engine only models the fully-coupled case, so non-clique
        topologies require ``"cascade"`` or ``"batch"``.
    """

    n_nodes: int
    tp: float
    tc: float
    tr: float
    seed: int
    horizon: float
    direction: str = "up"
    engine: str = "cascade"
    topology: str = "clique"

    def __post_init__(self) -> None:
        # Delegate parameter validation to the canonical dataclass.
        RouterTimingParameters(self.n_nodes, self.tp, self.tc, self.tr)
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"unknown direction {self.direction!r}; known: {', '.join(_DIRECTIONS)}"
            )
        validate_engine(self.engine)
        from ..topo import ensure_spec

        spec = ensure_spec(self.topology)
        object.__setattr__(self, "topology", spec.canonical())
        if self.engine == "des" and self.topology != "clique":
            from ..topo import Coupling

            if not Coupling(spec, self.n_nodes).is_complete:
                raise ValueError(
                    "engine 'des' only models the fully-coupled (clique) "
                    f"case; topology {self.topology!r} needs 'cascade' or "
                    "'batch'"
                )

    @classmethod
    def from_params(
        cls,
        params: RouterTimingParameters,
        seed: int,
        horizon: float,
        direction: str = "up",
        engine: str = "cascade",
        topology: str = "clique",
    ) -> "SimulationJob":
        """Build a job from a parameter tuple plus run settings."""
        return cls(
            n_nodes=params.n_nodes,
            tp=params.tp,
            tc=params.tc,
            tr=params.tr,
            seed=seed,
            horizon=horizon,
            direction=direction,
            engine=engine,
            topology=topology,
        )

    @property
    def params(self) -> RouterTimingParameters:
        """The job's timing parameters as the canonical dataclass."""
        return RouterTimingParameters(self.n_nodes, self.tp, self.tc, self.tr)

    def to_dict(self) -> dict:
        """Canonical plain-dict form (stable across sessions).

        The ``topology`` key appears only when non-default: a clique
        job serializes exactly as it did before topologies existed,
        so its cache key (and every cached result) is unchanged.
        """
        data = {
            "n_nodes": self.n_nodes,
            "tp": self.tp,
            "tc": self.tc,
            "tr": self.tr,
            "seed": self.seed,
            "horizon": self.horizon,
            "direction": self.direction,
            "engine": self.engine,
        }
        if self.topology != "clique":
            data["topology"] = self.topology
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationJob":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)

    def cache_key(self) -> str:
        """Content hash of the spec plus the model version tag.

        ``json.dumps`` with sorted keys is a canonical encoding, and
        Python's float repr round-trips exactly, so equal jobs hash
        equal across processes and sessions.
        """
        payload = json.dumps(
            {"job": self.to_dict(), "model_version": MODEL_VERSION},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job: the first-passage time per cluster size.

    ``first_passages`` maps cluster size -> first time (seconds) that
    size was reached (direction "up") or first time the per-round
    largest cluster dropped to it (direction "down").  Sizes the run
    never reached within the horizon are absent — censoring is
    represented by absence, exactly as in the serial code paths.
    """

    first_passages: dict[int, float]

    def terminal_time(self, job: SimulationJob) -> float | None:
        """The job's headline quantity, or None if censored.

        Full synchronization (size N) for direction "up"; full
        break-up (size 1) for direction "down".
        """
        target = job.n_nodes if job.direction == "up" else 1
        return self.first_passages.get(target)

    def to_dict(self) -> dict:
        """JSON-ready form (JSON object keys must be strings)."""
        return {
            "first_passages": {
                str(size): time for size, time in sorted(self.first_passages.items())
            }
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobResult":
        """Inverse of :meth:`to_dict` (restores integer sizes)."""
        return cls(
            first_passages={
                int(size): float(time)
                for size, time in data["first_passages"].items()
            }
        )


def run_job(
    job: SimulationJob, faults=None, attempt: int = 0
) -> JobResult:
    """Execute one job and return its first-passage record.

    Pure: the result depends only on the job spec.  Both engines use
    the same per-seed RNG stream derivation, so the choice of engine
    does not change the trajectory for the pure periodic model.

    ``faults`` is an optional
    :class:`~repro.parallel.faults.FaultPlan` consulted *before*
    execution — the explicit chaos-injection hook (it can raise,
    sleep, or kill a pool worker, but never alter a result);
    ``attempt`` tells the plan which retry this is.  Both default to
    the production no-op.
    """
    if faults is not None:
        faults.on_job(job, attempt)
    up = job.direction == "up"
    phases = "unsynchronized" if up else "synchronized"
    topology = None if job.topology == "clique" else job.topology
    if job.engine == "cascade":
        model = CascadeModel(
            job.params, seed=job.seed, initial_phases=phases, topology=topology
        )
        model.run(
            until=job.horizon,
            stop_on_full_sync=up,
            stop_on_full_unsync=not up,
        )
        tracker = model.tracker
    elif job.engine == "des":
        config = ModelConfig.from_parameters(
            job.params, seed=job.seed, keep_cluster_history=False
        )
        des = PeriodicMessagesModel(config, initial_phases=phases)
        des.run(
            until=job.horizon,
            stop_on_full_sync=up,
            stop_on_full_unsync=not up,
        )
        tracker = des.tracker
    elif job.engine == "batch":
        # A batch of one: bit-identical to the grouped kernel because
        # members are independent (tests/test_engine_differential.py).
        return run_batch([job])[0]
    else:  # pragma: no cover - __post_init__ rejects unknown engines
        raise ValueError(f"unknown engine {job.engine!r}")
    mapping = tracker.first_time_at_least if up else tracker.first_time_at_most
    return JobResult(first_passages=dict(mapping))


def batch_group_key(job: SimulationJob) -> tuple:
    """Everything but the seed: jobs agreeing here share one kernel."""
    return (
        job.n_nodes,
        job.tp,
        job.tc,
        job.tr,
        job.horizon,
        job.direction,
        job.topology,
    )


def run_batch(
    jobs: Sequence[SimulationJob],
    backend: str | None = None,
    out: tuple | None = None,
) -> list[JobResult]:
    """Execute a group of same-parameter jobs through one batch kernel.

    Every job must use ``engine="batch"`` and agree on
    :func:`batch_group_key`; only the seeds differ.  Results come back
    in job order and are bit-identical to running each job alone —
    the jobs stay individually cacheable and checkpointable.
    ``backend`` forces the RNG bank ("python"/"numpy"/"compiled");
    None uses the module default (:data:`repro.core.batch.BACKEND`).

    ``out`` — an optional ``(slab, row_indices)`` pair (see
    :class:`repro.parallel.shm.ResultSlab`) — streams each member's
    first-passage record straight into shared memory instead of
    building :class:`JobResult` objects; the call then returns ``[]``.
    This is the pool's zero-pickle result path: the float64 rows hold
    exactly the values the returned objects would.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    first = jobs[0]
    for job in jobs:
        if job.engine != "batch":
            raise ValueError(f"run_batch() requires engine='batch', got {job.engine!r}")
        if batch_group_key(job) != batch_group_key(first):
            raise ValueError("run_batch() requires jobs sharing one parameter point")
    up = first.direction == "up"
    batch = BatchCascade(
        first.params,
        seeds=[job.seed for job in jobs],
        initial_phases="unsynchronized" if up else "synchronized",
        backend=backend,
        topology=None if first.topology == "clique" else first.topology,
    )
    batch.run(
        until=first.horizon,
        stop_on_full_sync=up,
        stop_on_full_unsync=not up,
    )
    if out is not None:
        slab, row_indices = out
        for row, member in zip(row_indices, batch.members):
            slab.write_row(
                row,
                member.first_time_at_least if up else member.first_time_at_most,
            )
        return []
    return [
        JobResult(
            first_passages=dict(
                member.first_time_at_least if up else member.first_time_at_most
            )
        )
        for member in batch.members
    ]


def run_jobs(
    jobs: Sequence[SimulationJob], faults=None, attempt: int = 0
) -> list[JobResult]:
    """Execute a chunk of jobs (the pool worker entry point).

    Batch-engine jobs in the chunk are regrouped by parameter point
    and advanced through shared kernels — this is the "batch within a
    worker" half of the fan-out; the runner's chunking is the other.
    Results always come back in input order.

    The fault plan (picklable, stateless) travels to the worker with
    the chunk, so injected worker-side failures are as deterministic
    as the simulations themselves.  When a plan is armed, batch jobs
    run one by one through :func:`run_job` so the plan sees the same
    per-job hook sequence on every engine.
    """
    jobs = list(jobs)
    results: list[JobResult | None] = [None] * len(jobs)
    groups: dict[tuple, list[int]] = {}
    for i, job in enumerate(jobs):
        if job.engine == "batch" and faults is None:
            groups.setdefault(batch_group_key(job), []).append(i)
        else:
            results[i] = run_job(job, faults, attempt)
    for indices in groups.values():
        outcomes = run_batch([jobs[i] for i in indices])
        for i, result in zip(indices, outcomes):
            results[i] = result
    return results


def run_jobs_observed(
    jobs: Sequence[SimulationJob],
    faults=None,
    attempt: int = 0,
    trace: bool = True,
    profile: bool = False,
) -> tuple[list[JobResult], list, list[dict]]:
    """The observed pool entry point: results plus span/profile payloads.

    Used instead of :func:`run_jobs` when the parent's obs runtime is
    on.  The worker runs the chunk under a *local* tracer (workers
    never share the parent's global runtime), wraps each job in a
    ``job.run`` span, and returns ``(results, spans, profile_rows)``
    — the spans and rows are picklable records the parent ingests, so
    a pooled run yields one coherent multi-process trace.  The results
    list is computed by the identical :func:`run_job` calls, keeping
    the byte-identity guarantee trivially intact.
    """
    from ..obs.spans import Tracer

    tracer = Tracer(enabled=trace)
    profile_rows: list[dict] = []
    jobs = list(jobs)
    slots: list[JobResult | None] = [None] * len(jobs)

    def execute() -> None:
        with tracer.span("worker.chunk", jobs=len(jobs), attempt=attempt):
            groups: dict[tuple, list[int]] = {}
            for i, job in enumerate(jobs):
                if job.engine == "batch" and faults is None:
                    groups.setdefault(batch_group_key(job), []).append(i)
                    continue
                with tracer.span(
                    "job.run",
                    key=job.cache_key()[:12],
                    seed=job.seed,
                    engine=job.engine,
                    direction=job.direction,
                    n_nodes=job.n_nodes,
                    attempt=attempt,
                ):
                    slots[i] = run_job(job, faults, attempt)
            for indices in groups.values():
                members = [jobs[i] for i in indices]
                with tracer.span(
                    "batch.run",
                    key=members[0].cache_key()[:12],
                    members=len(members),
                    engine="batch",
                    direction=members[0].direction,
                    n_nodes=members[0].n_nodes,
                    attempt=attempt,
                ):
                    for i, result in zip(indices, run_batch(members)):
                        slots[i] = result

    if profile:
        from ..obs.profile import profiled

        with profiled(profile_rows):
            execute()
    else:
        execute()
    return slots, tracer.drain(), profile_rows
