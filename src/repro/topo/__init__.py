"""Topology-aware coupling: synchronization on graphs, not just a clique.

``repro.topo`` generalizes the paper's fully-coupled model to coupling
over an arbitrary graph: :class:`TopologySpec` names a graph family
(clique, ring, star, b-ary tree, Erdős–Rényi, time-varying switching
schedules) with deterministic seed-keyed generation;
:class:`Coupling` binds a spec to a node count; and
:func:`advance_coupled` is the generalized multi-cascade kernel shared
by the cascade and batch engines.  A complete coupling (``"clique"``,
or any spec whose generated graph is complete) dispatches to the
original fully-coupled engine paths, byte for byte.
"""

from .coupling import Coupling
from .kernel import advance_coupled
from .spec import (
    KINDS,
    TopologySpec,
    adjacency,
    components,
    diameter,
    ensure_spec,
    mean_degree,
    parse_topology,
    tree_size,
)

__all__ = [
    "KINDS",
    "Coupling",
    "TopologySpec",
    "adjacency",
    "advance_coupled",
    "components",
    "diameter",
    "ensure_spec",
    "mean_degree",
    "parse_topology",
    "tree_size",
]
