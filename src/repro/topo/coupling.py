"""Adjacency-masked reset propagation: the coupling graph at runtime.

A :class:`Coupling` is a :class:`~repro.topo.spec.TopologySpec`
instantiated on a concrete node count.  It answers the one question
the generalized cascade kernel asks — "may node ``v``'s expiry at time
``t`` join a cascade containing node ``u``?" — and reports whether the
graph is *complete at all times*, which is the engines' dispatch
condition: a complete coupling is exactly the paper's fully-coupled
model, so :class:`~repro.core.fastsim.CascadeModel` and
:class:`~repro.core.batch.BatchCascade` route complete couplings to
their original single-cascade code paths untouched (byte-identical
results, cache keys, and consumed-RNG positions included).
"""

from __future__ import annotations

from .spec import TopologySpec, adjacency, ensure_spec

__all__ = ["Coupling"]


class Coupling:
    """One topology spec bound to a node count.

    Parameters
    ----------
    spec:
        A :class:`TopologySpec` or its canonical string form.
    n:
        Number of routers; the graph is generated deterministically
        from ``(spec, n)``.
    """

    __slots__ = ("spec", "n", "is_complete", "_static", "_phase_adj", "_period")

    def __init__(self, spec: "TopologySpec | str", n: int) -> None:
        spec = ensure_spec(spec)
        if n < 1:
            raise ValueError("n must be >= 1")
        self.spec = spec
        self.n = n
        if spec.time_varying:
            self._static = None
            self._phase_adj = tuple(
                adjacency(phase, n) for phase in spec.phases
            )
            self._period = spec.period
            self.is_complete = all(
                self._complete(adj) for adj in self._phase_adj
            )
        else:
            self._static = adjacency(spec, n)
            self._phase_adj = None
            self._period = None
            self.is_complete = self._complete(self._static)

    @staticmethod
    def _complete(adj) -> bool:
        n = len(adj)
        return all(len(nbrs) == n - 1 for nbrs in adj)

    def adjacency_at(self, t: float):
        """The neighbor sets in force at simulated time ``t``."""
        if self._static is not None:
            return self._static
        index = int(t / self._period) % len(self._phase_adj)
        return self._phase_adj[index]

    def adjacent(self, u: int, v: int, t: float) -> bool:
        """Whether ``u`` and ``v`` are coupled at time ``t``.

        For time-varying specs the edge set is evaluated at the
        *join* time — the instant ``v``'s routing message would land
        on ``u`` — which is the documented membership rule of the
        generalized cascade (see DESIGN.md §13).
        """
        if self._static is not None:
            return v in self._static[u]
        return v in self.adjacency_at(t)[u]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Coupling({self.spec.canonical()!r}, n={self.n})"
