"""Topology specs: which routers hear which timer resets.

The paper's model is fully coupled — every router processes every
routing message, so one timer expiry extends *everyone's* busy period.
The natural generalization (pulse-coupled oscillators on trees [Lyu],
synchronization in dynamic networks [Charron-Bost & Moran]) couples
routers over an arbitrary graph: a reset cascade can only capture a
router adjacent to one of the cascade's current members.

A :class:`TopologySpec` names one such coupling graph *family* — the
graph itself is generated deterministically once the node count N is
known.  Specs are tiny frozen values with a canonical string form
(``"clique"``, ``"ring"``, ``"tree(b=2)"``,
``"erdos_renyi(p=0.25,seed=7)"``, ``"switching(ring|star,period=60.0)"``)
so they travel inside :class:`~repro.parallel.job.SimulationJob`
specs, cache keys, campaign files, and HTTP bodies as plain strings.

Determinism contract: graph generation uses the repo's own Lehmer
generator (never ``np.random`` — ``repro.tools.lint_determinism``
covers this package), keyed on ``(spec.seed, n)``, so every host
expanding the same spec builds the same adjacency forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..rng.lehmer import MODULUS, LehmerGenerator

__all__ = [
    "KINDS",
    "TopologySpec",
    "adjacency",
    "components",
    "diameter",
    "ensure_spec",
    "mean_degree",
    "parse_topology",
    "tree_size",
]

#: The topology families a spec can name.  ``switching`` is the
#: time-varying family: it cycles through its sub-specs' graphs with a
#: fixed dwell period (the link-schedule model of Charron-Bost &
#: Moran, specialized to periodic schedules).
KINDS = ("clique", "ring", "star", "tree", "erdos_renyi", "switching")

#: Number formatting for canonical strings: ``repr`` round-trips
#: float64 exactly, so equal specs canonicalize to equal strings.


def _fmt(value: float) -> str:
    return repr(float(value))


@dataclass(frozen=True)
class TopologySpec:
    """One coupling-graph family, sized later by the job's ``n_nodes``.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    b:
        Branching factor for ``tree`` (node ``i``'s parent is
        ``(i - 1) // b``; ``b=1`` is a path).
    p:
        Edge probability for ``erdos_renyi`` (G(n, p)).
    seed:
        Generation seed for ``erdos_renyi``; folded with ``n`` so the
        same spec yields the same graph on every host.
    period:
        Dwell time in seconds for ``switching`` — the active sub-graph
        at time ``t`` is ``phases[int(t / period) % len(phases)]``.
    phases:
        The ``switching`` sub-specs, in schedule order (one level of
        nesting only).
    """

    kind: str
    b: int | None = None
    p: float | None = None
    seed: int = 1
    period: float | None = None
    phases: tuple["TopologySpec", ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; known: {', '.join(KINDS)}"
            )
        if self.kind == "tree":
            if self.b is None or int(self.b) < 1:
                raise ValueError("tree topology needs a branching factor b >= 1")
            object.__setattr__(self, "b", int(self.b))
        elif self.b is not None:
            raise ValueError(f"topology {self.kind!r} takes no branching factor")
        if self.kind == "erdos_renyi":
            if self.p is None or not 0.0 <= float(self.p) <= 1.0:
                raise ValueError("erdos_renyi needs an edge probability p in [0, 1]")
            object.__setattr__(self, "p", float(self.p))
            object.__setattr__(self, "seed", int(self.seed))
        elif self.p is not None:
            raise ValueError(f"topology {self.kind!r} takes no edge probability")
        if self.kind == "switching":
            if not self.phases:
                raise ValueError("switching topology needs at least one phase")
            if self.period is None or float(self.period) <= 0:
                raise ValueError("switching topology needs a positive period")
            object.__setattr__(self, "period", float(self.period))
            object.__setattr__(self, "phases", tuple(self.phases))
            for phase in self.phases:
                if phase.kind == "switching":
                    raise ValueError("switching phases cannot nest further switching")
        else:
            if self.period is not None:
                raise ValueError(f"topology {self.kind!r} takes no period")
            if self.phases:
                raise ValueError(f"topology {self.kind!r} takes no phases")

    def canonical(self) -> str:
        """The spec's canonical string form (parses back to ``self``)."""
        if self.kind == "tree":
            return f"tree(b={self.b})"
        if self.kind == "erdos_renyi":
            return f"erdos_renyi(p={_fmt(self.p)},seed={self.seed})"
        if self.kind == "switching":
            inner = "|".join(phase.canonical() for phase in self.phases)
            return f"switching({inner},period={_fmt(self.period)})"
        return self.kind

    @property
    def time_varying(self) -> bool:
        """Whether the coupling graph changes over simulated time."""
        return self.kind == "switching"

    def graph_at(self, t: float) -> "TopologySpec":
        """The static spec active at time ``t`` (self when static)."""
        if self.kind != "switching":
            return self
        index = int(t / self.period) % len(self.phases)
        return self.phases[index]


def ensure_spec(topology: "TopologySpec | str") -> TopologySpec:
    """Coerce a spec-or-string to a :class:`TopologySpec`."""
    if isinstance(topology, TopologySpec):
        return topology
    return parse_topology(topology)


def _split_top_level(text: str, sep: str) -> list[str]:
    """Split on ``sep`` outside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced parentheses in topology {text!r}")
        if ch == sep and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ValueError(f"unbalanced parentheses in topology {text!r}")
    parts.append("".join(current))
    return parts


def parse_topology(text: str) -> TopologySpec:
    """Parse a topology string (``"ring"``, ``"tree(b=2)"``, ...).

    The accepted grammar is ``kind`` or ``kind(key=value,...)``;
    ``switching`` takes its sub-specs as a ``|``-separated first
    argument: ``switching(ring|star,period=60)``.  Bare ``tree`` and
    ``erdos_renyi`` use the defaults ``b=2`` and ``p=0.5``.
    Whitespace is ignored.  Raises :class:`ValueError` on anything
    else.
    """
    if not isinstance(text, str):
        raise ValueError(f"topology must be a string, got {type(text).__name__}")
    compact = "".join(text.split())
    if not compact:
        raise ValueError("topology must be non-empty")
    if "(" not in compact:
        name, args = compact, ""
    else:
        name, _, rest = compact.partition("(")
        if not rest.endswith(")"):
            raise ValueError(f"unbalanced parentheses in topology {text!r}")
        args = rest[:-1]
    if name not in KINDS:
        raise ValueError(
            f"unknown topology kind {name!r}; known: {', '.join(KINDS)}"
        )
    positional: list[str] = []
    keywords: dict[str, str] = {}
    if args:
        for part in _split_top_level(args, ","):
            if not part:
                raise ValueError(f"empty argument in topology {text!r}")
            if "=" in part and "(" not in part.split("=", 1)[0]:
                key, _, value = part.partition("=")
                if key in keywords:
                    raise ValueError(f"duplicate argument {key!r} in topology {text!r}")
                keywords[key] = value
            else:
                positional.append(part)

    def _want(allowed: set[str]) -> None:
        unknown = sorted(set(keywords) - allowed)
        if unknown:
            raise ValueError(
                f"topology {name!r} got unknown argument(s): {', '.join(unknown)}"
            )

    try:
        if name == "tree":
            _want({"b"})
            if positional:
                raise ValueError("tree takes exactly one argument: b=<int>")
            return TopologySpec(kind="tree", b=int(keywords.get("b", 2)))
        if name == "erdos_renyi":
            _want({"p", "seed"})
            if positional:
                raise ValueError("erdos_renyi takes p=<float> and optional seed=<int>")
            return TopologySpec(
                kind="erdos_renyi",
                p=float(keywords.get("p", 0.5)),
                seed=int(keywords.get("seed", 1)),
            )
        if name == "switching":
            _want({"period"})
            if len(positional) != 1 or "period" not in keywords:
                raise ValueError(
                    "switching takes a |-separated phase list and period=<seconds>"
                )
            phases = tuple(
                parse_topology(part) for part in _split_top_level(positional[0], "|")
            )
            return TopologySpec(
                kind="switching", period=float(keywords["period"]), phases=phases
            )
    except ValueError:
        raise
    except (TypeError, OverflowError) as error:
        raise ValueError(f"bad argument in topology {text!r}: {error}")
    if positional or keywords:
        raise ValueError(f"topology {name!r} takes no arguments")
    return TopologySpec(kind=name)


# -- deterministic graph generation ---------------------------------------


def _er_generator(seed: int, n: int) -> LehmerGenerator:
    """The Lehmer stream for one (seed, n) Erdős–Rényi instance.

    The mix mirrors the engines' stream derivation style (Knuth
    multiplicative hash + an index offset) so distinct (seed, n) pairs
    land on well-separated states.
    """
    mixed = (int(seed) * 2654435761 + n * 40503 + 11) % MODULUS
    return LehmerGenerator(mixed or 1)


def adjacency(spec: "TopologySpec | str", n: int) -> tuple[frozenset[int], ...]:
    """Neighbor sets of the spec's graph on ``n`` nodes.

    Self-loops never occur; the graph is undirected.  For
    ``switching`` specs this is the *union* graph (a pair is adjacent
    here iff adjacent in some phase) — per-phase graphs come from
    ``adjacency(spec.graph_at(t), n)``.
    """
    spec = ensure_spec(spec)
    if n < 1:
        raise ValueError("n must be >= 1")
    neighbors: list[set[int]] = [set() for _ in range(n)]

    def connect(u: int, v: int) -> None:
        neighbors[u].add(v)
        neighbors[v].add(u)

    if spec.kind == "clique":
        for u in range(n):
            for v in range(u + 1, n):
                connect(u, v)
    elif spec.kind == "ring":
        if n == 2:
            connect(0, 1)
        elif n > 2:
            for u in range(n):
                connect(u, (u + 1) % n)
    elif spec.kind == "star":
        for v in range(1, n):
            connect(0, v)
    elif spec.kind == "tree":
        for v in range(1, n):
            connect(v, (v - 1) // spec.b)
    elif spec.kind == "erdos_renyi":
        gen = _er_generator(spec.seed, n)
        # Fixed lexicographic pair order makes the draw sequence (and
        # therefore the graph) a pure function of (seed, n).
        for u in range(n):
            for v in range(u + 1, n):
                if gen.random() < spec.p:
                    connect(u, v)
    elif spec.kind == "switching":
        for phase in spec.phases:
            for u, nbrs in enumerate(adjacency(phase, n)):
                neighbors[u].update(nbrs)
    else:  # pragma: no cover - __post_init__ rejects unknown kinds
        raise ValueError(f"unknown topology kind {spec.kind!r}")
    return tuple(frozenset(nbrs) for nbrs in neighbors)


def tree_size(b: int, d: int) -> int:
    """Node count of the complete ``b``-ary tree of depth ``d``.

    Depth 0 is the root alone.  Used by fig16 to pick ``n`` values
    whose tree diameters grow one level at a time.
    """
    if b < 1 or d < 0:
        raise ValueError("need b >= 1 and d >= 0")
    if b == 1:
        return d + 1
    return (b ** (d + 1) - 1) // (b - 1)


# -- graph measures (exact, for the fig16/fig17 axes) ----------------------


def components(adj: Sequence[frozenset[int]]) -> list[list[int]]:
    """Connected components, each sorted, in order of smallest member."""
    n = len(adj)
    seen = [False] * n
    out: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        comp = []
        while stack:
            u = stack.pop()
            comp.append(u)
            for v in sorted(adj[u]):
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)
        out.append(sorted(comp))
    return out


def diameter(adj: Sequence[frozenset[int]]) -> int | None:
    """Longest shortest path (hops), or None when disconnected."""
    n = len(adj)
    if n == 0:
        return None
    best = 0
    for source in range(n):
        dist = {source: 0}
        frontier = [source]
        while frontier:
            nxt = []
            for u in frontier:
                for v in adj[u]:
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        nxt.append(v)
            frontier = nxt
        if len(dist) < n:
            return None
        best = max(best, max(dist.values()))
    return best


def mean_degree(adj: Sequence[frozenset[int]]) -> float:
    """Average neighbor count (the fig17 x-axis)."""
    if not adj:
        return 0.0
    return sum(len(nbrs) for nbrs in adj) / len(adj)
