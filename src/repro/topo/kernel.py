"""The generalized multi-cascade kernel for graph-coupled resets.

The paper's cascade rule assumes full coupling: the earliest pending
expiry opens *the* busy window, every later expiry inside it joins,
and everyone resets together when the window closes.  On an arbitrary
graph several cascades can be in flight at once, and an expiry may
only join a cascade it is *adjacent* to.  This module implements that
generalization once, shared verbatim by
:class:`~repro.core.fastsim.CascadeModel` and the per-member scalar
path of :class:`~repro.core.batch.BatchCascade` — which is what makes
cascade-vs-batch byte-identity on non-clique topologies structural
rather than coincidental.

Semantics (the deterministic rule set, documented in DESIGN.md §13):

* Pending expiries are processed in ``(time, node)`` heap order.
* An expiry at ``t`` joins the earliest-created active cascade whose
  window satisfies ``t <= window`` and that contains at least one
  member adjacent to the node *at time t*; joining grows that
  cascade's window by ``Tc``.  Cascades never merge.
* An expiry adjacent to no joinable cascade opens a new one with
  window ``t + Tc``.
* A cascade closes at its window: all members reset simultaneously at
  the window time and redraw their intervals, both in join order.
  Same-window closes resolve in creation order; a same-time pending
  expiry is processed *before* the close (it may still join, since
  the join test is ``<=`` — exactly the fully-coupled engine's rule).
* A cascade whose window outlives the horizon never closes in this
  call: its members' original expiries are restored to the heap, so a
  later call with a larger horizon resumes exactly here.

On a complete graph at most one cascade is ever active and every
pending expiry ``<= window`` joins it, so the rule collapses to the
paper's single-cascade rule — same resets, same redraw order, same
consumed-RNG positions (proven against the fully-coupled engines in
``tests/test_topo_properties.py``).  The engines still dispatch
complete couplings to their original code paths; this kernel is the
non-clique path.
"""

from __future__ import annotations

import heapq

__all__ = ["advance_coupled"]

_INF = float("inf")


def advance_coupled(
    heap: list,
    coupling,
    tracker,
    draw,
    tc: float,
    until: float,
    stop_on_full_sync: bool = False,
    stop_on_full_unsync: bool = False,
    probe=None,
) -> tuple[float | None, int, bool]:
    """Advance graph-coupled cascades until the horizon or a stop.

    Parameters
    ----------
    heap:
        Mutable heap of ``(expiry_time, node)`` pairs — the caller's
        persistent pending-expiry state.  Mutated in place; on return
        it holds exactly the expiries still pending (including the
        restored members of cascades that outlived the horizon).
    coupling:
        A :class:`~repro.topo.coupling.Coupling` (or anything with an
        ``adjacent(u, v, t)`` method).
    tracker:
        A :class:`~repro.core.clusters.ClusterTracker`; receives every
        reset in close order and is ``finish()``-ed before return.
    draw:
        ``draw(node) -> float`` — consumes one interval draw from the
        node's stream.  Streams are consumed in join order at each
        close, mirroring the fully-coupled engines' pop order.
    tc:
        Per-message processing cost (the window increment).
    until:
        Horizon in seconds.
    stop_on_full_sync / stop_on_full_unsync:
        Checked after each cascade close, as in ``CascadeModel.run``.
    probe:
        Optional simulation probe; gets ``on_cascade(window, members)``
        with the members' original ``(expiry_time, node)`` pairs.

    Returns ``(stop_time, cascades_closed, stopped)``: ``stop_time``
    is the time of the last close when a stop condition fired (None
    when the run reached the horizon), ``cascades_closed`` counts
    closes, and ``stopped`` says whether a stop condition ended the
    run early.
    """
    cascades: list[list] = []  # [window, [(expiry_time, node), ...]] in creation order
    closed = 0

    def _restore_active() -> None:
        for cascade in cascades:
            for entry in cascade[1]:
                heapq.heappush(heap, entry)

    while True:
        exp_t = heap[0][0] if heap else _INF
        close_i = -1
        close_t = _INF
        for index, cascade in enumerate(cascades):
            if cascade[0] < close_t:
                close_t = cascade[0]
                close_i = index
        if exp_t <= close_t and exp_t <= until:
            t, node = heapq.heappop(heap)
            joined = None
            for cascade in cascades:
                if t <= cascade[0] and any(
                    coupling.adjacent(member, node, t)
                    for _e, member in cascade[1]
                ):
                    joined = cascade
                    break
            if joined is not None:
                joined[1].append((t, node))
                joined[0] += tc
            else:
                cascades.append([t + tc, [(t, node)]])
        elif close_t <= until:
            window, members = cascades.pop(close_i)
            closed += 1
            if probe is not None:
                probe.on_cascade(window, list(members))
            for _e, node in members:
                tracker.record_reset(window, node)
            for _e, node in members:
                heapq.heappush(heap, (window + draw(node), node))
            if stop_on_full_sync and tracker.is_fully_synchronized():
                _restore_active()
                tracker.finish()
                return window, closed, True
            if stop_on_full_unsync and tracker.is_fully_unsynchronized():
                _restore_active()
                tracker.finish()
                return window, closed, True
        else:
            break
    _restore_active()
    tracker.finish()
    return None, closed, False
