"""``python -m repro`` — run figure reproductions from the shell."""

from .experiments.cli import main

raise SystemExit(main())
