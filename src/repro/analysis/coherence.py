"""Phase-coherence measures of synchronization.

The paper quantifies synchronization through the size of the largest
cluster.  As an extension we also provide the Kuramoto order
parameter: mapping each router's time-offset within the round onto a
phase angle, the magnitude ``R`` of the mean unit phasor is ~0 for
uniformly spread offsets and 1 for perfect synchronization.  ``R``
responds smoothly where cluster size is quantized, which makes it a
useful secondary diagnostic for the phase transition.
"""

from __future__ import annotations

import cmath
import math
from typing import Sequence

__all__ = ["order_parameter", "mean_phase", "offsets_to_phases", "circular_variance"]


def offsets_to_phases(offsets: Sequence[float], period: float) -> list[float]:
    """Map time-offsets within a round of length ``period`` to angles in radians."""
    if period <= 0:
        raise ValueError("period must be positive")
    return [2.0 * math.pi * ((value % period) / period) for value in offsets]


def order_parameter(phases: Sequence[float]) -> float:
    """Kuramoto order parameter ``R`` in [0, 1].

    ``R = |mean(exp(i * phase))|``: 1 means all phases equal, values
    near 0 mean the phases are spread around the circle.
    """
    if not phases:
        raise ValueError("order_parameter of empty phase list")
    total = sum(cmath.exp(1j * phase) for phase in phases)
    return abs(total) / len(phases)


def mean_phase(phases: Sequence[float]) -> float:
    """Circular mean angle in ``[0, 2*pi)`` (undefined inputs raise)."""
    if not phases:
        raise ValueError("mean_phase of empty phase list")
    total = sum(cmath.exp(1j * phase) for phase in phases)
    if abs(total) < 1e-12:
        raise ValueError("mean phase undefined: phasors cancel")
    return cmath.phase(total) % (2.0 * math.pi)


def circular_variance(phases: Sequence[float]) -> float:
    """Circular variance ``1 - R`` in [0, 1]."""
    return 1.0 - order_parameter(phases)
