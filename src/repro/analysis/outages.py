"""Outage extraction from packet delivery records.

Figure 3 of the paper plots, for an audio stream, the duration of each
loss event against the time it occurred: short random blips plus large
periodic spikes every 30 seconds (the RIP update period).  These
helpers turn a per-packet delivered/lost record into that outage list
and characterize its periodic structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Outage", "extract_outages", "periodic_spike_lags", "loss_rate_in_windows"]


@dataclass(frozen=True)
class Outage:
    """A maximal run of consecutive lost packets.

    Attributes
    ----------
    start_time:
        Send time of the first lost packet in the run.
    duration:
        Time from the first lost packet to the last, plus one packet
        interval (so a single lost packet has duration = interval).
    packets_lost:
        Number of packets in the run.
    """

    start_time: float
    duration: float
    packets_lost: int


def extract_outages(
    send_times: Sequence[float],
    delivered: Sequence[bool],
) -> list[Outage]:
    """Collapse a per-packet loss record into maximal outages.

    Parameters
    ----------
    send_times:
        Monotone non-decreasing send timestamps, one per packet.
    delivered:
        Parallel flags; False marks a lost packet.
    """
    if len(send_times) != len(delivered):
        raise ValueError("send_times and delivered must have equal length")
    for earlier, later in zip(send_times, send_times[1:]):
        if later < earlier:
            raise ValueError("send_times must be non-decreasing")
    outages: list[Outage] = []
    run_start: float | None = None
    run_count = 0
    last_lost_time = 0.0
    intervals = [b - a for a, b in zip(send_times, send_times[1:])]
    typical_interval = sorted(intervals)[len(intervals) // 2] if intervals else 0.0

    def close_run() -> None:
        nonlocal run_start, run_count
        if run_start is not None:
            duration = (last_lost_time - run_start) + typical_interval
            outages.append(Outage(run_start, duration, run_count))
            run_start = None
            run_count = 0

    for time, ok in zip(send_times, delivered):
        if ok:
            close_run()
        else:
            if run_start is None:
                run_start = time
            run_count += 1
            last_lost_time = time
    close_run()
    return outages


def periodic_spike_lags(
    outages: Sequence[Outage],
    min_duration: float,
) -> list[float]:
    """Gaps between successive *large* outages.

    Filtering by ``min_duration`` separates the periodic spikes from
    random single-packet blips; for a synchronized-RIP trace the
    returned gaps concentrate near 30 seconds.
    """
    big = sorted((o for o in outages if o.duration >= min_duration), key=lambda o: o.start_time)
    return [later.start_time - earlier.start_time for earlier, later in zip(big, big[1:])]


def loss_rate_in_windows(
    send_times: Sequence[float],
    delivered: Sequence[bool],
    window_starts: Sequence[float],
    window_length: float,
) -> list[float]:
    """Per-window loss fraction (NaN for windows containing no packets).

    Used to check the paper's observation that "during these events the
    packet loss rate ranges from 50 to 95%".
    """
    if window_length <= 0:
        raise ValueError("window_length must be positive")
    rates: list[float] = []
    for start in window_starts:
        total = 0
        lost = 0
        for time, ok in zip(send_times, delivered):
            if start <= time < start + window_length:
                total += 1
                if not ok:
                    lost += 1
        rates.append(lost / total if total else math.nan)
    return rates
