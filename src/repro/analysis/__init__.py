"""Measurement analysis: autocorrelation, outages, coherence, statistics."""

from .asciiplot import line, log_safe, scatter
from .autocorrelation import autocorrelation, dominant_lag, fill_losses
from .coherence import circular_variance, mean_phase, offsets_to_phases, order_parameter
from .outages import Outage, extract_outages, loss_rate_in_windows, periodic_spike_lags
from .statistics import (
    SummaryStats,
    batch_means_ci,
    geometric_mean,
    median,
    summarize,
)
from .timeseries import Series, find_peaks, resample_step, runs_of, time_offsets

__all__ = [
    "line",
    "log_safe",
    "scatter",
    "autocorrelation",
    "dominant_lag",
    "fill_losses",
    "circular_variance",
    "mean_phase",
    "offsets_to_phases",
    "order_parameter",
    "Outage",
    "extract_outages",
    "loss_rate_in_windows",
    "periodic_spike_lags",
    "SummaryStats",
    "batch_means_ci",
    "geometric_mean",
    "median",
    "summarize",
    "Series",
    "find_peaks",
    "resample_step",
    "runs_of",
    "time_offsets",
]
