"""Statistical helpers for simulation output analysis.

Simulation output is autocorrelated, so naive i.i.d. confidence
intervals are wrong; the batch-means method splits a long run into
batches whose means are approximately independent.  Also provides the
small general-purpose summaries the experiment drivers report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["SummaryStats", "summarize", "batch_means_ci", "geometric_mean", "median"]

# Two-sided 95% t quantiles for 1..30 degrees of freedom; beyond 30 we
# use the normal value.  (scipy is available but a table keeps this
# module dependency-free and exact for the df range we use.)
_T_95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def _t_quantile_95(df: int) -> float:
    if df < 1:
        raise ValueError("need at least one degree of freedom")
    return _T_95[df - 1] if df <= len(_T_95) else 1.96


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> SummaryStats:
    """Mean / stddev / extremes of a non-empty sample."""
    if not values:
        raise ValueError("summarize of empty sample")
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
    return SummaryStats(n, mean, math.sqrt(var), min(values), max(values))


def batch_means_ci(
    observations: Sequence[float],
    batches: int = 10,
) -> tuple[float, float]:
    """Mean and 95% half-width via the method of batch means.

    The run is split into ``batches`` equal contiguous batches (a tail
    shorter than a batch is dropped); the batch means are treated as
    approximately i.i.d. normal.
    """
    if batches < 2:
        raise ValueError("need at least two batches")
    n = len(observations)
    batch_size = n // batches
    if batch_size < 1:
        raise ValueError(f"too few observations ({n}) for {batches} batches")
    means = []
    for b in range(batches):
        chunk = observations[b * batch_size : (b + 1) * batch_size]
        means.append(sum(chunk) / batch_size)
    grand = sum(means) / batches
    var = sum((m - grand) ** 2 for m in means) / (batches - 1)
    half_width = _t_quantile_95(batches - 1) * math.sqrt(var / batches)
    return grand, half_width


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    if not values:
        raise ValueError("geometric_mean of empty sample")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def median(values: Sequence[float]) -> float:
    """Sample median (average of the middle two for even counts)."""
    if not values:
        raise ValueError("median of empty sample")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])
