"""Time-series utilities shared by the experiment drivers.

Covers the mundane transformations the figures need: offset-within-
round computation (Figures 4/5), series resampling, run-length
encodings, and simple peak detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["time_offsets", "resample_step", "runs_of", "find_peaks", "Series"]


@dataclass(frozen=True)
class Series:
    """A (times, values) pair with length invariants enforced."""

    times: tuple[float, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ValueError("times and values must have equal length")

    def __len__(self) -> int:
        return len(self.times)

    @staticmethod
    def from_pairs(pairs: Sequence[tuple[float, float]]) -> "Series":
        """Build from an iterable of (time, value) pairs."""
        times = tuple(p[0] for p in pairs)
        values = tuple(p[1] for p in pairs)
        return Series(times, values)


def time_offsets(event_times: Sequence[float], period: float) -> list[float]:
    """Each event time modulo the round period.

    This is exactly the y-axis of the paper's Figure 4: "the time
    mod T, for T = Tp + Tc seconds ... the time that each routing
    message was sent relative to the start of each round".
    """
    if period <= 0:
        raise ValueError("period must be positive")
    return [t % period for t in event_times]


def resample_step(series: Series, sample_times: Sequence[float]) -> list[float]:
    """Sample a piecewise-constant (step) series at given times.

    The series value at time ``t`` is the value of the latest point
    with ``time <= t``; sample times before the first point get the
    first value.
    """
    if len(series) == 0:
        raise ValueError("cannot resample an empty series")
    out: list[float] = []
    index = 0
    times, values = series.times, series.values
    for t in sample_times:
        while index + 1 < len(times) and times[index + 1] <= t:
            index += 1
        if t < times[0]:
            out.append(values[0])
        else:
            out.append(values[index])
        # Rewind is not supported: sample times must be non-decreasing.
    for earlier, later in zip(sample_times, sample_times[1:]):
        if later < earlier:
            raise ValueError("sample_times must be non-decreasing")
    return out


def runs_of(flags: Sequence[bool], target: bool = True) -> list[tuple[int, int]]:
    """Maximal runs of ``target`` values as (start_index, length) pairs."""
    runs: list[tuple[int, int]] = []
    start: int | None = None
    for i, flag in enumerate(flags):
        if flag == target:
            if start is None:
                start = i
        else:
            if start is not None:
                runs.append((start, i - start))
                start = None
    if start is not None:
        runs.append((start, len(flags) - start))
    return runs


def find_peaks(values: Sequence[float], threshold: float) -> list[int]:
    """Indices of local maxima with value >= threshold.

    A plateau of equal values counts as a single peak at its first
    index; endpoints count as peaks when they are not exceeded by
    their single neighbour.
    """
    n = len(values)
    if n == 0:
        return []
    if n == 1:
        return [0] if values[0] >= threshold else []
    peaks: list[int] = []
    i = 0
    while i < n:
        v = values[i]
        if v < threshold:
            i += 1
            continue
        # Extend over any plateau of equal values starting here.
        j = i
        while j + 1 < n and values[j + 1] == v:
            j += 1
        left_ok = i == 0 or values[i - 1] < v
        right_ok = j == n - 1 or values[j + 1] < v
        if left_ok and right_ok:
            peaks.append(i)
        i = j + 1
    return peaks
