"""Terminal rendering of figure series.

The original figures are scatter/line plots; this module renders the
same series as ASCII so `python -m repro fig04 --plot` shows the
morphology (offset lines merging, the cluster graph's jump, the
sigmoid transitions) without a plotting dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["scatter", "line", "log_safe"]

_DEFAULT_WIDTH = 72
_DEFAULT_HEIGHT = 20


def _finite_points(points: Sequence[tuple[float, float]]) -> list[tuple[float, float]]:
    return [
        (float(x), float(y))
        for x, y in points
        if _is_finite(x) and _is_finite(y)
    ]


def _is_finite(value) -> bool:
    try:
        return math.isfinite(float(value))
    except (TypeError, ValueError):
        return False


def _fmt_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e4 or abs(value) < 1e-2:
        return f"{value:.2g}"
    return f"{value:.4g}"


def scatter(
    points: Sequence[tuple[float, float]],
    width: int = _DEFAULT_WIDTH,
    height: int = _DEFAULT_HEIGHT,
    mark: str = "*",
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render points as an ASCII scatter plot.

    Non-finite points are dropped; a degenerate axis (all x equal or
    all y equal) is widened symmetrically so the plot stays readable.
    """
    if width < 16 or height < 4:
        raise ValueError("plot must be at least 16x4")
    data = _finite_points(points)
    if not data:
        raise ValueError("nothing to plot: no finite points")
    xs = [p[0] for p in data]
    ys = [p[1] for p in data]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    if y_hi == y_lo:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
    grid = [[" "] * width for _ in range(height)]
    for x, y in data:
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = mark
    lines = []
    if title:
        lines.append(title.center(width + 2))
    top_tick = _fmt_tick(y_hi)
    bottom_tick = _fmt_tick(y_lo)
    for index, row_cells in enumerate(grid):
        prefix = "|"
        if index == 0:
            prefix = "+"
        lines.append(prefix + "".join(row_cells))
    lines.append("+" + "-" * width)
    lines.append(f" {_fmt_tick(x_lo)}{' ' * max(1, width - len(_fmt_tick(x_lo)) - len(_fmt_tick(x_hi)))}{_fmt_tick(x_hi)}")
    lines.append(f" y: {bottom_tick} .. {top_tick}"
                 + (f"  ({y_label})" if y_label else ""))
    if x_label:
        lines.append(f" x: {x_label}")
    return "\n".join(lines)


def line(
    points: Sequence[tuple[float, float]],
    width: int = _DEFAULT_WIDTH,
    height: int = _DEFAULT_HEIGHT,
    **kwargs,
) -> str:
    """Scatter with linear interpolation between consecutive points."""
    data = _finite_points(points)
    if len(data) < 2:
        return scatter(data, width=width, height=height, **kwargs)
    dense: list[tuple[float, float]] = []
    for (x0, y0), (x1, y1) in zip(data, data[1:]):
        steps = max(2, width // max(1, len(data) - 1))
        for step in range(steps):
            t = step / steps
            dense.append((x0 + t * (x1 - x0), y0 + t * (y1 - y0)))
    dense.append(data[-1])
    return scatter(dense, width=width, height=height, **kwargs)


def log_safe(points: Sequence[tuple[float, float]]) -> list[tuple[float, float]]:
    """Map y values to log10, dropping non-positive/non-finite entries.

    Figure 12's y-axis spans eight orders of magnitude; plot
    ``log_safe(series)`` instead of the raw series.
    """
    out = []
    for x, y in points:
        if _is_finite(y) and float(y) > 0 and _is_finite(x):
            out.append((float(x), math.log10(float(y))))
    return out
