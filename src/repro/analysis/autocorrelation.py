"""Autocorrelation of measurement time series.

Figure 2 of the paper plots the sample autocorrelation of ping
round-trip times, with dropped packets assigned a 2-second RTT; the
peak at lag 89 (~90 seconds at 1.01 s per ping) exposes the routing
period.  These helpers compute that function and locate such peaks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["autocorrelation", "dominant_lag", "fill_losses"]


def fill_losses(
    rtts: Sequence[float],
    loss_marker: float = -1.0,
    loss_value: float = 2.0,
) -> np.ndarray:
    """Replace loss markers in an RTT series with a penalty value.

    The paper assigns dropped packets "a roundtrip time of two seconds
    (higher than the largest roundtrip time in the experiment)" before
    computing the autocorrelation.

    Parameters
    ----------
    rtts:
        RTT series where losses are encoded as ``loss_marker`` (any
        value ``<= loss_marker`` is treated as a loss, matching the
        convention that losses are plotted with negative RTTs).
    loss_marker:
        Threshold under which a sample is considered a loss.
    loss_value:
        RTT substituted for losses.
    """
    series = np.asarray(rtts, dtype=float)
    filled = series.copy()
    filled[series <= loss_marker] = loss_value
    return filled


def autocorrelation(series: Sequence[float], max_lag: int | None = None) -> np.ndarray:
    """Sample autocorrelation function (biased estimator).

    Returns ``acf[0..max_lag]`` with ``acf[0] == 1`` for any series
    with positive variance.  A constant series yields an ACF of 1 at
    lag 0 and 0 elsewhere (rather than NaNs).

    Parameters
    ----------
    series:
        The observations.
    max_lag:
        Largest lag to return; defaults to ``len(series) - 1``.
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    if n == 0:
        raise ValueError("autocorrelation of an empty series")
    if max_lag is None:
        max_lag = n - 1
    if max_lag < 0:
        raise ValueError("max_lag must be non-negative")
    max_lag = min(max_lag, n - 1)
    x = x - x.mean()
    denom = float(np.dot(x, x))
    acf = np.zeros(max_lag + 1)
    acf[0] = 1.0
    if denom == 0.0:
        return acf
    # FFT-based computation: O(n log n) versus O(n * max_lag) direct.
    nfft = 1
    while nfft < 2 * n:
        nfft *= 2
    spectrum = np.fft.rfft(x, nfft)
    full = np.fft.irfft(spectrum * np.conj(spectrum), nfft)[: max_lag + 1]
    acf = full / denom
    acf[0] = 1.0
    return acf


def dominant_lag(
    acf: Sequence[float],
    min_lag: int = 1,
    max_lag: int | None = None,
) -> int:
    """Lag (>= ``min_lag``) with the largest autocorrelation.

    Used to confirm that a loss process beats at the routing-update
    period: for Figure 2 the dominant lag is ~89 pings.
    """
    values = np.asarray(acf, dtype=float)
    if max_lag is None:
        max_lag = values.size - 1
    if not 1 <= min_lag <= max_lag < values.size:
        raise ValueError(f"invalid lag window [{min_lag}, {max_lag}] for acf of size {values.size}")
    window = values[min_lag : max_lag + 1]
    return min_lag + int(np.argmax(window))
