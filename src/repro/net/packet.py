"""Packets for the network substrate.

A deliberately small IP-ish abstraction: every packet has a source and
destination node name, a kind (used by hosts to demultiplex to the
right application), a size in bytes (which determines serialization
delay on links), and a free-form payload dictionary.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["PacketKind", "Packet"]

_packet_ids = itertools.count(1)


class PacketKind(str, Enum):
    """Demultiplexing key for delivered packets."""

    DATA = "data"
    PING_REQUEST = "ping_request"
    PING_REPLY = "ping_reply"
    AUDIO = "audio"
    VIDEO = "video"
    ROUTING_UPDATE = "routing_update"


@dataclass
class Packet:
    """One packet in flight.

    Attributes
    ----------
    src, dst:
        Node names.  ``dst`` may be the broadcast address ``"*"`` for
        LAN-scoped routing updates.
    kind:
        A :class:`PacketKind`.
    size_bytes:
        Wire size; serialization delay on a link is
        ``8 * size_bytes / bandwidth``.
    created_at:
        Simulated send time of the original transmission.
    payload:
        Application data (e.g. ping sequence numbers, route entries).
    packet_id:
        Unique per simulation process, assigned automatically.
    hops:
        Node names traversed so far (filled in by the forwarding path).
    ttl:
        Remaining hop budget; routers drop packets at zero.
    link_dst:
        Link-layer destination for the current hop.  None means
        broadcast (every station on a shared segment processes the
        frame); a name means only that station does.  Point-to-point
        links ignore it.
    """

    src: str
    dst: str
    kind: PacketKind = PacketKind.DATA
    size_bytes: int = 512
    created_at: float = 0.0
    payload: dict = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    hops: list[str] = field(default_factory=list)
    ttl: int = 64
    link_dst: str | None = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.ttl <= 0:
            raise ValueError("ttl must be positive")

    @property
    def is_routing(self) -> bool:
        """True for routing-protocol traffic."""
        return self.kind is PacketKind.ROUTING_UPDATE

    def record_hop(self, node_name: str) -> None:
        """Append a node to the path trace and spend one TTL unit."""
        self.hops.append(node_name)
        self.ttl -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.packet_id} {self.kind.value} "
            f"{self.src}->{self.dst} {self.size_bytes}B>"
        )
