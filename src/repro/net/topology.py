"""Network assembly and static route computation.

A :class:`Network` owns the simulator, the nodes, the point-to-point
links, and the shared LAN segments, and can install static
shortest-path routes (hop count, computed with a plain BFS over up
channels) — the starting condition for experiments that do not
exercise dynamic route convergence.
"""

from __future__ import annotations

from collections import deque

from ..des import Simulator
from .lan import Lan
from .link import Link
from .node import Host, Node, Router, channel_neighbors

__all__ = ["Network"]


def _sorted_neighbors(channel, node: Node) -> list[Node]:
    """A channel's far-side nodes in name order (deterministic BFS ties)."""
    return sorted(channel_neighbors(channel, node), key=lambda n: n.name)


class Network:
    """A container wiring hosts, routers, links, and LANs to one simulator."""

    def __init__(self, sim: Simulator | None = None) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        self.lans: list[Lan] = []

    # -- construction --------------------------------------------------------

    def add_host(self, name: str) -> Host:
        """Create and register a host."""
        host = Host(self.sim, name)
        self._register(host)
        return host

    def add_router(self, name: str, **kwargs) -> Router:
        """Create and register a router (kwargs pass through to Router)."""
        router = Router(self.sim, name, **kwargs)
        self._register(router)
        return router

    def _register(self, node: Node) -> None:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node

    def connect(
        self,
        a: str | Node,
        b: str | Node,
        bandwidth_bps: float = 1.5e6,
        delay_s: float = 0.005,
        queue_packets: int = 50,
    ) -> Link:
        """Create a point-to-point link between two registered nodes."""
        node_a = self._resolve(a)
        node_b = self._resolve(b)
        if node_a is node_b:
            raise ValueError("cannot connect a node to itself")
        link = Link(self.sim, node_a, node_b, bandwidth_bps, delay_s, queue_packets)
        self.links.append(link)
        return link

    def add_lan(
        self,
        name: str,
        stations: list[str | Node] | None = None,
        bandwidth_bps: float = 10e6,
        delay_s: float = 0.0001,
        queue_packets: int = 200,
    ) -> Lan:
        """Create a shared segment and attach the given stations."""
        lan = Lan(self.sim, name, bandwidth_bps, delay_s, queue_packets)
        self.lans.append(lan)
        for station in stations or []:
            lan.attach(self._resolve(station))
        return lan

    def _resolve(self, node: str | Node) -> Node:
        if isinstance(node, Node):
            if node.name not in self.nodes or self.nodes[node.name] is not node:
                raise ValueError(f"node {node.name!r} is not part of this network")
            return node
        if node not in self.nodes:
            raise ValueError(f"unknown node {node!r}")
        return self.nodes[node]

    def host(self, name: str) -> Host:
        """Look up a host by name (type-checked)."""
        node = self._resolve(name)
        if not isinstance(node, Host):
            raise TypeError(f"{name!r} is not a host")
        return node

    def router(self, name: str) -> Router:
        """Look up a router by name (type-checked)."""
        node = self._resolve(name)
        if not isinstance(node, Router):
            raise TypeError(f"{name!r} is not a router")
        return node

    def routers(self) -> list[Router]:
        """All routers, in insertion order."""
        return [n for n in self.nodes.values() if isinstance(n, Router)]

    # -- static routing ----------------------------------------------------------

    def install_static_routes(self) -> None:
        """Install hop-count shortest-path forwarding entries everywhere.

        For every router, runs a BFS over up channels and points each
        destination at the first hop of a shortest path.  Ties break
        deterministically: channels in attachment order, and within a
        channel neighbours in node-name order (station *attachment*
        order on a LAN is construction-history dependent, so sorting
        is what makes two differently-assembled but equal topologies
        route identically).  Also assigns
        every LAN-attached host a default gateway (the first router on
        its segment) so it can address off-segment traffic.
        """
        for router in self.routers():
            first_hop = self._bfs_first_hops(router)
            router.forwarding_table.clear()
            for dst_name, (channel, next_hop) in first_hop.items():
                router.forwarding_table[dst_name] = (channel, next_hop)
        for node in self.nodes.values():
            if isinstance(node, Host) and node.lans:
                segment = node.lans[0]
                gateways = [s for s in segment.other_stations(node) if isinstance(s, Router)]
                if gateways:
                    node.default_gateway = gateways[0].name

    def _bfs_first_hops(self, source: Node) -> dict[str, tuple]:
        """Map destination name -> (outgoing channel, next-hop name)."""
        first_hop: dict[str, tuple] = {}
        visited = {source.name}
        queue: deque[Node] = deque()
        for channel in source.channels:
            if not channel.up:
                continue
            for neighbor in _sorted_neighbors(channel, source):
                if neighbor.name in visited:
                    continue
                visited.add(neighbor.name)
                first_hop[neighbor.name] = (channel, neighbor.name)
                queue.append(neighbor)
        while queue:
            node = queue.popleft()
            via = first_hop[node.name]
            for channel in node.channels:
                if not channel.up:
                    continue
                for neighbor in _sorted_neighbors(channel, node):
                    if neighbor.name in visited:
                        continue
                    visited.add(neighbor.name)
                    first_hop[neighbor.name] = via
                    queue.append(neighbor)
        return first_hop

    # -- running -----------------------------------------------------------------

    def run(self, until: float) -> float:
        """Advance the simulation to the horizon."""
        return self.sim.run(until=until)

    def path_between(self, a: str, b: str) -> list[str]:
        """Node names on a shortest path from ``a`` to ``b`` (BFS).

        Raises if no path exists over up channels.
        """
        source = self._resolve(a)
        target = self._resolve(b)
        parents: dict[str, str] = {}
        visited = {source.name}
        queue: deque[Node] = deque([source])
        while queue:
            node = queue.popleft()
            if node is target:
                break
            for channel in node.channels:
                if not channel.up:
                    continue
                for neighbor in _sorted_neighbors(channel, node):
                    if neighbor.name not in visited:
                        visited.add(neighbor.name)
                        parents[neighbor.name] = node.name
                        queue.append(neighbor)
        if target.name not in visited:
            raise ValueError(f"no path from {a!r} to {b!r}")
        path = [target.name]
        while path[-1] != source.name:
            path.append(parents[path[-1]])
        return list(reversed(path))
