"""Hosts and routers.

Nodes attach to *channels*: point-to-point :class:`~repro.net.link.Link`
objects or shared :class:`~repro.net.lan.Lan` segments.  Unicast frames
crossing a LAN carry a link-layer destination
(:attr:`~repro.net.packet.Packet.link_dst`); stations discard frames
addressed past them, as an Ethernet NIC would.

The router models the behaviour at the heart of the paper's
measurement section: while a router is processing routing updates it
may be unable to forward data packets (the pre-fix NEARnet behaviour
behind Figures 1-3).  That window is controlled by the attached
routing protocol agent via :meth:`Router.occupy_for`; whether it
blocks forwarding (and how hard) is configurable so the ablation
benchmarks can reproduce the NEARnet software fix.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, Union

from ..des import Simulator
from ..rng import RandomSource
from .packet import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from .lan import Lan
    from .link import Link

    Channel = Union["Link", "Lan"]

__all__ = ["Node", "Host", "Router", "RouterStats", "ProtocolAgent", "channel_neighbors"]

#: Broadcast destination for LAN-scoped routing updates.
BROADCAST = "*"


def channel_neighbors(channel: "Channel", node: "Node") -> list["Node"]:
    """The nodes reachable from ``node`` over one channel.

    One node for a point-to-point link, every other station for a LAN.
    """
    if hasattr(channel, "other_stations"):
        return channel.other_stations(node)  # type: ignore[union-attr]
    return [channel.other_end(node)]  # type: ignore[union-attr]


class ProtocolAgent(Protocol):
    """What a routing protocol attached to a router must provide."""

    def handle_update(self, packet: Packet, channel: "Channel") -> None:
        """An incoming routing update reached the router."""
        ...

    def on_link_state(self, channel: "Channel", up: bool) -> None:
        """An attached channel changed state."""
        ...


class Node:
    """Common behaviour of hosts and routers."""

    def __init__(self, sim: Simulator, name: str) -> None:
        if not name or name == BROADCAST:
            raise ValueError(f"invalid node name {name!r}")
        self.sim = sim
        self.name = name
        self.links: list["Link"] = []
        self.lans: list["Lan"] = []

    @property
    def channels(self) -> list["Channel"]:
        """All attached channels, links first."""
        return [*self.links, *self.lans]

    def attach_link(self, link: "Link") -> None:
        """Called by Link construction; registers the attachment."""
        self.links.append(link)

    def attach_channel(self, lan: "Lan") -> None:
        """Called by Lan.attach; registers the attachment."""
        self.lans.append(lan)

    def neighbors(self) -> list["Node"]:
        """Directly reachable nodes over up channels."""
        found: list["Node"] = []
        for link in self.links:
            if link.up:
                found.append(link.other_end(self))
        for lan in self.lans:
            if lan.up:
                found.extend(lan.other_stations(self))
        return found

    def frame_addressed_to_me(self, packet: Packet) -> bool:
        """Link-layer filter: broadcast frames and frames for this node."""
        return packet.link_dst is None or packet.link_dst == self.name

    def receive(self, packet: Packet, channel: "Channel") -> None:  # pragma: no cover
        raise NotImplementedError

    def on_link_state(self, link: "Link", up: bool) -> None:
        """Default: ignore link state changes."""

    def on_channel_state(self, channel: "Channel", up: bool) -> None:
        """A LAN segment changed state; default mirrors link handling."""
        self.on_link_state(channel, up)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


class Host(Node):
    """An end system: sources and sinks application traffic.

    Applications register per-kind delivery handlers; outbound packets
    leave through the host's first channel.  A LAN-attached host sends
    unicast frames to the destination directly when it is on the same
    segment, and to ``default_gateway`` otherwise.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self._handlers: dict[PacketKind, Callable[[Packet], None]] = {}
        self.packets_received = 0
        self.packets_sent = 0
        self.default_gateway: str | None = None

    def register_handler(self, kind: PacketKind, handler: Callable[[Packet], None]) -> None:
        """Deliver packets of ``kind`` to ``handler``."""
        self._handlers[kind] = handler

    def send(self, packet: Packet) -> bool:
        """Emit a packet via the access channel; False if it was dropped."""
        channels = self.channels
        if not channels:
            raise RuntimeError(f"host {self.name} has no attached channel")
        channel = channels[0]
        packet.record_hop(self.name)
        packet.created_at = packet.created_at or self.sim.now
        self.packets_sent += 1
        if channel in self.lans:
            on_segment = {station.name for station in channel.other_stations(self)}
            if packet.dst in on_segment:
                packet.link_dst = packet.dst
            elif self.default_gateway is not None:
                packet.link_dst = self.default_gateway
            else:
                packet.link_dst = None  # broadcast and hope (diagnostics)
        return channel.send(packet, self)

    def receive(self, packet: Packet, channel: "Channel") -> None:
        """Deliver to the registered handler (silently drop unknown kinds)."""
        if not self.frame_addressed_to_me(packet):
            return
        if packet.dst not in (self.name, BROADCAST):
            return  # not ours; hosts do not forward
        self.packets_received += 1
        handler = self._handlers.get(packet.kind)
        if handler is not None:
            handler(packet)


class RouterStats:
    """Forwarding counters for a router."""

    def __init__(self) -> None:
        self.forwarded = 0
        self.delivered_updates = 0
        self.dropped_routing_busy = 0
        self.dropped_no_route = 0
        self.dropped_ttl = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<RouterStats fwd={self.forwarded} busy_drop={self.dropped_routing_busy} "
            f"no_route={self.dropped_no_route}>"
        )


class Router(Node):
    """A packet forwarder running a routing protocol.

    Parameters
    ----------
    blocking_updates:
        When True (the pre-fix NEARnet behaviour), data packets that
        arrive while the router is processing routing updates are
        dropped with probability ``busy_drop_probability``.  When
        False (the post-fix behaviour), routing-update processing does
        not affect forwarding.
    busy_drop_probability:
        Probability that a data packet arriving during update
        processing is lost; 1.0 models a hard control-plane stall,
        smaller values model contention.
    forwarding_delay:
        Per-packet lookup/switching latency.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        blocking_updates: bool = True,
        busy_drop_probability: float = 1.0,
        forwarding_delay: float = 0.0001,
        rng: RandomSource | None = None,
    ) -> None:
        super().__init__(sim, name)
        if not 0.0 <= busy_drop_probability <= 1.0:
            raise ValueError("busy_drop_probability must be in [0, 1]")
        if forwarding_delay < 0:
            raise ValueError("forwarding_delay must be non-negative")
        self.blocking_updates = blocking_updates
        self.busy_drop_probability = busy_drop_probability
        self.forwarding_delay = forwarding_delay
        self.rng = rng if rng is not None else RandomSource(seed=hash(name) % (2**31 - 2) + 1)
        #: dst name -> (outgoing channel, next-hop node name)
        self.forwarding_table: dict[str, tuple["Channel", str]] = {}
        self.update_busy_until = 0.0
        self.protocol: ProtocolAgent | None = None
        self.stats = RouterStats()

    # -- control plane -----------------------------------------------------

    def attach_protocol(self, agent: ProtocolAgent) -> None:
        """Install the routing protocol agent."""
        self.protocol = agent

    def occupy_for(self, duration: float) -> None:
        """Mark the router busy with routing-update work.

        Busy intervals accumulate, mirroring the Periodic Messages
        busy-period extension: work arriving while busy extends the
        window.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(self.sim.now, self.update_busy_until)
        self.update_busy_until = start + duration

    @property
    def routing_busy(self) -> bool:
        """True while routing-update work is outstanding."""
        return self.sim.now < self.update_busy_until

    def set_route(self, dst: str, channel: "Channel", next_hop: str | None = None) -> None:
        """Point the forwarding entry for ``dst`` at a channel.

        ``next_hop`` (the link-layer destination) defaults to the far
        end for a point-to-point link; it is required for a LAN.
        """
        if channel not in self.channels:
            raise ValueError(f"channel {channel!r} is not attached to {self.name}")
        if next_hop is None:
            if channel in self.lans:
                raise ValueError("next_hop is required for a LAN route")
            next_hop = channel.other_end(self).name  # type: ignore[union-attr]
        self.forwarding_table[dst] = (channel, next_hop)

    def clear_route(self, dst: str) -> None:
        """Remove a forwarding entry if present."""
        self.forwarding_table.pop(dst, None)

    def on_link_state(self, channel: "Channel", up: bool) -> None:
        if self.protocol is not None:
            self.protocol.on_link_state(channel, up)
        if not up:
            stale = [dst for dst, (via, _) in self.forwarding_table.items() if via is channel]
            for dst in stale:
                del self.forwarding_table[dst]

    # -- data plane -----------------------------------------------------------

    def receive(self, packet: Packet, channel: "Channel") -> None:
        if not self.frame_addressed_to_me(packet):
            return
        if packet.is_routing:
            self.stats.delivered_updates += 1
            if self.protocol is not None:
                self.protocol.handle_update(packet, channel)
            return
        if packet.dst == self.name:
            return  # routers sink stray data addressed to them
        self._forward(packet, arrived_on=channel)

    def _forward(self, packet: Packet, arrived_on: "Channel") -> None:
        if self.routing_busy and self.blocking_updates:
            if self.rng.bernoulli(self.busy_drop_probability):
                self.stats.dropped_routing_busy += 1
                return
        if packet.ttl <= 1:
            self.stats.dropped_ttl += 1
            return
        entry = self.forwarding_table.get(packet.dst)
        if entry is None or not entry[0].up:
            self.stats.dropped_no_route += 1
            return
        out, next_hop = entry
        packet.record_hop(self.name)
        packet.link_dst = next_hop
        self.stats.forwarded += 1
        if self.forwarding_delay > 0:
            self.sim.schedule(self.forwarding_delay, out.send, packet, self,
                              label=f"fwd-{self.name}")
        else:
            out.send(packet, self)
