"""Network-wide measurement taps.

A :class:`NetworkMonitor` snapshots the counters every element of a
:class:`~repro.net.topology.Network` already maintains — link/LAN
throughput and drops, router forwarding and busy-drop counts — and can
additionally tap drop hooks to keep a timeline of loss events, which
is exactly the raw material of the paper's Figures 1 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from .node import Router
from .packet import Packet
from .topology import Network

__all__ = ["DropRecord", "NetworkMonitor"]


@dataclass(frozen=True)
class DropRecord:
    """One observed queue/medium drop."""

    time: float
    where: str
    packet_kind: str
    src: str
    dst: str


class NetworkMonitor:
    """Aggregated counters and a drop timeline for one network.

    Construct after the topology is built (it installs drop hooks on
    every existing link and LAN); snapshot methods can be called at
    any time.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.drops: list[DropRecord] = []
        for link in network.links:
            name = f"{link.a.name}<->{link.b.name}"
            link.drop_hooks.append(self._make_hook(name))
        for lan in network.lans:
            lan.drop_hooks.append(self._make_hook(f"lan:{lan.name}"))

    def _make_hook(self, where: str):
        def hook(packet: Packet, _toward) -> None:
            self.drops.append(
                DropRecord(
                    time=self.network.sim.now,
                    where=where,
                    packet_kind=packet.kind.value,
                    src=packet.src,
                    dst=packet.dst,
                )
            )

        return hook

    # -- snapshots -----------------------------------------------------------

    def link_report(self) -> list[dict]:
        """Per-direction link counters."""
        rows = []
        for link in self.network.links:
            for toward in (link.b, link.a):
                stats = link.stats_toward(toward)
                rows.append(
                    {
                        "link": f"{link.other_end(toward).name}->{toward.name}",
                        "packets": stats.packets_sent,
                        "bytes": stats.bytes_sent,
                        "queue_drops": stats.packets_dropped,
                    }
                )
        for lan in self.network.lans:
            rows.append(
                {
                    "link": f"lan:{lan.name}",
                    "packets": lan.stats.packets_sent,
                    "bytes": lan.stats.bytes_sent,
                    "queue_drops": lan.stats.packets_dropped,
                }
            )
        return rows

    def router_report(self) -> list[dict]:
        """Per-router forwarding and loss counters."""
        rows = []
        for node in self.network.nodes.values():
            if not isinstance(node, Router):
                continue
            rows.append(
                {
                    "router": node.name,
                    "forwarded": node.stats.forwarded,
                    "updates": node.stats.delivered_updates,
                    "busy_drops": node.stats.dropped_routing_busy,
                    "no_route_drops": node.stats.dropped_no_route,
                    "ttl_drops": node.stats.dropped_ttl,
                }
            )
        return rows

    def total_busy_drops(self) -> int:
        """Packets lost to routing-update processing, network-wide."""
        return sum(row["busy_drops"] for row in self.router_report())

    def drop_times(self, kind: str | None = None) -> list[float]:
        """Timestamps of observed queue/medium drops (optionally by kind)."""
        return [
            record.time
            for record in self.drops
            if kind is None or record.packet_kind == kind
        ]

    def format_table(self) -> str:
        """A printable two-part summary."""
        lines = ["routers:"]
        for row in self.router_report():
            lines.append(
                f"  {row['router']:>12}  fwd={row['forwarded']:<8} "
                f"updates={row['updates']:<6} busy_drops={row['busy_drops']:<6} "
                f"no_route={row['no_route_drops']:<4} ttl={row['ttl_drops']}"
            )
        lines.append("links:")
        for row in self.link_report():
            lines.append(
                f"  {row['link']:>20}  pkts={row['packets']:<8} "
                f"bytes={row['bytes']:<10} drops={row['queue_drops']}"
            )
        return "\n".join(lines)
