"""Packet-level network substrate: nodes, links, and topologies."""

from .lan import Lan
from .monitor import DropRecord, NetworkMonitor
from .link import Link, LinkStats
from .node import (
    BROADCAST,
    Host,
    Node,
    ProtocolAgent,
    Router,
    RouterStats,
    channel_neighbors,
)
from .packet import Packet, PacketKind
from .topology import Network

__all__ = [
    "DropRecord",
    "NetworkMonitor",
    "Lan",
    "Link",
    "LinkStats",
    "BROADCAST",
    "Host",
    "Node",
    "ProtocolAgent",
    "Router",
    "RouterStats",
    "channel_neighbors",
    "Packet",
    "PacketKind",
    "Network",
]
